//! Contextualized similarity storage and providers.
//!
//! The paper's `SIM : Q × P × P → [0,1]` is *contextual*: the similarity of
//! the same pair of photos differs between pre-defined subsets. Within an
//! [`Instance`](crate::Instance) similarities are therefore stored per subset,
//! indexed by the *local* member index within that subset.
//!
//! Two storage layouts are provided:
//!
//! * [`DenseSim`] — a packed lower-triangular matrix, used when all pairwise
//!   similarities are materialized (the paper's PHOcus-NS configuration);
//! * [`SparseSim`] — a CSR (compressed sparse row) adjacency store with split
//!   index/similarity arrays, used after τ-sparsification (Section 4.3) or
//!   when the pairs come from an LSH index.
//!
//! Both layouts implicitly define `SIM(q, p, p) = 1` and treat missing pairs
//! as similarity 0, exactly as the sparsified model does.
//!
//! Both expose *slice-returning* accessors ([`SparseSim::neighbors`],
//! [`DenseSim::row`], [`DenseSim::raw_tri`]) so that hot kernels — the
//! [`Evaluator`](crate::Evaluator)'s marginal-gain, add, remove and
//! exact-score loops — iterate flat arrays with no per-element pointer
//! chasing, enum dispatch, or triangular index arithmetic.
//!
//! [`SimilarityProvider`] abstracts over *sources* of similarity (embedding
//! cosine, test oracles, closures) from which the stores are materialized.

use crate::{ModelError, PhotoId, Result, Subset, SubsetId};

/// A source of contextualized similarity scores, used to materialize
/// [`ContextSim`] stores during instance construction.
///
/// Implementations must be symmetric (`similarity(q, a, b) ==
/// similarity(q, b, a)`), return values in `[0, 1]`, and return 1 for
/// identical photos. These invariants are validated at materialization time.
pub trait SimilarityProvider {
    /// `SIM(context, a, b)` for two photos that are members of `context`.
    fn similarity(&self, context: &Subset, a: PhotoId, b: PhotoId) -> f64;
}

/// The trivial provider with `SIM ≡ 1` for all co-members.
///
/// Under this provider the PAR objective degenerates to weighted coverage of
/// subsets — the selection objective of the paper's Greedy-NR baseline, and
/// the gadget used in the Max-Coverage hardness reduction (Theorem 3.4).
#[derive(Debug, Clone, Copy, Default)]
pub struct UnitSimilarity;

impl SimilarityProvider for UnitSimilarity {
    fn similarity(&self, _context: &Subset, _a: PhotoId, _b: PhotoId) -> f64 {
        1.0
    }
}

/// A provider backed by a closure, convenient for tests and fixtures.
pub struct FnSimilarity<F>(pub F)
where
    F: Fn(SubsetId, PhotoId, PhotoId) -> f64;

impl<F> SimilarityProvider for FnSimilarity<F>
where
    F: Fn(SubsetId, PhotoId, PhotoId) -> f64,
{
    fn similarity(&self, context: &Subset, a: PhotoId, b: PhotoId) -> f64 {
        if a == b {
            1.0
        } else {
            (self.0)(context.id, a, b)
        }
    }
}

/// Packed lower-triangular matrix of pairwise similarities over the members
/// of one subset. The diagonal (`SIM = 1`) is implicit.
///
/// Entry `(i, j)` with `i > j` is stored at offset `i·(i−1)/2 + j`. Values are
/// kept as `f32` to halve memory traffic; all arithmetic is done in `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseSim {
    n: usize,
    /// Lower triangle, row-major: entry (i,j), i>j at `i*(i-1)/2 + j`.
    tri: Vec<f32>,
}

impl DenseSim {
    /// Materializes all pairwise similarities of `subset`'s members from a
    /// provider. Costs `O(|q|²)` provider calls.
    pub fn from_provider<P: SimilarityProvider + ?Sized>(
        subset: &Subset,
        provider: &P,
    ) -> Result<Self> {
        Self::from_local_fn(subset.id, subset.members.len(), |i, j| {
            provider.similarity(subset, subset.members[i], subset.members[j])
        })
    }

    /// Materializes all pairwise similarities over `n` members from a pair
    /// function of *local* member positions `(i, j)` with `i > j`. Validation
    /// and fill order match [`from_provider`](Self::from_provider) exactly;
    /// callers with precomputed per-member state (e.g. hoisted norm terms)
    /// use this to skip per-pair provider dispatch.
    pub fn from_local_fn(
        subset_id: SubsetId,
        n: usize,
        pair: impl Fn(usize, usize) -> f64,
    ) -> Result<Self> {
        let mut tri = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 1..n {
            for j in 0..i {
                let s = pair(i, j);
                if !(0.0..=1.0).contains(&s) || s.is_nan() {
                    return Err(ModelError::InvalidSimilarity {
                        subset: subset_id,
                        value: s,
                    });
                }
                tri.push(s as f32);
            }
        }
        Ok(DenseSim { n, tri })
    }

    /// Builds a dense store directly from a full `n×n` matrix slice
    /// (row-major). Only the lower triangle is read.
    pub fn from_matrix(subset_id: SubsetId, n: usize, matrix: &[f64]) -> Result<Self> {
        assert_eq!(matrix.len(), n * n, "matrix must be n*n row-major");
        let mut tri = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 1..n {
            for j in 0..i {
                let s = matrix[i * n + j];
                if !(0.0..=1.0).contains(&s) || s.is_nan() {
                    return Err(ModelError::InvalidSimilarity {
                        subset: subset_id,
                        value: s,
                    });
                }
                tri.push(s as f32);
            }
        }
        Ok(DenseSim { n, tri })
    }

    /// Number of members in the underlying subset.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the store covers zero members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Similarity between local member indices `i` and `j`.
    #[inline]
    pub fn sim(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 1.0;
        }
        let (hi, lo) = if i > j { (i, j) } else { (j, i) };
        self.tri[hi * (hi - 1) / 2 + lo] as f64
    }

    /// The contiguous lower-triangle row of member `i`: similarities to
    /// members `0..i`, in member order. Empty for `i == 0`.
    ///
    /// Together with [`raw_tri`](Self::raw_tri) this lets kernels visit all
    /// neighbors of `i` without per-element triangular index arithmetic: the
    /// entries `(j, i)` for `j > i` live at `raw_tri()[base + i]` where
    /// `base` starts at `i·(i+1)/2` (row `i+1`) and advances by `j` per row.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        let base = i * i.saturating_sub(1) / 2;
        &self.tri[base..base + i]
    }

    /// The packed lower triangle: entry `(i, j)` with `i > j` at
    /// `i·(i−1)/2 + j`. See [`row`](Self::row) for the hoisted iteration
    /// pattern over a member's column entries.
    #[inline]
    pub fn raw_tri(&self) -> &[f32] {
        &self.tri
    }

    /// Reassembles a store from a packed lower triangle bulk-read from a
    /// `phocus-pack` section ([`crate::pack`]). The pack reader has already
    /// checked `tri.len() == n·(n−1)/2`; no validation runs here.
    pub(crate) fn from_raw_tri(n: usize, tri: Vec<f32>) -> Self {
        debug_assert_eq!(tri.len(), n * n.saturating_sub(1) / 2);
        DenseSim { n, tri }
    }

    /// Converts to a sparse store, dropping all zero similarities and all
    /// similarities `< tau` (the τ-sparsification of Section 4.3).
    pub fn sparsify(&self, tau: f64) -> SparseSim {
        let n = self.n;
        let keep = |s: f32| (s as f64) >= tau && s > 0.0;
        // Pass 1: per-row degree counts.
        let mut offsets = vec![0u32; n + 1];
        for i in 1..n {
            let base = i * (i - 1) / 2;
            for j in 0..i {
                if keep(self.tri[base + j]) {
                    offsets[i + 1] += 1;
                    offsets[j + 1] += 1;
                }
            }
        }
        for k in 1..=n {
            offsets[k] += offsets[k - 1];
        }
        // Pass 2: fill. Iterating pairs (i, j<i) in row-major order hands
        // each CSR row first its smaller neighbors (ascending j) and then its
        // larger ones (ascending i), so every row comes out sorted.
        let total = offsets[n] as usize;
        let mut neighbor_idx = vec![0u32; total];
        let mut sim = vec![0.0f32; total];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for i in 1..n {
            let base = i * (i - 1) / 2;
            for j in 0..i {
                let s = self.tri[base + j];
                if keep(s) {
                    let ci = cursor[i] as usize;
                    neighbor_idx[ci] = j as u32;
                    sim[ci] = s;
                    cursor[i] += 1;
                    let cj = cursor[j] as usize;
                    neighbor_idx[cj] = i as u32;
                    sim[cj] = s;
                    cursor[j] += 1;
                }
            }
        }
        SparseSim {
            offsets,
            neighbor_idx,
            sim,
        }
    }

    /// Number of stored (unordered) pairs with nonzero similarity.
    pub fn nonzero_pairs(&self) -> usize {
        self.tri.iter().filter(|&&s| s > 0.0).count()
    }
}

/// CSR (compressed sparse row) adjacency store of similarities over one
/// subset's members.
///
/// Row `i` spans `offsets[i]..offsets[i+1]` in the split `neighbor_idx` /
/// `sim` arrays and holds `(j, SIM(q, mᵢ, mⱼ))` for every *other* member `j`
/// whose stored similarity is nonzero, sorted by `j`. The diagonal is
/// implicit (1.0); absent pairs have similarity 0 — exactly the semantics of
/// a τ-sparsified instance.
///
/// The structure-of-arrays split keeps the index stream and the value stream
/// each contiguous, so a marginal-gain kernel walking a row touches two flat
/// `u32`/`f32` runs instead of chasing one heap allocation per member.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseSim {
    /// Row boundaries: row `i` is `offsets[i]..offsets[i+1]`; `len = n + 1`.
    offsets: Vec<u32>,
    /// Concatenated neighbor local indices, sorted within each row.
    neighbor_idx: Vec<u32>,
    /// Similarities parallel to `neighbor_idx`.
    sim: Vec<f32>,
}

impl Default for SparseSim {
    fn default() -> Self {
        SparseSim::empty(0)
    }
}

impl SparseSim {
    /// The store over `n` members with no pairs at all.
    pub fn empty(n: usize) -> Self {
        SparseSim {
            offsets: vec![0; n + 1],
            neighbor_idx: Vec::new(),
            sim: Vec::new(),
        }
    }

    /// Builds a sparse store over `n` members from unordered pairs
    /// `(i, j, sim)`. Pairs are inserted symmetrically; duplicate pairs keep
    /// the maximum similarity; self-pairs and zero similarities are ignored.
    /// Indices `≥ n` are rejected with
    /// [`ModelError::PairIndexOutOfRange`].
    pub fn from_pairs(
        subset_id: SubsetId,
        n: usize,
        pairs: impl IntoIterator<Item = (u32, u32, f64)>,
    ) -> Result<Self> {
        // Collect both directions, then sort-and-merge: O(E log E) total,
        // instead of the O(deg²) linear-scan upsert a per-row build costs.
        let mut entries: Vec<(u32, u32, f32)> = Vec::new();
        for (i, j, s) in pairs {
            if !(0.0..=1.0).contains(&s) || s.is_nan() {
                return Err(ModelError::InvalidSimilarity {
                    subset: subset_id,
                    value: s,
                });
            }
            if i == j || s == 0.0 {
                continue;
            }
            if let Some(&index) = [i, j].iter().find(|&&k| k as usize >= n) {
                return Err(ModelError::PairIndexOutOfRange {
                    subset: subset_id,
                    index,
                    members: n,
                });
            }
            entries.push((i, j, s as f32));
            entries.push((j, i, s as f32));
        }
        // Sort by (row, col); ties keep the highest similarity up front so
        // the dedup below retains the maximum of duplicate pairs.
        entries.sort_unstable_by(|a, b| {
            (a.0, a.1)
                .cmp(&(b.0, b.1))
                .then_with(|| b.2.total_cmp(&a.2))
        });
        entries.dedup_by_key(|e| (e.0, e.1));

        let mut offsets = vec![0u32; n + 1];
        for &(i, _, _) in &entries {
            offsets[i as usize + 1] += 1;
        }
        for k in 1..=n {
            offsets[k] += offsets[k - 1];
        }
        // Entries are sorted by row, so a straight push fills each CSR row
        // in place and already sorted by neighbor index.
        let mut neighbor_idx = Vec::with_capacity(entries.len());
        let mut sim = Vec::with_capacity(entries.len());
        for &(_, j, s) in &entries {
            neighbor_idx.push(j);
            sim.push(s);
        }
        Ok(SparseSim {
            offsets,
            neighbor_idx,
            sim,
        })
    }

    /// Number of members covered by the store.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the store covers zero members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Similarity between local member indices `i` and `j` (0 if not stored).
    pub fn sim(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 1.0;
        }
        let (ids, sims) = self.neighbors(i);
        // phocus-lint: allow(cast-bounds) — j is a local member index; rows store u32 ids
        ids.binary_search(&(j as u32))
            .map(|pos| sims[pos] as f64)
            .unwrap_or(0.0)
    }

    /// Neighbors of member `i` as parallel slices `(indices, similarities)`:
    /// other members with nonzero stored similarity, sorted by local index.
    #[inline]
    pub fn neighbors(&self, i: usize) -> (&[u32], &[f32]) {
        let start = self.offsets[i] as usize;
        let end = self.offsets[i + 1] as usize;
        (&self.neighbor_idx[start..end], &self.sim[start..end])
    }

    /// Number of stored neighbors of member `i`.
    #[inline]
    pub fn degree(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Number of stored (unordered) nonzero pairs.
    pub fn nonzero_pairs(&self) -> usize {
        self.neighbor_idx.len() / 2
    }

    /// The raw CSR arenas `(offsets, neighbor_idx, sim)`, exposed to the
    /// `phocus-pack` writer ([`crate::pack`]) for verbatim section dumps.
    pub(crate) fn raw_csr(&self) -> (&[u32], &[u32], &[f32]) {
        (&self.offsets, &self.neighbor_idx, &self.sim)
    }

    /// Reassembles a store from CSR arenas bulk-read from a `phocus-pack`
    /// section ([`crate::pack`]). The pack reader has already checked the
    /// offsets are monotone, end at `neighbor_idx.len()`, and that every
    /// neighbor index is in range; no validation or re-sorting runs here.
    pub(crate) fn from_raw_csr(offsets: Vec<u32>, neighbor_idx: Vec<u32>, sim: Vec<f32>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(neighbor_idx.len(), sim.len());
        SparseSim {
            offsets,
            neighbor_idx,
            sim,
        }
    }

    /// Restricts the store to the members at `positions` (strictly ascending
    /// local indices), remapping kept neighbors to their position in
    /// `positions` and dropping edges to excluded members.
    ///
    /// Because `positions` is ascending, the remap is order-preserving: each
    /// restricted row keeps its original (sorted) entry order, so kernels
    /// iterating the restricted rows see the surviving `(neighbor, sim)`
    /// pairs in exactly the sequence the parent store produced. The component
    /// decomposition relies on this for bit-identical gain arithmetic.
    pub fn restrict(&self, positions: &[u32]) -> SparseSim {
        debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
        let mut remap = vec![u32::MAX; self.len()];
        for (new, &old) in positions.iter().enumerate() {
            remap[old as usize] = new as u32;
        }
        let mut offsets = vec![0u32; positions.len() + 1];
        let mut neighbor_idx = Vec::new();
        let mut sim = Vec::new();
        for (new, &old) in positions.iter().enumerate() {
            let (ids, sims) = self.neighbors(old as usize);
            for (&j, &s) in ids.iter().zip(sims) {
                let nj = remap[j as usize];
                if nj != u32::MAX {
                    neighbor_idx.push(nj);
                    sim.push(s);
                }
            }
            // phocus-lint: allow(cast-bounds) — restriction keeps ≤ the original u32 edge count
            offsets[new + 1] = neighbor_idx.len() as u32;
        }
        SparseSim {
            offsets,
            neighbor_idx,
            sim,
        }
    }

    /// A copy with all similarities `< tau` (and any zeros) dropped.
    pub fn sparsify(&self, tau: f64) -> SparseSim {
        let n = self.len();
        let mut offsets = vec![0u32; n + 1];
        let mut neighbor_idx = Vec::new();
        let mut sim = Vec::new();
        for i in 0..n {
            let (ids, sims) = self.neighbors(i);
            for (&j, &s) in ids.iter().zip(sims) {
                if (s as f64) >= tau && s > 0.0 {
                    neighbor_idx.push(j);
                    sim.push(s);
                }
            }
            // phocus-lint: allow(cast-bounds) — sparsify keeps ≤ the original u32 edge count
            offsets[i + 1] = neighbor_idx.len() as u32;
        }
        SparseSim {
            offsets,
            neighbor_idx,
            sim,
        }
    }
}

/// Per-subset similarity storage: dense all-pairs, sparse adjacency, or the
/// implicit all-ones store.
#[derive(Debug, Clone, PartialEq)]
pub enum ContextSim {
    /// All pairwise similarities materialized (PHOcus-NS).
    Dense(DenseSim),
    /// Only pairs above a threshold / produced by LSH (PHOcus).
    Sparse(SparseSim),
    /// Implicit `SIM ≡ 1` over `n` members, stored in O(1) memory. Used by
    /// the Greedy-NR baseline view and the Max-Coverage hardness gadget.
    Unit(usize),
}

impl ContextSim {
    /// Number of members covered by the store.
    pub fn len(&self) -> usize {
        match self {
            ContextSim::Dense(d) => d.len(),
            ContextSim::Sparse(s) => s.len(),
            ContextSim::Unit(n) => *n,
        }
    }

    /// Whether the store covers zero members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sparse store, if this is the CSR variant. Hot consumers branch on
    /// this once and then iterate the raw [`SparseSim::neighbors`] slices.
    #[inline]
    pub fn as_sparse(&self) -> Option<&SparseSim> {
        match self {
            ContextSim::Sparse(s) => Some(s),
            _ => None,
        }
    }

    /// The dense store, if this is the packed-triangle variant.
    #[inline]
    pub fn as_dense(&self) -> Option<&DenseSim> {
        match self {
            ContextSim::Dense(d) => Some(d),
            _ => None,
        }
    }

    /// Similarity between local member indices `i` and `j`.
    #[inline]
    pub fn sim(&self, i: usize, j: usize) -> f64 {
        match self {
            ContextSim::Dense(d) => d.sim(i, j),
            ContextSim::Sparse(s) => s.sim(i, j),
            ContextSim::Unit(_) => 1.0,
        }
    }

    /// Calls `f(j, sim)` for every member `j ≠ i` with nonzero stored
    /// similarity to `i`. For dense stores this visits all other members
    /// (zero entries included — the evaluator relies on nonnegativity, not
    /// on skipping zeros); for sparse stores only stored neighbors.
    ///
    /// The dense arm iterates the contiguous [`DenseSim::row`] slice for
    /// `j < i` and walks the column entries with an incrementally maintained
    /// row base for `j > i`, so no per-element triangular multiply occurs.
    #[inline]
    pub fn for_neighbors(&self, i: usize, mut f: impl FnMut(usize, f64)) {
        match self {
            ContextSim::Dense(d) => {
                for (j, &s) in d.row(i).iter().enumerate() {
                    f(j, s as f64);
                }
                let tri = d.raw_tri();
                let mut base = i * (i + 1) / 2;
                for j in i + 1..d.len() {
                    f(j, tri[base + i] as f64);
                    base += j;
                }
            }
            ContextSim::Sparse(s) => {
                let (ids, sims) = s.neighbors(i);
                for (&j, &sim) in ids.iter().zip(sims) {
                    f(j as usize, sim as f64);
                }
            }
            ContextSim::Unit(n) => {
                for j in 0..*n {
                    if j != i {
                        f(j, 1.0);
                    }
                }
            }
        }
    }

    /// Number of stored (unordered) nonzero pairs — a measure of how much
    /// work each marginal-gain evaluation performs.
    pub fn nonzero_pairs(&self) -> usize {
        match self {
            ContextSim::Dense(d) => d.nonzero_pairs(),
            ContextSim::Sparse(s) => s.nonzero_pairs(),
            ContextSim::Unit(n) => n * n.saturating_sub(1) / 2,
        }
    }

    /// Applies τ-sparsification, producing a store with all similarities
    /// `< tau` dropped. Zero-similarity entries are dropped on every arm
    /// (stored zeros and absent pairs are semantically identical).
    pub fn sparsify(&self, tau: f64) -> ContextSim {
        match self {
            ContextSim::Unit(n) => {
                if tau <= 1.0 {
                    ContextSim::Unit(*n)
                } else {
                    ContextSim::Sparse(SparseSim::empty(*n))
                }
            }
            ContextSim::Dense(d) => ContextSim::Sparse(d.sparsify(tau)),
            ContextSim::Sparse(s) => ContextSim::Sparse(s.sparsify(tau)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subset3() -> Subset {
        Subset {
            id: SubsetId(0),
            label: "t".into(),
            weight: 1.0,
            members: vec![PhotoId(0), PhotoId(1), PhotoId(2)],
            relevance: vec![0.4, 0.3, 0.3].into(),
        }
    }

    fn empty_subset() -> Subset {
        Subset {
            id: SubsetId(0),
            label: "e".into(),
            weight: 1.0,
            members: vec![],
            relevance: Vec::new().into(),
        }
    }

    #[test]
    fn dense_from_provider_is_symmetric() {
        let q = subset3();
        let prov =
            FnSimilarity(|_, a: PhotoId, b: PhotoId| 1.0 / (1.0 + (a.0 as f64 - b.0 as f64).abs()));
        let d = DenseSim::from_provider(&q, &prov).unwrap();
        assert_eq!(d.sim(0, 0), 1.0);
        assert!((d.sim(0, 1) - 0.5).abs() < 1e-6);
        assert_eq!(d.sim(0, 1), d.sim(1, 0));
        assert!((d.sim(0, 2) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn dense_rejects_out_of_range() {
        let q = subset3();
        let bad = FnSimilarity(|_, _, _| 1.5);
        assert!(matches!(
            DenseSim::from_provider(&q, &bad),
            Err(ModelError::InvalidSimilarity { .. })
        ));
    }

    #[test]
    fn empty_subset_stores_work() {
        // Regression: `n*(n-1)/2` capacity math underflowed in debug builds
        // when n == 0.
        let q = empty_subset();
        let d = DenseSim::from_provider(&q, &UnitSimilarity).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.nonzero_pairs(), 0);
        let s = d.sparsify(0.5);
        assert!(s.is_empty());
        assert_eq!(s.nonzero_pairs(), 0);
        let m = DenseSim::from_matrix(SubsetId(0), 0, &[]).unwrap();
        assert!(m.is_empty());
        let sp = SparseSim::from_pairs(SubsetId(0), 0, vec![]).unwrap();
        assert!(sp.is_empty());
        assert_eq!(SparseSim::default().len(), 0);
    }

    #[test]
    fn dense_row_and_raw_tri_match_sim() {
        let q = subset3();
        let prov =
            FnSimilarity(|_, a: PhotoId, b: PhotoId| 1.0 / (1.0 + (a.0 as f64 - b.0 as f64).abs()));
        let d = DenseSim::from_provider(&q, &prov).unwrap();
        assert!(d.row(0).is_empty());
        for i in 0..3 {
            let row = d.row(i);
            assert_eq!(row.len(), i);
            for (j, &s) in row.iter().enumerate() {
                assert_eq!(s as f64, d.sim(i, j));
            }
        }
        // Column walk with the documented incremental base.
        let i = 0usize;
        let tri = d.raw_tri();
        let mut base = i * (i + 1) / 2;
        for j in i + 1..d.len() {
            assert_eq!(tri[base + i] as f64, d.sim(i, j));
            base += j;
        }
    }

    #[test]
    fn sparsify_drops_below_tau() {
        let q = subset3();
        let prov = FnSimilarity(
            |_, a: PhotoId, b: PhotoId| {
                if a.0 + b.0 == 1 {
                    0.9
                } else {
                    0.2
                }
            },
        );
        let d = DenseSim::from_provider(&q, &prov).unwrap();
        let s = d.sparsify(0.5);
        assert!((s.sim(0, 1) - 0.9).abs() < 1e-6);
        assert_eq!(s.sim(0, 2), 0.0);
        assert_eq!(s.sim(1, 2), 0.0);
        assert_eq!(s.nonzero_pairs(), 1);
    }

    #[test]
    fn sparse_from_pairs_dedups_by_max() {
        let s = SparseSim::from_pairs(SubsetId(0), 3, vec![(0, 1, 0.3), (1, 0, 0.7), (0, 2, 0.0)])
            .unwrap();
        assert!((s.sim(0, 1) - 0.7).abs() < 1e-6);
        assert_eq!(s.sim(0, 2), 0.0);
        assert_eq!(s.nonzero_pairs(), 1);
        assert_eq!(s.degree(0), 1);
        assert_eq!(s.degree(2), 0);
    }

    #[test]
    fn sparse_from_pairs_rejects_out_of_range_index() {
        let err = SparseSim::from_pairs(SubsetId(3), 2, vec![(0, 5, 0.5)]).unwrap_err();
        match err {
            ModelError::PairIndexOutOfRange {
                subset,
                index,
                members,
            } => {
                assert_eq!(subset, SubsetId(3));
                assert_eq!(index, 5);
                assert_eq!(members, 2);
            }
            other => panic!("expected PairIndexOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn neighbors_iteration_matches_sim() {
        let s = SparseSim::from_pairs(
            SubsetId(0),
            4,
            vec![(0, 1, 0.5), (0, 2, 0.25), (2, 3, 0.75)],
        )
        .unwrap();
        let cs = ContextSim::Sparse(s);
        let mut seen = Vec::new();
        cs.for_neighbors(0, |j, sim| seen.push((j, sim)));
        assert_eq!(seen, vec![(1, 0.5), (2, 0.25)]);
    }

    #[test]
    fn csr_rows_are_sorted_slices() {
        let s = SparseSim::from_pairs(
            SubsetId(0),
            4,
            vec![(3, 0, 0.4), (0, 1, 0.5), (2, 0, 0.25)],
        )
        .unwrap();
        let (ids, sims) = s.neighbors(0);
        assert_eq!(ids, &[1, 2, 3]);
        assert_eq!(sims, &[0.5, 0.25, 0.4]);
        let (ids, sims) = s.neighbors(1);
        assert_eq!(ids, &[0]);
        assert_eq!(sims, &[0.5]);
    }

    #[test]
    fn dense_neighbors_visits_all_others() {
        let q = subset3();
        let d = DenseSim::from_provider(&q, &UnitSimilarity).unwrap();
        let cs = ContextSim::Dense(d);
        let mut count = 0;
        cs.for_neighbors(1, |_, sim| {
            assert_eq!(sim, 1.0);
            count += 1;
        });
        assert_eq!(count, 2);
    }

    #[test]
    fn unit_similarity_is_one() {
        let q = subset3();
        assert_eq!(UnitSimilarity.similarity(&q, PhotoId(0), PhotoId(2)), 1.0);
    }

    #[test]
    fn context_sparsify_on_sparse_store() {
        let s = SparseSim::from_pairs(SubsetId(0), 3, vec![(0, 1, 0.9), (1, 2, 0.3)]).unwrap();
        let cs = ContextSim::Sparse(s).sparsify(0.5);
        assert_eq!(cs.sim(1, 2), 0.0);
        assert!((cs.sim(0, 1) - 0.9).abs() < 1e-6);
    }

    #[test]
    fn dense_and_sparse_sparsify_arms_agree() {
        // The Dense and Sparse sparsify arms must produce identical stores
        // from the same underlying similarities, including dropping zeros
        // even at tau = 0.
        let n = 5;
        let value = |i: usize, j: usize| -> f64 {
            match (i + j) % 4 {
                0 => 0.0,
                1 => 0.2,
                2 => 0.55,
                _ => 0.9,
            }
        };
        let mut matrix = vec![1.0f64; n * n];
        let mut pairs = Vec::new();
        for i in 0..n {
            for j in 0..i {
                let s = value(i, j);
                matrix[i * n + j] = s;
                matrix[j * n + i] = s;
                pairs.push((j as u32, i as u32, s));
            }
        }
        let dense = ContextSim::Dense(DenseSim::from_matrix(SubsetId(0), n, &matrix).unwrap());
        let sparse =
            ContextSim::Sparse(SparseSim::from_pairs(SubsetId(0), n, pairs.clone()).unwrap());
        for tau in [0.0, 0.3, 0.6, 1.1] {
            let from_dense = dense.sparsify(tau);
            let from_sparse = sparse.sparsify(tau);
            assert_eq!(
                from_dense.nonzero_pairs(),
                from_sparse.nonzero_pairs(),
                "pair counts differ at tau={tau}"
            );
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(
                        from_dense.sim(i, j),
                        from_sparse.sim(i, j),
                        "sim({i},{j}) differs at tau={tau}"
                    );
                }
            }
        }
    }
}
