//! Measured per-level recompression trade-offs for multi-action ladders.
//!
//! *Reducing Storage in Large-Scale Photo Sharing Services using
//! Recompression* (PAPERS.md) measures how aggressively a stored JPEG can be
//! recompressed before perceptual quality collapses: the bulk of a photo's
//! bytes buy very little perceived quality, so the size/quality curve is
//! strongly concave — the first recompression step reclaims a third of the
//! bytes at a few percent quality loss, while a thumbnail-grade rendition
//! keeps barely half the quality at a twelfth of the size.
//!
//! This module is the dataset-side knob for that curve: a fixed anchor
//! ladder of `(size_fraction, quality)` points drawn from the paper's
//! measured operating range, and [`recompression_levels`] to take the first
//! `k` rungs. `par-datasets` sits below `phocus` in the crate DAG, so the
//! levels are exposed as plain tuples; `phocus::ActionLadder` turns them
//! into validated storage actions.

/// The measured recompression ladder, strongest-first, as
/// `(size_fraction, quality)` pairs.
///
/// Each rung recompresses harder than the one before it: size fractions and
/// quality factors both decrease strictly, and every value sits in `(0, 1)`
/// (pinned by tests — the downstream `ActionLadder` validator must accept
/// these verbatim).
pub const RECOMPRESSION_LEVELS: [(f64, f64); 4] = [
    // Conservative re-encode: ~2/3 of the bytes, near-transparent quality.
    (0.65, 0.97),
    // The paper's sweet spot: roughly 40% byte savings for a quality loss
    // most viewers cannot see.
    (0.45, 0.93),
    // Aggressive re-encode: visible softening, still serves most queries.
    (0.30, 0.88),
    // Thumbnail-grade rendition: a placeholder, not a substitute.
    (0.08, 0.55),
];

/// The first `k` rungs of [`RECOMPRESSION_LEVELS`] (clamped to its length).
///
/// `k = 0` yields the empty ladder — the degenerate delete-only model.
pub fn recompression_levels(k: usize) -> Vec<(f64, f64)> {
    RECOMPRESSION_LEVELS[..k.min(RECOMPRESSION_LEVELS.len())].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_valid_and_strictly_graded() {
        for w in RECOMPRESSION_LEVELS.windows(2) {
            assert!(w[1].0 < w[0].0, "size fractions decrease");
            assert!(w[1].1 < w[0].1, "quality factors decrease");
        }
        for &(frac, quality) in &RECOMPRESSION_LEVELS {
            assert!(frac > 0.0 && frac < 1.0, "size fraction in (0,1)");
            assert!(quality > 0.0 && quality < 1.0, "quality in (0,1)");
            // Recompression always pays: quality per byte improves.
            assert!(quality > frac, "every rung is worth its bytes");
        }
    }

    #[test]
    fn knob_takes_a_prefix() {
        assert!(recompression_levels(0).is_empty());
        assert_eq!(recompression_levels(2), RECOMPRESSION_LEVELS[..2].to_vec());
        assert_eq!(
            recompression_levels(99).len(),
            RECOMPRESSION_LEVELS.len(),
            "clamped to the measured ladder"
        );
    }
}
