//! A minimal TOML subset reader for the workspace's own `Cargo.toml`s.
//!
//! The workspace builds offline with no external dependencies, so the lint
//! engine reads manifests with a purpose-built line scanner instead of a
//! TOML crate. It understands exactly what the repo's manifests use:
//! `[section]` headers, `key = value` entries, multi-line string arrays,
//! and dotted section headers (`[dependencies.par-core]`). That subset is
//! asserted by the fixture tests; anything fancier should extend this
//! module deliberately.

/// One dependency edge as written in a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dep {
    /// Dependency key (the package name for every edge in this workspace).
    pub name: String,
    /// Whether it came from `[dev-dependencies]`.
    pub dev: bool,
    /// 1-based line of the entry, for spanned diagnostics.
    pub line: u32,
}

/// The slice of a crate manifest the lint rules need.
#[derive(Debug, Clone, Default)]
pub struct CrateManifest {
    /// `package.name`.
    pub name: String,
    /// All `[dependencies]` / `[dev-dependencies]` keys with their lines.
    pub deps: Vec<Dep>,
}

fn strip_comment(line: &str) -> &str {
    // A `#` inside a string value does not occur in this workspace's
    // manifests; treat the first `#` as a comment start.
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Extracts `workspace.members` from a root manifest.
pub fn parse_members(src: &str) -> Vec<String> {
    let mut members = Vec::new();
    let mut section = String::new();
    let mut in_array = false;
    for raw in src.lines() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if !in_array && line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            continue;
        }
        if in_array {
            for s in string_literals(line) {
                members.push(s);
            }
            if line.contains(']') {
                in_array = false;
            }
            continue;
        }
        if section == "workspace" {
            if let Some(rest) = line.strip_prefix("members") {
                let rest = rest.trim_start().trim_start_matches('=').trim_start();
                if let Some(after) = rest.strip_prefix('[') {
                    for s in string_literals(after) {
                        members.push(s);
                    }
                    in_array = !after.contains(']');
                }
            }
        }
    }
    members
}

/// Extracts the package name and dependency keys from a crate manifest.
pub fn parse_crate_manifest(src: &str) -> CrateManifest {
    let mut m = CrateManifest::default();
    let mut section = String::new();
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            // Dotted form: `[dependencies.par-core]`.
            for (tbl, dev) in [("dependencies.", false), ("dev-dependencies.", true)] {
                if let Some(name) = section.strip_prefix(tbl) {
                    m.deps.push(Dep {
                        name: name.to_string(),
                        dev,
                        line: lineno,
                    });
                }
            }
            continue;
        }
        let Some(eq) = line.find('=') else {
            continue;
        };
        let key = line[..eq].trim();
        let value = line[eq + 1..].trim();
        match section.as_str() {
            "package" if key == "name" => {
                if let Some(v) = string_literals(value).into_iter().next() {
                    m.name = v;
                }
            }
            "dependencies" | "dev-dependencies" | "build-dependencies" => {
                m.deps.push(Dep {
                    name: key.to_string(),
                    dev: section != "dependencies",
                    line: lineno,
                });
            }
            _ => {}
        }
    }
    m
}

/// All double-quoted string literals on one line, unescaped naively (the
/// workspace's manifests contain no escapes).
fn string_literals(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(start) = rest.find('"') {
        let after = &rest[start + 1..];
        let Some(end) = after.find('"') else {
            break;
        };
        out.push(after[..end].to_string());
        rest = &after[end + 1..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_multiline_array() {
        let src = "[workspace]\nmembers = [\n  \"crates/a\", # inline\n  \"crates/b\",\n]\n";
        assert_eq!(parse_members(src), vec!["crates/a", "crates/b"]);
    }

    #[test]
    fn members_single_line() {
        let src = "[workspace]\nmembers = [\"x\", \"y\"]\n";
        assert_eq!(parse_members(src), vec!["x", "y"]);
    }

    #[test]
    fn crate_manifest_deps_and_name() {
        let src = "[package]\nname = \"par-algo\"\n\n[dependencies]\npar-core = { workspace = true }\nrand = { workspace = true }\n\n[dev-dependencies]\nproptest = { workspace = true }\n";
        let m = parse_crate_manifest(src);
        assert_eq!(m.name, "par-algo");
        let names: Vec<(&str, bool)> = m.deps.iter().map(|d| (d.name.as_str(), d.dev)).collect();
        assert_eq!(
            names,
            vec![("par-core", false), ("rand", false), ("proptest", true)]
        );
        assert_eq!(m.deps[0].line, 5);
    }

    #[test]
    fn dotted_dependency_sections() {
        let src = "[package]\nname = \"x\"\n[dependencies.par-core]\nworkspace = true\n";
        let m = parse_crate_manifest(src);
        assert_eq!(m.deps.len(), 1);
        assert_eq!(m.deps[0].name, "par-core");
    }

    #[test]
    fn comments_are_ignored() {
        let src = "[package]\n# name = \"wrong\"\nname = \"right\" # trailing\n";
        assert_eq!(parse_crate_manifest(src).name, "right");
    }
}
