//! The data-dependent *online bound* of Leskovec et al. (Section 4.2).
//!
//! For any solution `Ŝ` and the true optimum `O` (with `C(O) ≤ B`),
//! submodularity gives
//!
//! ```text
//! G(O) ≤ G(Ŝ) + Σ_{p ∈ O∖Ŝ} δ_p(Ŝ)  ≤  G(Ŝ) + max_{C(T)≤B} Σ_{p∈T} δ_p(Ŝ)
//! ```
//!
//! and the inner maximization relaxes to a *fractional* knapsack over the
//! current marginal gains, solvable by sorting on density. The resulting
//! upper bound on `OPT` yields an a-posteriori performance certificate
//! `G(Ŝ)/UB` that in practice far exceeds the `(1 − 1/e)/2` a-priori
//! guarantee — the property the paper leverages in Section 5.

use par_core::{Evaluator, Instance, PhotoId};

/// An a-posteriori optimality certificate for a concrete solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineBound {
    /// The solution's objective value `G(Ŝ)`.
    pub score: f64,
    /// The certified upper bound on `OPT`.
    pub upper_bound: f64,
    /// `score / upper_bound` — a lower bound on the achieved performance
    /// ratio. Always ≥ the a-priori `(1−1/e)/2 ≈ 0.316` for Algorithm 1
    /// outputs, and typically much larger.
    pub ratio: f64,
}

/// Computes the online bound for `solution` on `inst` (with budget
/// `inst.budget()`).
pub fn online_bound(inst: &Instance, solution: &[PhotoId]) -> OnlineBound {
    let mut ev = Evaluator::new(inst);
    for &p in solution {
        ev.add(p);
    }
    let score = ev.score();

    // Marginal gains and costs of all unselected photos, as one parallel
    // batch against the fixed solution state.
    let unselected: Vec<PhotoId> = (0..inst.num_photos() as u32)
        .map(PhotoId)
        .filter(|&p| !ev.is_selected(p))
        .collect();
    let gains = ev.batch_gains(&unselected);
    let mut density: Vec<(f64, u64)> = unselected
        .iter()
        .zip(&gains)
        .map(|(&p, &g)| (g, inst.cost(p)))
        .filter(|&(g, _)| g > 0.0)
        .collect();
    // Fractional knapsack: sort by gain density, fill budget B.
    density.sort_unstable_by(|a, b| {
        let da = a.0 / a.1 as f64;
        let db = b.0 / b.1 as f64;
        db.total_cmp(&da)
    });
    let mut remaining = inst.budget() as f64;
    let mut extra = 0.0;
    for (gain, cost) in density {
        if remaining <= 0.0 {
            break;
        }
        let cost = cost as f64;
        if cost <= remaining {
            extra += gain;
            remaining -= cost;
        } else {
            extra += gain * (remaining / cost);
            remaining = 0.0;
        }
    }
    let upper_bound = (score + extra).max(score);
    let ratio = if upper_bound > 0.0 {
        score / upper_bound
    } else {
        1.0
    };
    OnlineBound {
        score,
        upper_bound,
        ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{brute_force, main_algorithm, BruteForceConfig};
    use par_core::fixtures::{figure1_instance, random_instance, RandomInstanceConfig, MB};

    #[test]
    fn bound_is_valid_against_brute_force() {
        let cfg = RandomInstanceConfig {
            photos: 14,
            subsets: 5,
            budget_fraction: 0.35,
            ..Default::default()
        };
        for seed in 0..6 {
            let inst = random_instance(seed, &cfg);
            let out = main_algorithm(&inst);
            let bound = online_bound(&inst, &out.best.selected);
            let opt = brute_force(&inst, &BruteForceConfig::default()).unwrap();
            assert!(
                bound.upper_bound + 1e-9 >= opt.score,
                "UB {} < OPT {} (seed {seed})",
                bound.upper_bound,
                opt.score
            );
            assert!(bound.ratio <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn full_budget_bound_is_tight() {
        let inst = figure1_instance(u64::MAX);
        let out = main_algorithm(&inst);
        let bound = online_bound(&inst, &out.best.selected);
        assert!((bound.ratio - 1.0).abs() < 1e-9);
        assert!((bound.upper_bound - inst.max_score()).abs() < 1e-9);
    }

    #[test]
    fn ratio_exceeds_a_priori_guarantee_in_practice() {
        let inst = figure1_instance(3 * MB);
        let out = main_algorithm(&inst);
        let bound = online_bound(&inst, &out.best.selected);
        // The a-priori bound is (1−1/e)/2 ≈ 0.316; the online bound should
        // certify far more on this small instance.
        assert!(bound.ratio > 0.6, "ratio {}", bound.ratio);
    }

    #[test]
    fn empty_solution_bound_is_knapsack_of_gains() {
        let inst = figure1_instance(2 * MB);
        let bound = online_bound(&inst, &[]);
        assert_eq!(bound.score, 0.0);
        assert!(bound.upper_bound > 0.0);
        assert_eq!(bound.ratio, 0.0);
    }
}
