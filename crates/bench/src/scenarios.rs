//! Runners for the evaluation's in-text scenarios: the Section 5.3 small-
//! budget deployment, the Section 5.4 preference test, the ~90% cost-benefit
//! win rate, and the lazy-evaluation speedup cited from Leskovec et al.

use crate::registry::{dataset, DatasetId, Scale, SEED};
use crate::Series;
use par_algo::{eager_greedy, lazy_greedy, GreedyRule};
use par_datasets::{generate_ecommerce, EcConfig, EcDomain};
use par_study::{preference_study, PreferenceConfig};
use phocus::suite::Algo;
use phocus::{
    represent, run_suite, Parallelism, Phocus, PhocusConfig, RepresentationConfig, SuiteConfig,
};

/// Section 5.3's budget scenario: an Electronics landing-page deployment
/// with ~640 photos (~50 MB) and a 2 MB cache (≈4% of the archive), where
/// the paper reports PHOcus ≈35%, Greedy-NCS ≈18% and Greedy-NR ≈16% of the
/// total quality. Values are percent of total quality.
pub fn scenario_budget(_scale: Scale) -> Vec<Series> {
    // ~640 photos regardless of scale (the deployment was this size).
    let mut cfg = EcConfig::small(EcDomain::Electronics, SEED ^ 0xB0D6E7);
    cfg.catalog_size = 1_500;
    cfg.num_queries = 30;
    cfg.results_per_query = 35;
    let u = generate_ecommerce(&cfg);
    let budget = u.total_cost() / 25; // ≈ 4%
    let suite_cfg = SuiteConfig {
        algos: vec![Algo::GreedyNr, Algo::GreedyNcs, Algo::Phocus],
        ..Default::default()
    };
    let res = run_suite(&u, budget, &suite_cfg).expect("suite runs");
    res.entries
        .iter()
        .map(|e| {
            Series::new(
                "scenario_budget",
                "2MB-of-50MB",
                e.algo.name(),
                100.0 * e.quality / res.max_score,
            )
        })
        .collect()
}

/// Section 5.4's 50-round preference test per domain. Values are round
/// counts; the paper reports (35, 3, 12), (37, 4, 9), (34, 5, 11).
pub fn scenario_preference(scale: Scale) -> Vec<Series> {
    let mut rows = Vec::new();
    for (id, label) in [
        (DatasetId::EcFashion, "Fashion"),
        (DatasetId::EcElectronics, "Electronics"),
        (DatasetId::EcHomeGarden, "Home & Garden"),
    ] {
        let u = dataset(id, scale);
        let cfg = PreferenceConfig {
            rounds: 50,
            photos_per_round: 100,
            seed: SEED ^ 0x50FA,
            ..Default::default()
        };
        let c = preference_study(&u, &cfg);
        rows.push(Series::new(
            "scenario_preference",
            label,
            "PHOcus",
            c.phocus as f64,
        ));
        rows.push(Series::new(
            "scenario_preference",
            label,
            "Greedy-NCS",
            c.baseline as f64,
        ));
        rows.push(Series::new(
            "scenario_preference",
            label,
            "cannot decide",
            c.undecided as f64,
        ));
    }
    rows
}

/// The lazy-evaluation speedup (Section 4.2 cites ~700× from Leskovec et
/// al. at their scale): gain evaluations and wall-clock of CELF vs the eager
/// greedy on P-1K.
pub fn scenario_lazy(scale: Scale) -> Vec<Series> {
    let u = dataset(DatasetId::P1K, scale);
    let budget = u.total_cost() / 5;
    let inst = represent(&u, budget, &RepresentationConfig::default()).expect("representation");
    let lazy = lazy_greedy(&inst, GreedyRule::CostBenefit);
    let eager = eager_greedy(&inst, GreedyRule::CostBenefit);
    assert_eq!(lazy.selected, eager.selected, "lazy must match eager");
    vec![
        Series::new(
            "scenario_lazy",
            "gain evals",
            "CELF (lazy)",
            lazy.stats.gain_evals as f64,
        ),
        Series::new(
            "scenario_lazy",
            "gain evals",
            "eager greedy",
            eager.stats.gain_evals as f64,
        ),
        Series::new(
            "scenario_lazy",
            "time (s)",
            "CELF (lazy)",
            lazy.stats.elapsed.as_secs_f64(),
        ),
        Series::new(
            "scenario_lazy",
            "time (s)",
            "eager greedy",
            eager.stats.elapsed.as_secs_f64(),
        ),
        Series::new(
            "scenario_lazy",
            "speedup",
            "evals ratio",
            eager.stats.gain_evals as f64 / lazy.stats.gain_evals.max(1) as f64,
        ),
    ]
}

/// Parallel-scaling report: runs the full PHOcus pipeline on P-1K at each
/// requested worker count and records wall-clock (represent + solve,
/// seconds) alongside the thread count. The solution is identical at every
/// thread count — asserted here — so the rows differ only in time.
pub fn scenario_parallel(scale: Scale, thread_counts: &[usize]) -> Vec<Series> {
    let u = dataset(DatasetId::P1K, scale);
    let budget = u.total_cost() / 5;
    let mut rows = Vec::new();
    let mut reference: Option<(Vec<par_core::PhotoId>, f64)> = None;
    for &t in thread_counts {
        let solver = Phocus::new(PhocusConfig {
            representation: RepresentationConfig::default(),
            certify_sparsification: false,
            parallelism: Parallelism::with_threads(t),
            sharding: true,
        });
        let report = solver.solve(&u, budget).expect("solver runs");
        match &reference {
            None => reference = Some((report.selected.clone(), report.score)),
            Some((sel, score)) => {
                assert_eq!(*sel, report.selected, "selection varies with threads");
                assert_eq!(
                    score.to_bits(),
                    report.score.to_bits(),
                    "score varies with threads"
                );
            }
        }
        let label = format!("{} threads", report.threads);
        rows.push(Series::new(
            "scenario_parallel",
            label.clone(),
            "threads",
            report.threads as f64,
        ));
        rows.push(Series::new(
            "scenario_parallel",
            label.clone(),
            "represent (s)",
            report.represent_time.as_secs_f64(),
        ));
        rows.push(Series::new(
            "scenario_parallel",
            label,
            "solve (s)",
            report.solve_time.as_secs_f64(),
        ));
    }
    rows
}

/// Section 5.3's observation that the cost-benefit sub-algorithm wins
/// roughly 90% of non-uniform-cost runs: counts CB wins across the quality
/// figures' (dataset, budget) grid. Values: wins and runs.
pub fn scenario_cb_wins(scale: Scale) -> Vec<Series> {
    let mut wins = 0usize;
    let mut runs = 0usize;
    for id in [
        DatasetId::P1K,
        DatasetId::EcFashion,
        DatasetId::EcElectronics,
    ] {
        let u = dataset(id, scale);
        for frac in [0.05, 0.1, 0.2, 0.4] {
            let budget = ((u.total_cost() as f64) * frac) as u64;
            let inst =
                represent(&u, budget, &RepresentationConfig::default()).expect("representation");
            let out = par_algo::main_algorithm(&inst);
            runs += 1;
            // Ties count for CB (Algorithm 1 breaks ties toward CB).
            if out.cb.score + 1e-12 >= out.uc.score {
                wins += 1;
            }
        }
    }
    vec![
        Series::new("scenario_cb_wins", "all runs", "CB wins", wins as f64),
        Series::new("scenario_cb_wins", "all runs", "runs", runs as f64),
        Series::new(
            "scenario_cb_wins",
            "all runs",
            "win rate %",
            100.0 * wins as f64 / runs.max(1) as f64,
        ),
    ]
}

/// The paper's "unexpected insights" claim, quantified: per domain, the
/// mean number of landing pages served by the photos PHOcus kept but the
/// (simulated) analyst missed, relative to the analyst's own unique picks.
/// A ratio above 1 means the solver systematically found more reusable
/// photos — exactly the insight the analysts reported.
pub fn scenario_insights(scale: Scale) -> Vec<Series> {
    let mut rows = Vec::new();
    for (id, label) in [
        (DatasetId::EcFashion, "Fashion"),
        (DatasetId::EcElectronics, "Electronics"),
        (DatasetId::EcHomeGarden, "Home & Garden"),
    ] {
        let u = dataset(id, scale);
        let budget = u.total_cost() / 12;
        let inst = represent(&u, budget, &RepresentationConfig::default()).expect("representation");
        let solver = par_algo::main_algorithm(&inst).best.selected;
        let manual = par_study::ManualAnalyst::default().select(&inst).selected;
        let report = par_study::insights::analyze(&inst, &solver, &manual);
        rows.push(Series::new(
            "scenario_insights",
            label,
            "value ratio",
            report.value_ratio,
        ));
        rows.push(Series::new(
            "scenario_insights",
            label,
            "reuse ratio",
            report.reuse_ratio,
        ));
        rows.push(Series::new(
            "scenario_insights",
            label,
            "solver-only picks",
            report.solver_only.len() as f64,
        ));
        rows.push(Series::new(
            "scenario_insights",
            label,
            "agreed picks",
            report.agreed as f64,
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_scenario_shows_speedup() {
        let rows = scenario_lazy(Scale::Scaled);
        let ratio = rows
            .iter()
            .find(|r| r.series == "evals ratio")
            .unwrap()
            .value;
        assert!(ratio > 2.0, "lazy speedup only {ratio}×");
    }

    #[test]
    fn parallel_scenario_reports_identical_solutions() {
        // Thread counts above the core count still exercise the parallel
        // code paths; the runner itself asserts solution identity.
        let rows = scenario_parallel(Scale::Scaled, &[1, 4]);
        assert_eq!(rows.len(), 6);
        let threads: Vec<f64> = rows
            .iter()
            .filter(|r| r.series == "threads")
            .map(|r| r.value)
            .collect();
        assert_eq!(threads, vec![1.0, 4.0]);
        assert!(rows
            .iter()
            .filter(|r| r.series.ends_with("(s)"))
            .all(|r| r.value >= 0.0));
    }

    #[test]
    fn budget_scenario_ranks_algorithms() {
        let rows = scenario_budget(Scale::Scaled);
        let v = |name: &str| {
            rows.iter()
                .find(|r| r.series == name)
                .map(|r| r.value)
                .unwrap()
        };
        assert!(v("PHOcus") >= v("Greedy-NCS") * 0.97);
        assert!(v("PHOcus") > v("Greedy-NR"));
        // Small budget ⇒ nobody gets near 100%.
        assert!(v("PHOcus") < 99.0);
    }
}
