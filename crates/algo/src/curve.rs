//! Quality-vs-budget curves from a single greedy run.
//!
//! The evaluation figures (5a–5c) sweep budgets, re-solving from scratch at
//! each point. The greedy's selection order is almost budget-independent —
//! the budget only gates which photos still *fit* — so one cost-benefit run
//! at the largest budget yields an order whose filtered prefixes are
//! feasible, near-greedy solutions for every smaller budget. This turns a
//! `k`-budget sweep from `k` solver runs into one run plus `k` cheap prefix
//! evaluations, at a quality loss of a few percent (bounded empirically by
//! the tests).

use crate::celf::{lazy_greedy, GreedyRule};
use par_core::{Evaluator, Instance, PhotoId};

/// One point of a quality-vs-budget curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// The budget (bytes).
    pub budget: u64,
    /// Quality of the filtered-prefix solution at this budget.
    pub score: f64,
    /// Its cost (≤ budget).
    pub cost: u64,
    /// Photos retained.
    pub retained: usize,
}

/// Computes the curve for the given budgets (any order; the result follows
/// the input order). Budgets below the required-set cost are clamped up to
/// it, so every point is policy-feasible.
pub fn quality_curve(inst: &Instance, budgets: &[u64]) -> Vec<CurvePoint> {
    if budgets.is_empty() {
        return Vec::new();
    }
    let max_budget = (*budgets.iter().max().expect("non-empty")).max(inst.required_cost());
    let reference = inst
        .with_budget(max_budget)
        .expect("max budget covers S₀");
    let order: Vec<PhotoId> = lazy_greedy(&reference, GreedyRule::CostBenefit).selected;

    budgets
        .iter()
        .map(|&b| {
            let budget = b.max(inst.required_cost());
            // Filtered prefix: walk the order, keep what fits.
            let mut ev = Evaluator::new(inst);
            for &p in &order {
                if ev.fits(p, budget) {
                    ev.add(p);
                }
            }
            CurvePoint {
                budget,
                score: ev.score(),
                cost: ev.cost(),
                retained: ev.num_selected(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::main_algorithm;
    use par_core::fixtures::{random_instance, RandomInstanceConfig};

    fn instance(seed: u64) -> Instance {
        random_instance(
            seed,
            &RandomInstanceConfig {
                photos: 80,
                subsets: 20,
                subset_size: (2, 10),
                cost_range: (50, 500),
                budget_fraction: 1.0,
                required_prob: 0.05,
            },
        )
    }

    #[test]
    fn curve_is_monotone_in_budget() {
        let inst = instance(1);
        let total = inst.total_cost();
        let budgets: Vec<u64> = (1..=10).map(|k| total * k / 10).collect();
        let curve = quality_curve(&inst, &budgets);
        for w in curve.windows(2) {
            assert!(w[1].score + 1e-9 >= w[0].score, "curve dipped: {w:?}");
            assert!(w[0].cost <= w[0].budget);
        }
        // Full budget retains everything.
        assert!((curve.last().unwrap().score - inst.max_score()).abs() < 1e-6);
    }

    #[test]
    fn curve_tracks_per_budget_resolves() {
        // Filtered prefixes lose only a few percent vs re-solving.
        for seed in 0..4 {
            let inst = instance(seed);
            let total = inst.total_cost();
            let budgets: Vec<u64> = vec![total / 10, total / 4, total / 2];
            let curve = quality_curve(&inst, &budgets);
            for (point, &b) in curve.iter().zip(&budgets) {
                let resolved = main_algorithm(&inst.with_budget(b.max(inst.required_cost())).unwrap())
                    .best
                    .score;
                assert!(
                    point.score >= 0.9 * resolved,
                    "seed {seed}, budget {b}: prefix {} vs resolve {resolved}",
                    point.score
                );
            }
        }
    }

    #[test]
    fn respects_required_floor() {
        let inst = instance(7);
        let curve = quality_curve(&inst, &[1]); // absurdly small budget
        assert_eq!(curve[0].budget, inst.required_cost().max(1));
        assert!(curve[0].retained >= inst.required().len());
    }

    #[test]
    fn empty_budget_list() {
        let inst = instance(9);
        assert!(quality_curve(&inst, &[]).is_empty());
    }

    #[test]
    fn result_follows_input_order() {
        let inst = instance(11);
        let total = inst.total_cost();
        let curve = quality_curve(&inst, &[total / 2, total / 10]);
        assert!(curve[0].budget > curve[1].budget);
        assert!(curve[0].score >= curve[1].score);
    }
}
