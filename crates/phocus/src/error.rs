//! The unified PHOcus error type.
//!
//! Every fallible system-level operation — dataset parsing, representation,
//! planning, solving — returns [`PhocusError`], which wraps the per-layer
//! error enums (`par_core::ModelError`, `par_datasets::DatasetError`,
//! `par_lsh::LshError`, `par_algo::SolveError`) via `From`, so `?` composes
//! across crate boundaries and the CLI can print one diagnostic per failure
//! instead of panicking.

use par_algo::SolveError;
use par_core::{ModelError, PackError};
use par_datasets::DatasetError;
use par_lsh::LshError;
use std::fmt;

/// Convenience result alias for PHOcus operations.
pub type Result<T> = std::result::Result<T, PhocusError>;

/// Any error a PHOcus pipeline stage can raise.
#[derive(Debug, Clone, PartialEq)]
pub enum PhocusError {
    /// A model-layer violation (unknown photo, infeasible budget, cost
    /// overflow, …).
    Model(ModelError),
    /// A dataset-layer failure (parse error, invalid universe, …).
    Dataset(DatasetError),
    /// An LSH planning failure (bad threshold or recall target).
    Lsh(LshError),
    /// A solver-layer failure (bad cardinality or ε).
    Solve(SolveError),
    /// A `phocus-pack` file failed to load (truncation, checksum mismatch,
    /// version skew, malformed section, …).
    Pack(PackError),
    /// A catalog index is unusable: malformed line, missing pack file, or a
    /// content checksum that no longer matches the pack on disk.
    Catalog {
        /// The catalog path (or entry) that failed.
        entry: String,
        /// What was wrong with it.
        message: String,
    },
    /// The budget-planner quality target is outside `(0, 1]` (or NaN).
    InvalidTarget(f64),
    /// A compression [`ActionLadder`](crate::ActionLadder) level is unusable:
    /// a `size_fraction`/`quality` outside `(0, 1)` (or non-finite), or a
    /// `--ladder` spec entry that does not parse as `quality:size_fraction`.
    InvalidLadder {
        /// The 0-based ladder level (or spec entry) that failed.
        level: usize,
        /// What was wrong with it.
        message: String,
    },
    /// An I/O failure while reading an input file (CLI layer).
    Io {
        /// The path that failed.
        path: String,
        /// The underlying OS error message.
        message: String,
    },
}

impl fmt::Display for PhocusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhocusError::Model(e) => write!(f, "{e}"),
            PhocusError::Dataset(e) => write!(f, "{e}"),
            PhocusError::Lsh(e) => write!(f, "{e}"),
            PhocusError::Solve(e) => write!(f, "{e}"),
            PhocusError::Pack(e) => write!(f, "{e}"),
            PhocusError::Catalog { entry, message } => {
                write!(f, "catalog {entry}: {message}")
            }
            PhocusError::InvalidTarget(t) => {
                write!(f, "quality target {t} is not in (0, 1]")
            }
            PhocusError::InvalidLadder { level, message } => {
                write!(f, "ladder level {level}: {message}")
            }
            PhocusError::Io { path, message } => {
                write!(f, "cannot read {path}: {message}")
            }
        }
    }
}

impl std::error::Error for PhocusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PhocusError::Model(e) => Some(e),
            PhocusError::Dataset(e) => Some(e),
            PhocusError::Lsh(e) => Some(e),
            PhocusError::Solve(e) => Some(e),
            PhocusError::Pack(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for PhocusError {
    fn from(e: ModelError) -> Self {
        PhocusError::Model(e)
    }
}

impl From<DatasetError> for PhocusError {
    fn from(e: DatasetError) -> Self {
        PhocusError::Dataset(e)
    }
}

impl From<LshError> for PhocusError {
    fn from(e: LshError) -> Self {
        PhocusError::Lsh(e)
    }
}

impl From<SolveError> for PhocusError {
    fn from(e: SolveError) -> Self {
        PhocusError::Solve(e)
    }
}

impl From<PackError> for PhocusError {
    fn from(e: PackError) -> Self {
        PhocusError::Pack(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_every_layer() {
        let m: PhocusError = ModelError::CostOverflow.into();
        assert!(m.to_string().contains("overflow"));
        let d: PhocusError = DatasetError::CostOverflow.into();
        assert!(matches!(d, PhocusError::Dataset(_)));
        let l: PhocusError = LshError::InvalidTau(2.0).into();
        assert!(l.to_string().contains("τ"));
        let s: PhocusError = SolveError::InvalidCardinality(0).into();
        assert!(matches!(s, PhocusError::Solve(_)));
    }

    #[test]
    fn sources_chain_to_the_wrapped_error() {
        let e: PhocusError = ModelError::CostOverflow.into();
        let dyn_err: &dyn std::error::Error = &e;
        assert!(dyn_err.source().is_some());
        let io = PhocusError::Io {
            path: "x.tsv".into(),
            message: "no such file".into(),
        };
        assert!(io.to_string().contains("x.tsv"));
        let dyn_io: &dyn std::error::Error = &io;
        assert!(dyn_io.source().is_none());
    }

    #[test]
    fn invalid_ladder_names_the_level() {
        let e = PhocusError::InvalidLadder {
            level: 2,
            message: "quality 1.5 is not in (0, 1)".into(),
        };
        assert!(e.to_string().contains("ladder level 2"));
        assert!(e.to_string().contains("1.5"));
        let dyn_err: &dyn std::error::Error = &e;
        assert!(dyn_err.source().is_none());
    }
}
