//! CI guard over the recorded benchmark baselines.
//!
//! Scans every `BENCH_*.json` at the repo root (newline-delimited JSON, one
//! benchmark row per line after the leading meta line) and fails — exit
//! code 1, offenders listed — if any row records a `speedup_mean` below 1.0
//! without an accompanying `"known_regression"` note in the same row. Rows
//! without a `speedup_mean` field (meta, prepare, latency) are ignored, and
//! thread-scaling rows (`"threads": N` with `N > 1`) are skipped with a
//! logged note when the runner itself reports a single core — a 1-core host
//! cannot distinguish a scaling regression from dispatch overhead.
//!
//! The parsing is deliberately a dumb string scan: the files are
//! machine-written one-row-per-line by the bench harness, and the guard
//! must not drag a JSON dependency into the workspace.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Extracts the number following `"<key>":` in `line`, if any.
fn field(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = line[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn speedup_mean(line: &str) -> Option<f64> {
    field(line, "speedup_mean")
}

/// The worker-thread count a row was measured at, if it is a scaling row.
fn row_threads(line: &str) -> Option<usize> {
    field(line, "threads").map(|t| t as usize)
}

/// The repo root: the workspace directory two levels above this crate.
fn repo_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .expect("crates/bench has a workspace root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let root = repo_root();
    let mut files: Vec<PathBuf> = std::fs::read_dir(&root)
        .expect("readable repo root")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    if files.is_empty() {
        eprintln!("bench_guard: no BENCH_*.json found under {}", root.display());
        return ExitCode::FAILURE;
    }

    let cores = par_exec::available_threads();
    let mut rows = 0usize;
    let mut skipped = 0usize;
    let mut offenders = Vec::new();
    for path in &files {
        let text = std::fs::read_to_string(path).expect("readable bench file");
        for (lineno, line) in text.lines().enumerate() {
            let Some(mean) = speedup_mean(line) else {
                continue;
            };
            if cores == 1 {
                if let Some(threads) = row_threads(line) {
                    if threads > 1 {
                        eprintln!(
                            "bench_guard: note: skipping thread-scaling row {}:{} \
                             (threads={threads}) — runner reports 1 core",
                            path.file_name().unwrap().to_str().unwrap(),
                            lineno + 1,
                        );
                        skipped += 1;
                        continue;
                    }
                }
            }
            rows += 1;
            if mean < 1.0 && !line.contains("known_regression") {
                offenders.push(format!(
                    "{}:{}: speedup_mean {} < 1.0 without a known_regression note",
                    path.file_name().unwrap().to_str().unwrap(),
                    lineno + 1,
                    mean
                ));
            }
        }
    }

    if offenders.is_empty() {
        println!(
            "bench_guard: OK ({} speedup rows across {} files, {} scaling rows skipped)",
            rows,
            files.len(),
            skipped
        );
        ExitCode::SUCCESS
    } else {
        for o in &offenders {
            eprintln!("bench_guard: {o}");
        }
        ExitCode::FAILURE
    }
}
