//! Sparsification benchmarks — the timing side of Figures 5e/5f: dense
//! (PHOcus-NS) vs LSH-sparsified (PHOcus) representation and solving.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use par_algo::main_algorithm;
use par_bench::{dataset, DatasetId, Scale};
use phocus::{represent, RepresentationConfig, Sparsification};

fn bench_representation(c: &mut Criterion) {
    let u = dataset(DatasetId::P1K, Scale::Scaled);
    let budget = u.total_cost() / 5;
    let mut group = c.benchmark_group("representation");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("dense", "P-1K"), |b| {
        b.iter(|| represent(&u, budget, &RepresentationConfig::default()).unwrap())
    });
    for tau in [0.5, 0.7] {
        let cfg = RepresentationConfig {
            sparsification: Sparsification::Lsh {
                tau,
                target_recall: 0.95,
                seed: 1,
            },
            ..Default::default()
        };
        group.bench_function(BenchmarkId::new("lsh", format!("P-1K tau={tau}")), |b| {
            b.iter(|| represent(&u, budget, &cfg).unwrap())
        });
    }
    group.finish();
}

fn bench_solve_dense_vs_sparse(c: &mut Criterion) {
    let u = dataset(DatasetId::P1K, Scale::Scaled);
    let budget = u.total_cost() / 5;
    let dense = represent(&u, budget, &RepresentationConfig::default()).unwrap();
    let sparse = represent(
        &u,
        budget,
        &RepresentationConfig {
            sparsification: Sparsification::Lsh {
                tau: 0.6,
                target_recall: 0.95,
                seed: 1,
            },
            ..Default::default()
        },
    )
    .unwrap();
    let mut group = c.benchmark_group("solve");
    group.sample_size(10);
    group.bench_function("dense (PHOcus-NS)", |b| {
        b.iter(|| main_algorithm(std::hint::black_box(&dense)))
    });
    group.bench_function("sparse (PHOcus)", |b| {
        b.iter(|| main_algorithm(std::hint::black_box(&sparse)))
    });
    group.finish();
}

criterion_group!(benches, bench_representation, bench_solve_dense_vs_sparse);
criterion_main!(benches);
