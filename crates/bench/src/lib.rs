//! # par-bench — the experiment harness
//!
//! One runner per table/figure of the paper's evaluation (Section 5). Each
//! runner returns tidy [`Series`] rows (`figure, x, series, value`) that the
//! `reproduce` binary prints and writes to `results/*.csv`; the Criterion
//! benches under `benches/` cover the timing-sensitive kernels.
//!
//! Every runner has two scales:
//!
//! * **scaled** (default) — smaller datasets/budgets chosen to preserve the
//!   figure's *shape* (who wins, by what factor, where curves converge)
//!   while finishing in seconds to minutes;
//! * **full** — the paper's dataset sizes and budget grids.

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod ablations;
pub mod figures;
pub mod registry;
pub mod scenarios;

pub use ablations::*;
pub use figures::*;
pub use registry::{dataset, DatasetId, Scale};
pub use scenarios::*;

/// One data point of a regenerated table/figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Figure/table identifier (e.g. `"fig5a"`).
    pub figure: &'static str,
    /// X coordinate (budget label, dataset name, domain, …).
    pub x: String,
    /// Series name (algorithm, metric, …).
    pub series: String,
    /// The measured value.
    pub value: f64,
}

impl Series {
    /// Creates a row.
    pub fn new(
        figure: &'static str,
        x: impl Into<String>,
        series: impl Into<String>,
        value: f64,
    ) -> Self {
        Series {
            figure,
            x: x.into(),
            series: series.into(),
            value,
        }
    }
}

/// Renders rows as CSV (`figure,x,series,value` with header).
pub fn to_csv(rows: &[Series]) -> String {
    let mut out = String::from("figure,x,series,value\n");
    for r in rows {
        // Values are numeric and the labels we generate contain no commas or
        // quotes, but escape defensively.
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(&format!(
            "{},{},{},{}\n",
            r.figure,
            esc(&r.x),
            esc(&r.series),
            r.value
        ));
    }
    out
}

/// Renders rows as an aligned text table grouped by x, one column per series.
pub fn to_table(rows: &[Series]) -> String {
    let mut xs: Vec<&str> = Vec::new();
    let mut series: Vec<&str> = Vec::new();
    for r in rows {
        if !xs.contains(&r.x.as_str()) {
            xs.push(&r.x);
        }
        if !series.contains(&r.series.as_str()) {
            series.push(&r.series);
        }
    }
    let mut out = format!("{:<16}", "");
    for s in &series {
        out.push_str(&format!("{s:>14}"));
    }
    out.push('\n');
    for x in xs {
        out.push_str(&format!("{x:<16}"));
        for s in &series {
            let v = rows
                .iter()
                .find(|r| r.x == x && r.series == *s)
                .map(|r| r.value);
            match v {
                Some(v) if v.abs() >= 1000.0 => out.push_str(&format!("{v:>14.0}")),
                Some(v) => out.push_str(&format!("{v:>14.3}")),
                None => out.push_str(&format!("{:>14}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip_shape() {
        let rows = vec![
            Series::new("fig5a", "5MB", "PHOcus", 1200.0),
            Series::new("fig5a", "5MB", "RAND", 400.0),
        ];
        let csv = to_csv(&rows);
        assert!(csv.starts_with("figure,x,series,value\n"));
        assert!(csv.contains("fig5a,5MB,PHOcus,1200"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn table_aligns_series_columns() {
        let rows = vec![
            Series::new("f", "a", "s1", 1.0),
            Series::new("f", "a", "s2", 2.0),
            Series::new("f", "b", "s1", 3.0),
        ];
        let t = to_table(&rows);
        assert!(t.contains("s1"));
        assert!(t.contains("s2"));
        // Missing (b, s2) shows a dash.
        assert!(t.lines().last().unwrap().contains('-'));
    }

    #[test]
    fn csv_escapes_commas() {
        let rows = vec![Series::new("t2", "EC-Home, Garden", "photos", 1.0)];
        let csv = to_csv(&rows);
        assert!(csv.contains("\"EC-Home, Garden\""));
    }
}
