//! Descriptive statistics of a PAR instance, for reports and dataset
//! sanity-checking (the Table 2 companion view).

use crate::Instance;

/// Summary statistics of an instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceStats {
    /// Number of photos.
    pub photos: usize,
    /// Number of pre-defined subsets.
    pub subsets: usize,
    /// Total archive cost in bytes.
    pub total_cost: u64,
    /// Storage budget in bytes.
    pub budget: u64,
    /// Photo-cost percentiles `[p10, p50, p90, p99, max]` in bytes.
    pub cost_percentiles: [u64; 5],
    /// Subset-size percentiles `[p10, p50, p90, p99, max]`.
    pub subset_size_percentiles: [usize; 5],
    /// Mean subset size.
    pub mean_subset_size: f64,
    /// Total stored nonzero similarity pairs across contexts.
    pub stored_pairs: usize,
    /// Sum of subset weights (= the maximum attainable objective).
    pub weight_sum: f64,
    /// Number of policy-required photos.
    pub required: usize,
}

fn percentile<T: Copy + Ord>(sorted: &[T], p: f64) -> T {
    debug_assert!(!sorted.is_empty());
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

impl InstanceStats {
    /// Computes the statistics for an instance.
    pub fn compute(inst: &Instance) -> InstanceStats {
        let mut costs: Vec<u64> = inst.photos().iter().map(|p| p.cost).collect();
        costs.sort_unstable();
        let mut sizes: Vec<usize> = inst.subsets().iter().map(|q| q.members.len()).collect();
        sizes.sort_unstable();
        let pct = [0.1, 0.5, 0.9, 0.99, 1.0];
        InstanceStats {
            photos: inst.num_photos(),
            subsets: inst.num_subsets(),
            total_cost: inst.total_cost(),
            budget: inst.budget(),
            cost_percentiles: pct.map(|p| percentile(&costs, p)),
            subset_size_percentiles: pct.map(|p| percentile(&sizes, p)),
            mean_subset_size: sizes.iter().sum::<usize>() as f64 / sizes.len().max(1) as f64,
            stored_pairs: inst.stored_pairs(),
            weight_sum: inst.max_score(),
            required: inst.required().len(),
        }
    }

    /// Renders a compact multi-line summary.
    pub fn render(&self) -> String {
        format!(
            "photos {}  subsets {}  required {}\n\
             archive {} B  budget {} B ({:.1}%)\n\
             photo cost p10/p50/p90/p99/max: {:?}\n\
             subset size p10/p50/p90/p99/max: {:?} (mean {:.1})\n\
             stored similarity pairs {}  ΣW {:.2}",
            self.photos,
            self.subsets,
            self.required,
            self.total_cost,
            self.budget,
            100.0 * self.budget as f64 / self.total_cost.max(1) as f64,
            self.cost_percentiles,
            self.subset_size_percentiles,
            self.mean_subset_size,
            self.stored_pairs,
            self.weight_sum,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure1_instance, MB};

    #[test]
    fn figure1_stats() {
        let inst = figure1_instance(4 * MB);
        let s = InstanceStats::compute(&inst);
        assert_eq!(s.photos, 7);
        assert_eq!(s.subsets, 4);
        assert_eq!(s.required, 0);
        assert_eq!(s.weight_sum, 14.0);
        assert_eq!(s.subset_size_percentiles[4], 3); // max |q|
        assert_eq!(s.cost_percentiles[4], 2_100_000); // p3 is biggest
        assert!((s.mean_subset_size - 9.0 / 4.0).abs() < 1e-12);
        let text = s.render();
        assert!(text.contains("photos 7"));
        assert!(text.contains("subsets 4"));
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let v = vec![1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 0.5), 6);
        assert_eq!(percentile(&v, 1.0), 10);
    }
}
