//! A lightweight intra-crate call graph from `fn` names and call sites.
//!
//! Nodes are the [`crate::scope::FnItem`]s of every file in one crate;
//! an edge exists when a function's body contains `name(` for a `name`
//! defined anywhere in the same crate (free function or method — the graph
//! is name-based, not receiver-typed). The approximation is deliberate and
//! documented:
//!
//! * **Over-approximation**: two methods sharing a name are merged into one
//!   node set, so reachability can include bodies the runtime never calls.
//!   For `alloc-hot` this errs toward *more* scrutiny of hot cones, which
//!   is the safe direction; a false positive is discharged with a per-site
//!   rationale.
//! * **Under-approximation** (the false-negative envelope): cross-crate
//!   calls, calls through function-pointer/closure variables, turbofish
//!   (`f::<T>(`), and trait-object dispatch are not followed. Hot kernels
//!   that lean on cross-crate helpers annotate those helpers in their own
//!   crate.

use crate::lexer::{Tok, TokKind};
use crate::scope::FileScopes;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A node: (file index within the crate, fn index within the file).
pub type FnId = (usize, usize);

/// The per-crate graph.
#[derive(Debug, Default)]
pub struct CrateGraph {
    /// Every definition of each fn name in the crate.
    pub by_name: BTreeMap<String, Vec<FnId>>,
    /// Crate-local callee names per function body.
    pub calls: BTreeMap<FnId, BTreeSet<String>>,
}

impl CrateGraph {
    /// Builds the graph over one crate's files: `(code tokens, scopes)` per
    /// file, in a stable order.
    pub fn build(files: &[(&[Tok], &FileScopes)]) -> Self {
        let mut by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        for (fi, (_, scopes)) in files.iter().enumerate() {
            for (gi, f) in scopes.fns.iter().enumerate() {
                by_name.entry(f.name.clone()).or_default().push((fi, gi));
            }
        }
        let mut calls: BTreeMap<FnId, BTreeSet<String>> = BTreeMap::new();
        for (fi, (code, scopes)) in files.iter().enumerate() {
            for (gi, f) in scopes.fns.iter().enumerate() {
                calls.insert(
                    (fi, gi),
                    callee_names(code, f.body, &by_name),
                );
            }
        }
        CrateGraph { by_name, calls }
    }

    /// BFS over name-resolved edges from `roots`. Returns each reachable
    /// node's BFS parent (roots map to themselves), for witness paths.
    pub fn reachable(&self, roots: &[FnId]) -> BTreeMap<FnId, FnId> {
        let mut parent: BTreeMap<FnId, FnId> = BTreeMap::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        for &r in roots {
            if parent.insert(r, r).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(node) = queue.pop_front() {
            let Some(callees) = self.calls.get(&node) else {
                continue;
            };
            for name in callees {
                for &next in self.by_name.get(name).into_iter().flatten() {
                    if let std::collections::btree_map::Entry::Vacant(slot) = parent.entry(next) {
                        slot.insert(node);
                        queue.push_back(next);
                    }
                }
            }
        }
        parent
    }
}

/// Crate-local fn names called within `range` of `code`: every `name(`
/// where `name` is defined in the crate and the token is not the `fn`
/// item's own name.
pub fn callee_names(
    code: &[Tok],
    range: (usize, usize),
    by_name: &BTreeMap<String, Vec<FnId>>,
) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let end = range.1.min(code.len());
    for j in range.0..end {
        if code[j].kind != TokKind::Ident {
            continue;
        }
        if !code.get(j + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        if j > 0 && code[j - 1].is_ident("fn") {
            continue; // a nested definition, not a call
        }
        if by_name.contains_key(&code[j].text) {
            out.insert(code[j].text.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{CrateCategory, FileContext, FileKind, FileSpec};
    use crate::scope;

    fn ctx(src: &str) -> FileContext<'static> {
        FileContext::new(
            FileSpec {
                path: "fixture.rs",
                crate_name: "par-fixture",
                category: CrateCategory::Library,
                kind: FileKind::Lib,
            },
            src,
        )
    }

    #[test]
    fn transitive_reachability_with_witness_parents() {
        let c = ctx(
            "fn a() { b(); }\nfn b() { helper_c(); }\nfn helper_c() {}\nfn island() { helper_c(); }\n",
        );
        let s = scope::analyze(&c);
        let g = CrateGraph::build(&[(&c.code, &s)]);
        let reach = g.reachable(&[(0, 0)]);
        let names: Vec<&str> = reach
            .keys()
            .map(|&(_, gi)| s.fns[gi].name.as_str())
            .collect();
        assert_eq!(names, ["a", "b", "helper_c"]);
        // helper_c's parent is b, b's parent is a, a is its own root.
        assert_eq!(reach[&(0, 2)], (0, 1));
        assert_eq!(reach[&(0, 1)], (0, 0));
        assert_eq!(reach[&(0, 0)], (0, 0));
    }

    #[test]
    fn method_calls_resolve_by_name() {
        let c = ctx(
            "struct S;\nimpl S {\n    fn gain(&self) -> f64 { self.span() }\n    fn span(&self) -> f64 { 0.0 }\n}\n",
        );
        let s = scope::analyze(&c);
        let g = CrateGraph::build(&[(&c.code, &s)]);
        assert!(g.calls[&(0, 0)].contains("span"));
    }
}
