//! A self-contained Rust lexer sufficient for token-level static analysis.
//!
//! Produces a flat token stream with line/column spans. The goal is not a
//! full grammar — rules match token *sequences* — but the lexer must be
//! exact about what is code and what is not: banned identifiers inside
//! string literals, comments, or doc comments must never fire, and
//! suppression pragmas live inside line comments. Handles nested block
//! comments, cooked/raw/byte string literals, char literals vs. lifetimes,
//! raw identifiers, and numeric literals with exponents and suffixes.

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, without `r#`).
    Ident,
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// Numeric literal, including suffix (`1e-12`, `0xFF`, `3.5f32`).
    Num,
    /// String literal of any flavor (cooked, raw, byte), quotes included.
    Str,
    /// Character or byte-character literal.
    Char,
    /// Lifetime (`'a`), without the quote.
    Lifetime,
    /// `// …` comment, marker included (doc `///` comments lex as this).
    LineComment,
    /// `/* … */` comment, markers included.
    BlockComment,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Lexical class.
    pub kind: TokKind,
    /// Token text (for `Ident`/`Punct`/`Num`/comments; literals keep quotes).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

impl Tok {
    /// Whether this token is a comment (not code).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// Whether this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Whether this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into a token stream. Unterminated literals and comments are
/// closed at end of input rather than reported — the compiler is the
/// authority on well-formedness; the linter only needs a best-effort stream.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut toks: Vec<Tok> = Vec::new();

    while let Some(c) = lx.peek(0) {
        let (line, col) = (lx.line, lx.col);
        if c.is_whitespace() {
            lx.bump();
            continue;
        }

        // Comments.
        if c == '/' && lx.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(n) = lx.peek(0) {
                if n == '\n' {
                    break;
                }
                text.push(n);
                lx.bump();
            }
            toks.push(Tok {
                kind: TokKind::LineComment,
                text,
                line,
                col,
            });
            continue;
        }
        if c == '/' && lx.peek(1) == Some('*') {
            let mut text = String::new();
            let mut depth = 0usize;
            while let Some(n) = lx.peek(0) {
                if n == '/' && lx.peek(1) == Some('*') {
                    depth += 1;
                    text.push('/');
                    text.push('*');
                    lx.bump();
                    lx.bump();
                } else if n == '*' && lx.peek(1) == Some('/') {
                    depth -= 1;
                    text.push('*');
                    text.push('/');
                    lx.bump();
                    lx.bump();
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(n);
                    lx.bump();
                }
            }
            toks.push(Tok {
                kind: TokKind::BlockComment,
                text,
                line,
                col,
            });
            continue;
        }

        // Raw strings / raw identifiers / byte strings: r" r#" r#ident b" b' br".
        if c == 'r' || c == 'b' {
            let mut j = 1;
            let mut saw_b = false;
            if c == 'b' {
                saw_b = true;
                if lx.peek(1) == Some('r') {
                    j = 2;
                }
            }
            // Count hashes after the (b)r prefix.
            let raw_marker = c == 'r' || (saw_b && j == 2);
            if raw_marker {
                let mut hashes = 0usize;
                while lx.peek(j + hashes) == Some('#') {
                    hashes += 1;
                }
                if lx.peek(j + hashes) == Some('"') {
                    // Raw string literal: consume prefix, hashes, then scan
                    // for `"` followed by the same number of hashes.
                    let mut text = String::new();
                    for _ in 0..(j + hashes + 1) {
                        if let Some(n) = lx.bump() {
                            text.push(n);
                        }
                    }
                    'raw: while let Some(n) = lx.bump() {
                        text.push(n);
                        if n == '"' {
                            let mut k = 0usize;
                            while k < hashes {
                                if lx.peek(k) == Some('#') {
                                    k += 1;
                                } else {
                                    continue 'raw;
                                }
                            }
                            for _ in 0..hashes {
                                if let Some(h) = lx.bump() {
                                    text.push(h);
                                }
                            }
                            break;
                        }
                    }
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text,
                        line,
                        col,
                    });
                    continue;
                }
                if c == 'r'
                    && hashes == 1
                    && lx.peek(j + 1).is_some_and(is_ident_start)
                {
                    // Raw identifier r#name: emit as the bare identifier.
                    lx.bump(); // r
                    lx.bump(); // #
                    let mut text = String::new();
                    while let Some(n) = lx.peek(0) {
                        if !is_ident_continue(n) {
                            break;
                        }
                        text.push(n);
                        lx.bump();
                    }
                    toks.push(Tok {
                        kind: TokKind::Ident,
                        text,
                        line,
                        col,
                    });
                    continue;
                }
            }
            if saw_b && lx.peek(1) == Some('"') {
                // Byte string b"…": consume prefix then cooked-string body.
                let mut text = String::new();
                if let Some(n) = lx.bump() {
                    text.push(n); // b
                }
                lex_cooked_string(&mut lx, &mut text);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                    col,
                });
                continue;
            }
            if saw_b && lx.peek(1) == Some('\'') {
                let mut text = String::new();
                if let Some(n) = lx.bump() {
                    text.push(n); // b
                }
                lex_char_literal(&mut lx, &mut text);
                toks.push(Tok {
                    kind: TokKind::Char,
                    text,
                    line,
                    col,
                });
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }

        if c == '"' {
            let mut text = String::new();
            lex_cooked_string(&mut lx, &mut text);
            toks.push(Tok {
                kind: TokKind::Str,
                text,
                line,
                col,
            });
            continue;
        }

        if c == '\'' {
            // Lifetime `'a` vs char literal `'a'` / `'\n'`.
            let next = lx.peek(1);
            let is_lifetime = match next {
                Some(n) if is_ident_start(n) => lx.peek(2) != Some('\''),
                _ => false,
            };
            if is_lifetime {
                lx.bump(); // '
                let mut text = String::new();
                while let Some(n) = lx.peek(0) {
                    if !is_ident_continue(n) {
                        break;
                    }
                    text.push(n);
                    lx.bump();
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text,
                    line,
                    col,
                });
            } else {
                let mut text = String::new();
                lex_char_literal(&mut lx, &mut text);
                toks.push(Tok {
                    kind: TokKind::Char,
                    text,
                    line,
                    col,
                });
            }
            continue;
        }

        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(n) = lx.peek(0) {
                if !is_ident_continue(n) {
                    break;
                }
                text.push(n);
                lx.bump();
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }

        if c.is_ascii_digit() {
            let mut text = String::new();
            // Integer / prefix part (also consumes hex/octal/binary bodies
            // and type suffixes, which are all ident-continue characters).
            while let Some(n) = lx.peek(0) {
                if !is_ident_continue(n) {
                    break;
                }
                text.push(n);
                lx.bump();
            }
            // Fraction: a dot followed by a digit (`0..n` must not consume).
            if lx.peek(0) == Some('.') && lx.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                text.push('.');
                lx.bump();
                while let Some(n) = lx.peek(0) {
                    if !is_ident_continue(n) {
                        break;
                    }
                    text.push(n);
                    lx.bump();
                }
            }
            // Exponent sign: `1e-12` — the `e` was consumed above, the sign
            // and exponent digits were not.
            if (text.ends_with('e') || text.ends_with('E'))
                && matches!(lx.peek(0), Some('+') | Some('-'))
                && lx.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                if let Some(s) = lx.bump() {
                    text.push(s);
                }
                while let Some(n) = lx.peek(0) {
                    if !is_ident_continue(n) {
                        break;
                    }
                    text.push(n);
                    lx.bump();
                }
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text,
                line,
                col,
            });
            continue;
        }

        // Anything else: single punctuation character.
        if let Some(p) = lx.bump() {
            toks.push(Tok {
                kind: TokKind::Punct,
                text: p.to_string(),
                line,
                col,
            });
        }
    }
    toks
}

fn lex_cooked_string(lx: &mut Lexer, text: &mut String) {
    if let Some(q) = lx.bump() {
        text.push(q); // opening quote
    }
    while let Some(n) = lx.bump() {
        text.push(n);
        if n == '\\' {
            if let Some(esc) = lx.bump() {
                text.push(esc);
            }
        } else if n == '"' {
            break;
        }
    }
}

fn lex_char_literal(lx: &mut Lexer, text: &mut String) {
    if let Some(q) = lx.bump() {
        text.push(q); // opening '
    }
    while let Some(n) = lx.bump() {
        text.push(n);
        if n == '\\' {
            if let Some(esc) = lx.bump() {
                text.push(esc);
            }
        } else if n == '\'' {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("foo.bar::baz()");
        assert_eq!(t[0], (TokKind::Ident, "foo".into()));
        assert_eq!(t[1], (TokKind::Punct, ".".into()));
        assert_eq!(t[3], (TokKind::Punct, ":".into()));
        assert_eq!(t[4], (TokKind::Punct, ":".into()));
    }

    #[test]
    fn strings_hide_banned_tokens() {
        let t = lex(r#"let s = "partial_cmp inside";"#);
        assert!(t.iter().all(|t| !t.is_ident("partial_cmp")));
        assert!(t.iter().any(|t| t.kind == TokKind::Str));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let t = kinds(r###"r#"a "quoted" body"# x"###);
        assert_eq!(t[0].0, TokKind::Str);
        assert_eq!(t[1], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn comments_are_separate_tokens() {
        let t = lex("a // trailing partial_cmp\nb /* block\nspan */ c");
        assert!(t.iter().any(|t| t.kind == TokKind::LineComment));
        assert!(t.iter().any(|t| t.kind == TokKind::BlockComment));
        assert!(t
            .iter()
            .filter(|t| !t.is_comment())
            .all(|t| !t.is_ident("partial_cmp")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'y'; let n = '\\n'; }");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Lifetime && s == "a"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Char && s == "'y'"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Char && s == "'\\n'"));
    }

    #[test]
    fn numbers_with_exponents_and_ranges() {
        let t = kinds("1e-12 0..n 3.5f32 0xFF");
        assert_eq!(t[0], (TokKind::Num, "1e-12".into()));
        assert_eq!(t[1], (TokKind::Num, "0".into()));
        assert_eq!(t[2], (TokKind::Punct, ".".into()));
        assert_eq!(t[3], (TokKind::Punct, ".".into()));
        assert_eq!(t[4], (TokKind::Ident, "n".into()));
        assert_eq!(t[5], (TokKind::Num, "3.5f32".into()));
        assert_eq!(t[6], (TokKind::Num, "0xFF".into()));
    }

    #[test]
    fn nested_block_comments() {
        let t = kinds("/* outer /* inner */ still */ after");
        assert_eq!(t[0].0, TokKind::BlockComment);
        assert_eq!(t[1], (TokKind::Ident, "after".into()));
    }

    #[test]
    fn raw_identifier() {
        let t = kinds("r#type x");
        assert_eq!(t[0], (TokKind::Ident, "type".into()));
        assert_eq!(t[1], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn line_positions_are_one_based() {
        let t = lex("a\n  b");
        assert_eq!((t[0].line, t[0].col), (1, 1));
        assert_eq!((t[1].line, t[1].col), (2, 3));
    }
}
