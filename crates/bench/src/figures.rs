//! Runners for the paper's figures (5a–5h) and tables.

use crate::registry::{dataset, DatasetId, Scale, SEED};
use crate::Series;
use par_algo::{brute_force_anytime, BruteForceConfig};
use par_datasets::{generate_openimages, table2_rows, OpenImagesConfig, Universe};
use par_study::{domain_study, ManualAnalyst};
use phocus::suite::Algo;
use phocus::{represent, run_suite, RepresentationConfig, SuiteConfig};

/// Budget grid as fractions of the archive cost, labeled in MB.
fn budget_grid(universe: &Universe, fractions: &[f64]) -> Vec<(String, u64)> {
    fractions
        .iter()
        .map(|&f| {
            let b = ((universe.total_cost() as f64) * f).ceil() as u64;
            (format!("{:.1}MB", b as f64 / 1e6), b)
        })
        .collect()
}

/// Quality-vs-budget comparison (the Figures 5a/5b/5c runner).
fn quality_figure(figure: &'static str, universe: &Universe, fractions: &[f64]) -> Vec<Series> {
    let mut rows = Vec::new();
    let cfg = SuiteConfig {
        algos: vec![Algo::RandA, Algo::GreedyNr, Algo::GreedyNcs, Algo::Phocus],
        rand_trials: 3,
        rand_seed: SEED,
        ..Default::default()
    };
    for (label, budget) in budget_grid(universe, fractions) {
        let res = run_suite(universe, budget, &cfg).expect("suite runs");
        for e in &res.entries {
            let name = if e.algo == Algo::RandA {
                "RAND"
            } else {
                e.algo.name()
            };
            rows.push(Series::new(figure, label.clone(), name, e.quality));
        }
    }
    rows
}

/// Figure 5a: P-1K, four budgets, RAND / G-NR / G-NCS / PHOcus.
pub fn fig5a(scale: Scale) -> Vec<Series> {
    let u = dataset(DatasetId::P1K, scale);
    quality_figure("fig5a", &u, &[0.1, 0.2, 0.5, 1.0])
}

/// Figure 5b: P-5K, four budgets.
pub fn fig5b(scale: Scale) -> Vec<Series> {
    let u = dataset(DatasetId::P5K, scale);
    quality_figure("fig5b", &u, &[0.1, 0.2, 0.4, 1.0])
}

/// Figure 5c: EC-Fashion, four budgets.
pub fn fig5c(scale: Scale) -> Vec<Series> {
    let u = dataset(DatasetId::EcFashion, scale);
    quality_figure("fig5c", &u, &[0.08, 0.2, 0.4, 0.8])
}

/// Figure 5d: PHOcus vs exact Brute-Force on a ~100-photo subset of P-1K.
///
/// The paper reports the greedy loss is always below 15% (often below 10%).
pub fn fig5d(scale: Scale) -> Vec<Series> {
    let (photos, max_nodes) = match scale {
        Scale::Scaled => (40, 10_000_000u64),
        Scale::Full => (100, 3_000_000),
    };
    let u = generate_openimages(&OpenImagesConfig {
        name: "P-1K-subset".into(),
        photos,
        target_subsets: photos / 5,
        seed: SEED ^ 0xD,
        ..Default::default()
    });
    let mut rows = Vec::new();
    let repr = RepresentationConfig::default();
    for (label, budget) in budget_grid(&u, &[0.15, 0.3, 0.6, 1.0]) {
        let inst = represent(&u, budget, &repr).expect("representation");
        let greedy = par_algo::main_algorithm_sharded(&inst).best;
        // Anytime branch and bound: when the node budget runs out the
        // incumbent is reported as an (anytime) reference rather than a
        // certified optimum — mirroring the paper's note that exhaustive
        // search "could not run over larger inputs in a reasonable time".
        let (opt, exact) = brute_force_anytime(
            &inst,
            &BruteForceConfig {
                max_photos: 128,
                max_nodes,
            },
        )
        .expect("instance within photo cap");
        let reference = if exact {
            "Brute-Force"
        } else {
            "Brute-Force (anytime)"
        };
        rows.push(Series::new("fig5d", label.clone(), "PHOcus", greedy.score));
        rows.push(Series::new("fig5d", label, reference, opt.score));
    }
    rows
}

/// Figures 5e and 5f: PHOcus vs PHOcus-NS on P-5K — solution quality (5e)
/// and end-to-end running time in seconds (5f), across four budgets.
pub fn fig5e_5f(scale: Scale) -> Vec<Series> {
    let u = dataset(DatasetId::P5K, scale);
    let mut rows = Vec::new();
    let cfg = SuiteConfig {
        algos: vec![Algo::Phocus, Algo::PhocusNs],
        tau: 0.6,
        ..Default::default()
    };
    for (label, budget) in budget_grid(&u, &[0.1, 0.2, 0.4, 1.0]) {
        let res = run_suite(&u, budget, &cfg).expect("suite runs");
        for e in &res.entries {
            rows.push(Series::new(
                "fig5e",
                label.clone(),
                e.algo.name(),
                e.quality,
            ));
            // End-to-end: similarity representation + solving. For PHOcus-NS
            // the representation is the shared dense build.
            let time = e.represent_time + e.solve_time;
            rows.push(Series::new(
                "fig5f",
                label.clone(),
                e.algo.name(),
                time.as_secs_f64(),
            ));
        }
    }
    rows
}

/// Figures 5g and 5h: the user study — quality (5g) and time in minutes
/// (5h, log scale in the paper) for PHOcus vs the (simulated) manual
/// analyst, per EC domain.
pub fn fig5g_5h(scale: Scale) -> Vec<Series> {
    let mut rows = Vec::new();
    for id in [
        DatasetId::EcElectronics,
        DatasetId::EcFashion,
        DatasetId::EcHomeGarden,
    ] {
        let u = dataset(id, scale);
        let budget = u.total_cost() / 10;
        let analyst = ManualAnalyst::default();
        let row = domain_study(&u, budget, &analyst).expect("study runs");
        let domain = row.domain.trim_start_matches("EC-").to_string();
        rows.push(Series::new(
            "fig5g",
            domain.clone(),
            "PHOcus",
            row.phocus_quality,
        ));
        rows.push(Series::new(
            "fig5g",
            domain.clone(),
            "Manual",
            row.manual_quality,
        ));
        rows.push(Series::new(
            "fig5h",
            domain.clone(),
            "PHOcus",
            row.phocus_time.as_secs_f64() / 60.0,
        ));
        rows.push(Series::new(
            "fig5h",
            domain,
            "Manual",
            row.manual_time.as_secs_f64() / 60.0,
        ));
    }
    rows
}

/// Table 2: dataset statistics, paper vs measured.
pub fn table2(scale: Scale) -> Vec<Series> {
    let rows = table2_rows(scale == Scale::Full, SEED);
    let mut out = Vec::new();
    for r in rows {
        out.push(Series::new(
            "table2",
            r.name.clone(),
            "paper photos",
            r.paper_photos as f64,
        ));
        out.push(Series::new(
            "table2",
            r.name.clone(),
            "paper subsets",
            r.paper_subsets as f64,
        ));
        out.push(Series::new(
            "table2",
            r.name.clone(),
            "measured photos",
            r.measured_photos as f64,
        ));
        out.push(Series::new(
            "table2",
            r.name,
            "measured subsets",
            r.measured_subsets as f64,
        ));
    }
    out
}

/// Table 1: the qualitative comparison matrix (static documentation — no
/// measurement involved; 1.0 = ✓, 0.0 = ×, matching the paper).
pub fn table1() -> Vec<Series> {
    let systems = [
        ("Canonview", 0.0, 0.0, 0.0),
        ("Personal photologs", 0.0, 0.0, 0.0),
        ("Submodular mixture", 0.0, 1.0, 1.0),
        ("Fantom", 0.0, 1.0, 1.0),
        ("Image corpus", 0.0, 0.0, 0.0),
        ("PHOcus", 1.0, 1.0, 1.0),
    ];
    let mut rows = Vec::new();
    for (name, space, coverage, guarantee) in systems {
        rows.push(Series::new(
            "table1",
            name,
            "space constraint (bytes)",
            space,
        ));
        rows.push(Series::new("table1", name, "coverage focus", coverage));
        rows.push(Series::new("table1", name, "approx. guarantee", guarantee));
    }
    rows
}

/// Checks that a quality figure's rows honor the paper's algorithm ranking
/// at the tightest budget: PHOcus ≥ G-NCS and G-NR, both ≥ RAND-ish.
pub fn ranking_holds(rows: &[Series]) -> bool {
    let Some(first_x) = rows.first().map(|r| r.x.clone()) else {
        return false;
    };
    let val = |name: &str| {
        rows.iter()
            .find(|r| r.x == first_x && r.series == name)
            .map(|r| r.value)
    };
    match (
        val("PHOcus"),
        val("Greedy-NCS"),
        val("Greedy-NR"),
        val("RAND"),
    ) {
        (Some(ph), Some(ncs), Some(nr), Some(rand)) => {
            ph >= 0.97 * ncs && ncs >= 0.8 * nr.min(ncs) && ph > rand
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5d_loss_below_15_percent() {
        let rows = fig5d(Scale::Scaled);
        let budgets: Vec<String> = rows
            .iter()
            .map(|r| r.x.clone())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        for b in budgets {
            let ph = rows
                .iter()
                .find(|r| r.x == b && r.series == "PHOcus")
                .unwrap()
                .value;
            let opt = rows
                .iter()
                .find(|r| r.x == b && r.series.starts_with("Brute-Force"))
                .unwrap()
                .value;
            assert!(ph <= opt + 1e-9, "greedy beat the optimum?!");
            assert!(
                ph >= 0.85 * opt,
                "budget {b}: loss {:.1}%",
                100.0 * (1.0 - ph / opt)
            );
        }
    }

    #[test]
    fn fig5a_ranking_holds() {
        let rows = fig5a(Scale::Scaled);
        assert!(ranking_holds(&rows), "fig5a ranking violated: {rows:?}");
    }

    #[test]
    fn fig5e_quality_gap_within_five_percent() {
        let rows = fig5e_5f(Scale::Scaled);
        let budgets: std::collections::BTreeSet<String> = rows
            .iter()
            .filter(|r| r.figure == "fig5e")
            .map(|r| r.x.clone())
            .collect();
        for b in budgets {
            let get = |s: &str| {
                rows.iter()
                    .find(|r| r.figure == "fig5e" && r.x == b && r.series == s)
                    .unwrap()
                    .value
            };
            let ph = get("PHOcus");
            let ns = get("PHOcus-NS");
            assert!(ph >= 0.95 * ns, "budget {b}: PHOcus {ph} vs NS {ns}");
        }
    }

    #[test]
    fn table1_has_six_systems() {
        let rows = table1();
        assert_eq!(rows.len(), 18);
        let phocus: Vec<&Series> = rows.iter().filter(|r| r.x == "PHOcus").collect();
        assert!(phocus.iter().all(|r| r.value == 1.0));
    }

    #[test]
    fn table2_scaled_has_all_datasets() {
        let rows = table2(Scale::Scaled);
        assert_eq!(rows.len(), 8 * 4);
    }
}
