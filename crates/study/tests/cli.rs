//! Smoke tests for the `study` CLI binary.

use std::process::Command;

fn study(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_study"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn domains_prints_all_three() {
    let out = study(&["domains", "--seed", "7"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for d in ["EC-Electronics", "EC-Fashion", "EC-Home & Garden"] {
        assert!(text.contains(d), "missing {d}");
    }
}

#[test]
fn preference_runs_reduced_rounds() {
    let out = study(&["preference", "--rounds", "6", "--seed", "3"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("cannot decide"));
}

#[test]
fn insights_requires_domain() {
    let out = study(&["insights"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--domain"));
}

#[test]
fn insights_reports_ratios() {
    let out = study(&["insights", "--domain", "fashion", "--budget-mb", "5"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("value ratio"));
    assert!(text.contains("photos the solver kept"));
}
