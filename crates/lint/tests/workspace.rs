//! The workspace itself must lint clean — the same invariant ci.sh
//! enforces, kept inside `cargo test` so a violation fails both gates.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_lints_clean() {
    let report = par_lint::run(&workspace_root()).expect("workspace must be readable");
    assert!(
        report.diagnostics.is_empty(),
        "workspace has lint violations:\n{:#?}",
        report.diagnostics
    );
    assert!(report.files_scanned > 100, "suspiciously few files scanned");
    assert!(report.crates >= 15, "suspiciously few crates discovered");
}

#[test]
fn gate_crates_cover_the_library_surface() {
    let gates = par_lint::gate_crates(&workspace_root()).expect("workspace must be readable");
    for must in ["par-core", "par-algo", "phocus", "par-lint"] {
        assert!(gates.iter().any(|g| g == must), "{must} missing: {gates:?}");
    }
    for exempt in ["par-bench", "rand", "proptest", "criterion", "integration-tests"] {
        assert!(!gates.iter().any(|g| g == exempt), "{exempt} must be exempt");
    }
    assert!(
        gates.windows(2).all(|w| w[0] < w[1]),
        "gate list must be sorted and duplicate-free: {gates:?}"
    );
}
