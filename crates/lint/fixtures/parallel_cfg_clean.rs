//! Fixture: no feature gate in sight — parallelism is delegated to the
//! par-exec facade, which owns the `parallel` cfg.

pub fn fan_out(chunks: usize) -> usize {
    chunks
}
