//! Multi-action solver benchmarks: the numbers behind `BENCH_multiaction.json`.
//!
//! Variant expansion promotes PAR's ground set from photos to photo ×
//! action (keep / recompress@ℓ / delete), multiplying the instance by
//! `1 + |ladder|` while keeping every variant in its parent's connected
//! component (variants share the parent's embedding, so their stored pairs
//! sit at cosine 1). The component decomposition therefore survives the
//! expansion intact, and the sharded CELF driver applies unchanged — these
//! benches measure what that is worth on expanded instances.
//!
//! Mirrors `benches/shard.rs`: `global` is [`lazy_greedy`] on the expanded
//! instance; `sharded` is [`ShardedSolver::solve`] on a solver prepared
//! once per instance (preparation timed as its own `prepare` row). Both
//! sides run under an installed *serial* `Parallelism` and are asserted
//! transcript-identical before timing.
//!
//! Instances: the P-10K public slice expanded through the built-in
//! two-rung ladder, τ-sparsified — `t95` = τ=0.95, B = C(P)/5 and
//! `t92` = τ=0.92, B = C(P)/10.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use par_algo::{lazy_greedy, GreedyRule, ShardedSolver};
use par_bench::{dataset, DatasetId, Scale};
use par_core::Instance;
use par_exec::Parallelism;
use phocus::{
    expand_with_variants, represent_with_variants, ActionLadder, RepresentationConfig,
    Sparsification,
};

/// A τ-sparsified expanded P-10K instance with budget `C(P)/budget_div`
/// (budget relative to the *original* archive, as `phocus compress` runs it).
fn expanded_10k(ladder: &ActionLadder, tau: f64, budget_div: u64) -> Instance {
    let u = dataset(DatasetId::P10K, Scale::Scaled);
    let budget = u.total_cost() / budget_div;
    let (x, map) = expand_with_variants(&u, ladder);
    represent_with_variants(
        &x,
        &map,
        ladder,
        budget,
        &RepresentationConfig {
            sparsification: Sparsification::Threshold { tau },
            ..Default::default()
        },
    )
    .unwrap()
}

fn bench_multiaction_solver(c: &mut Criterion) {
    let prev = Parallelism::serial().install_global();
    let ladder = ActionLadder::standard();
    let mut group = c.benchmark_group("multiaction_solver");
    group.sample_size(20);
    for (label, tau, budget_div) in [("t95", 0.95, 5), ("t92", 0.92, 10)] {
        let inst = expanded_10k(&ladder, tau, budget_div);
        let solver = ShardedSolver::new(&inst);
        eprintln!(
            "multiaction_solver/{label}: {} actions, {} queries, {} components",
            inst.num_photos(),
            inst.num_subsets(),
            solver.decomposition().num_shards()
        );
        // The contract the multiaction integration tests pin, re-checked on
        // the exact instances being timed: bit-identical transcripts.
        for rule in [GreedyRule::CostBenefit, GreedyRule::UnitCost] {
            let global = lazy_greedy(&inst, rule);
            let sharded = solver.solve(rule);
            assert_eq!(sharded.selected, global.selected);
            assert_eq!(sharded.score.to_bits(), global.score.to_bits());
        }
        group.bench_function(BenchmarkId::new("prepare", label), |b| {
            b.iter(|| std::hint::black_box(ShardedSolver::new(&inst).decomposition().num_shards()))
        });
        for (rule, name) in [
            (GreedyRule::CostBenefit, "cb"),
            (GreedyRule::UnitCost, "uc"),
        ] {
            group.bench_function(BenchmarkId::new("global", format!("{label}_{name}")), |b| {
                b.iter(|| std::hint::black_box(lazy_greedy(&inst, rule).score))
            });
            group.bench_function(
                BenchmarkId::new("sharded", format!("{label}_{name}")),
                |b| b.iter(|| std::hint::black_box(solver.solve(rule).score)),
            );
        }
    }
    group.finish();
    prev.install_global();
}

criterion_group!(multiaction_benches, bench_multiaction_solver);
criterion_main!(multiaction_benches);
