//! # par-exec — deterministic data-parallel kernels for the PHOcus workspace
//!
//! The paper's hot loops — CELF gain seeding, eager per-round argmaxes,
//! SimHash signing, banded bucketing, and ≥τ candidate-pair verification —
//! are all *embarrassingly parallel over an indexed collection*. This crate
//! provides the primitives they need: an order-preserving parallel map
//! ([`par_map_indexed`] / [`par_map_slice`]) and a dynamically scheduled
//! variant for heterogeneous work ([`par_map_dynamic`]), plus a
//! process-wide [`Parallelism`] knob.
//!
//! Kernels run on a **persistent worker pool** (the vendored `scoped-pool`
//! shim): workers are spawned once per process and parked on a condvar, so
//! the millions of small kernel invocations a fleet run makes pay two mutex
//! operations per dispatch instead of a thread spawn + join. A kernel called
//! *from* a pool worker (nested parallelism) falls back to the serial path —
//! bit-identical by construction — so workers never block on pool capacity.
//!
//! ## Determinism contract
//!
//! Every kernel in this crate is **bit-deterministic**: outputs are written
//! into a pre-sized buffer at each item's own index, so the result is
//! byte-identical to a serial `map` regardless of thread count, scheduling,
//! or whether the `parallel` feature is enabled at all. Floating-point
//! reductions ([`par_sum_f64`]) first materialize per-item terms in input
//! order, then reduce sequentially — fixed order, identical rounding.
//! Downstream, this is what makes `--features parallel` and
//! `--no-default-features` builds select identical photo sets.
//!
//! ## Thread-count resolution
//!
//! Effective worker count = explicit argument (when using the `*_with`
//! variants) → process-wide override ([`set_global_threads`]) → available
//! hardware parallelism. A count of 1 short-circuits to the serial path;
//! without the `parallel` feature everything is serial regardless.

#![forbid(unsafe_code)]

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Worker-thread configuration for a solver or experiment run.
///
/// `threads: None` means "use the process default" (the global override if
/// set, else all available cores); `Some(1)` forces strictly serial
/// execution; `Some(n)` uses `n` workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker threads to use, `None` = process default.
    pub threads: Option<usize>,
}

impl Parallelism {
    /// Strictly serial execution.
    pub fn serial() -> Self {
        Parallelism { threads: Some(1) }
    }

    /// Explicit worker count (0 is treated as "all cores").
    pub fn with_threads(threads: usize) -> Self {
        Parallelism {
            threads: if threads == 0 { None } else { Some(threads) },
        }
    }

    /// Resolves to a concrete worker count.
    pub fn resolve(self) -> usize {
        resolve_threads(self.threads)
    }

    /// Installs this configuration as the process-wide default and returns
    /// the previous configuration.
    pub fn install_global(self) -> Parallelism {
        let prev = GLOBAL_THREADS.swap(encode(self.threads), Ordering::Relaxed);
        Parallelism {
            threads: decode(prev),
        }
    }
}

/// `0` = unset, `n+1` = override of `n` threads.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

fn encode(threads: Option<usize>) -> usize {
    threads.map_or(0, |t| t.max(1) + 1)
}

fn decode(raw: usize) -> Option<usize> {
    raw.checked_sub(1)
}

/// Sets the process-wide default worker count (`None` clears the override).
pub fn set_global_threads(threads: Option<usize>) {
    GLOBAL_THREADS.store(encode(threads), Ordering::Relaxed);
}

/// The process-wide default worker count override, if any.
pub fn global_threads() -> Option<usize> {
    decode(GLOBAL_THREADS.load(Ordering::Relaxed))
}

/// Resolves an optional explicit thread count to a concrete worker count:
/// explicit value → global override → available parallelism.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    match explicit.or_else(global_threads) {
        Some(n) => n.max(1),
        None => available_threads(),
    }
}

/// Hardware parallelism (1 when it cannot be determined).
///
/// Queried from the OS once and cached for the process lifetime: this sits
/// on the thread-resolution path of every kernel call, and
/// `std::thread::available_parallelism` can be a syscall.
pub fn available_threads() -> usize {
    static AVAILABLE: OnceLock<usize> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The process-wide worker pool, spawned on first parallel kernel call.
///
/// Sized to the hardware parallelism but never below 2, so the cross-thread
/// dispatch path is genuinely exercised (and testable) even on single-core
/// runners; idle workers are parked and cost nothing.
#[cfg(feature = "parallel")]
fn pool() -> &'static scoped_pool::Pool {
    static POOL: OnceLock<scoped_pool::Pool> = OnceLock::new();
    POOL.get_or_init(|| scoped_pool::Pool::new(available_threads().max(2)))
}

/// Whether the current thread is a pool worker. Kernels check this and take
/// the serial path when nested, so workers never block on pool capacity.
fn on_worker_thread() -> bool {
    #[cfg(feature = "parallel")]
    {
        scoped_pool::current_thread_is_worker()
    }
    #[cfg(not(feature = "parallel"))]
    {
        false
    }
}

/// Whether this build includes the parallel backend.
pub const fn parallel_enabled() -> bool {
    cfg!(feature = "parallel")
}

/// Order-preserving parallel map over `0..len`, using the process-default
/// worker count: `out[i] = f(i)`.
pub fn par_map_indexed<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_indexed_with(None, len, f)
}

/// [`par_map_indexed`] with an explicit worker count (`None` = default).
pub fn par_map_indexed_with<T, F>(threads: Option<usize>, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = resolve_threads(threads).min(len.max(1));
    if !parallel_enabled() || workers <= 1 || len < 2 || on_worker_thread() {
        return (0..len).map(f).collect();
    }
    parallel_fill(workers, len, &f)
}

/// Order-preserving parallel map over a slice, using the process-default
/// worker count: `out[i] = f(&items[i])`.
pub fn par_map_slice<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_slice_with(None, items, f)
}

/// [`par_map_slice`] with an explicit worker count (`None` = default).
pub fn par_map_slice_with<T, U, F>(threads: Option<usize>, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed_with(threads, items.len(), |i| f(&items[i]))
}

/// Deterministic parallel sum: computes `f(i)` for `i in 0..len` in
/// parallel, then reduces the terms **sequentially in index order**, so the
/// floating-point rounding matches the serial loop bit for bit.
pub fn par_sum_f64<F>(len: usize, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    par_map_indexed(len, f).into_iter().sum()
}

/// Dynamically scheduled parallel map with per-participant scratch state,
/// using the process-default worker count: `out[i] = f(&mut state, i)`.
///
/// Unlike [`par_map_indexed`]'s static chunking, items are claimed one at a
/// time from a shared cursor, so heterogeneous items (e.g. tenant solves of
/// wildly different sizes) don't straggle behind one unlucky chunk. Each
/// participant gets its own `make_state()` scratch value, reused across all
/// items that participant claims — the fleet engine's arena-reuse hook.
///
/// **Determinism contract:** which participant (and therefore which scratch
/// state) claims item `i` is scheduling-dependent, so `f` must be a pure
/// function of `i` given a state that is fully reset/overwritten per item.
/// Under that contract the output vector is bit-identical to the serial
/// loop `(0..len).map(|i| f(&mut state, i))` at every thread count: results
/// are collected as `(index, value)` pairs and sorted by index.
pub fn par_map_dynamic<S, T, M, F>(len: usize, make_state: M, f: F) -> Vec<T>
where
    T: Send,
    M: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    par_map_dynamic_with(None, len, make_state, f)
}

/// [`par_map_dynamic`] with an explicit worker count (`None` = default).
pub fn par_map_dynamic_with<S, T, M, F>(threads: Option<usize>, len: usize, make_state: M, f: F) -> Vec<T>
where
    T: Send,
    M: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let workers = resolve_threads(threads).min(len.max(1));
    if !parallel_enabled() || workers <= 1 || len < 2 || on_worker_thread() {
        let mut state = make_state();
        return (0..len).map(|i| f(&mut state, i)).collect();
    }
    parallel_dynamic(workers, len, &make_state, &f)
}

/// Cursor-driven work pull: `workers - 1` pool tasks plus the caller each
/// claim items with an atomic fetch-add and accumulate `(index, value)`
/// locally; the merged pairs are sorted by index so the output order is
/// independent of scheduling.
// phocus-lint: hot-kernel — dispatch loop under every par_map_dynamic fan-out
#[cfg(feature = "parallel")]
fn parallel_dynamic<S, T, M, F>(workers: usize, len: usize, make_state: &M, f: &F) -> Vec<T>
where
    T: Send,
    M: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    use std::sync::Mutex;
    let cursor = AtomicUsize::new(0);
    // phocus-lint: allow(alloc-hot) — one output buffer per dispatch, amortized over len items
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(len));
    let run = |local_cap: usize| {
        let mut state = make_state();
        // phocus-lint: allow(alloc-hot) — one accumulator per worker, amortized over its claims
        let mut local: Vec<(usize, T)> = Vec::with_capacity(local_cap);
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= len {
                break;
            }
            local.push((i, f(&mut state, i)));
        }
        collected
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .extend(local);
    };
    pool().scoped(|scope| {
        for _ in 1..workers {
            scope.execute(|| run(len / workers + 1));
        }
        run(len / workers + 1);
    });
    let mut pairs = collected.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
    pairs.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(pairs.len(), len, "every index claimed exactly once");
    // phocus-lint: allow(alloc-hot) — single sized pass producing the return value
    pairs.into_iter().map(|(_, v)| v).collect()
}

/// Serial stand-in compiled without the `parallel` feature; unreachable in
/// practice (`parallel_enabled()` gates every call).
// phocus-lint: hot-kernel — serial twin of the dispatch loop above
#[cfg(not(feature = "parallel"))]
fn parallel_dynamic<S, T, M, F>(_workers: usize, len: usize, make_state: &M, f: &F) -> Vec<T>
where
    T: Send,
    M: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let mut state = make_state();
    // phocus-lint: allow(alloc-hot) — single sized pass producing the return value
    (0..len).map(|i| f(&mut state, i)).collect()
}

/// Chunked fork/join writing into a pre-sized buffer, dispatched to the
/// persistent worker pool. The chunk-assignment arithmetic (`len / workers`
/// rounded up, chunk `w` starting at `w * chunk`) is the determinism-visible
/// part and is identical to the original scoped-thread implementation; the
/// caller runs chunk 0 inline while workers fill the rest.
#[cfg(feature = "parallel")]
fn parallel_fill<T, F>(workers: usize, len: usize, f: &F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<Option<T>> = Vec::with_capacity(len);
    out.resize_with(len, || None);
    let chunk = len.div_ceil(workers);
    pool().scoped(|scope| {
        let mut chunks = out.chunks_mut(chunk).enumerate();
        let first = chunks.next();
        for (w, slot_chunk) in chunks {
            let start = w * chunk;
            scope.execute(move || fill_chunk(slot_chunk, start, f));
        }
        if let Some((_, slot_chunk)) = first {
            fill_chunk(slot_chunk, 0, f);
        }
    });
    out.into_iter()
        .map(|s| s.unwrap_or_else(|| unreachable!("parallel_fill covers every slot exactly once")))
        .collect()
}

/// Serial stand-in compiled without the `parallel` feature; unreachable in
/// practice (`parallel_enabled()` gates every call) but kept semantically
/// identical.
#[cfg(not(feature = "parallel"))]
fn parallel_fill<T, F>(_workers: usize, len: usize, f: &F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    (0..len).map(f).collect()
}

/// Writes `f(start + k)` into `slots[k]` for one contiguous chunk.
#[cfg(feature = "parallel")]
fn fill_chunk<T, F>(slots: &mut [Option<T>], start: usize, f: &F)
where
    F: Fn(usize) -> T,
{
    for (k, slot) in slots.iter_mut().enumerate() {
        *slot = Some(f(start + k));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u64> = (0..997).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [None, Some(1), Some(2), Some(4), Some(16)] {
            let parallel = par_map_slice_with(threads, &items, |&x| x * x + 1);
            assert_eq!(parallel, serial, "threads={threads:?}");
        }
    }

    #[test]
    fn par_map_indexed_preserves_order() {
        let out = par_map_indexed_with(Some(8), 100, |i| i as u64 * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        assert!(par_map_indexed_with(Some(4), 0, |i| i).is_empty());
        assert_eq!(par_map_indexed_with(Some(4), 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn par_sum_is_bit_identical_to_serial_sum() {
        // Terms with wildly different magnitudes make the summation order
        // observable; the kernel must reduce in index order.
        let terms: Vec<f64> = (0..2048)
            .map(|i| (i as f64 * 0.7311).sin() * 10f64.powi((i % 17) - 8))
            .collect();
        let serial: f64 = terms.iter().sum();
        let parallel = par_sum_f64(terms.len(), |i| terms[i]);
        assert_eq!(serial.to_bits(), parallel.to_bits());
    }

    #[test]
    fn global_override_round_trips() {
        assert_eq!(global_threads(), None);
        set_global_threads(Some(3));
        assert_eq!(global_threads(), Some(3));
        assert_eq!(resolve_threads(None), 3);
        assert_eq!(resolve_threads(Some(2)), 2);
        let prev = Parallelism::serial().install_global();
        assert_eq!(prev.threads, Some(3));
        assert_eq!(resolve_threads(None), 1);
        set_global_threads(None);
        assert_eq!(global_threads(), None);
    }

    #[test]
    fn pool_reuse_stress_many_small_calls() {
        // Thousands of tiny kernel calls: the persistent pool must absorb
        // rapid scope turnover without losing or reordering results.
        for round in 0..3000u64 {
            let out = par_map_indexed_with(Some(4), 8, |i| i as u64 * 3 + round);
            let expected: Vec<u64> = (0..8).map(|i| i * 3 + round).collect();
            assert_eq!(out, expected, "round {round}");
        }
    }

    #[test]
    fn nested_calls_fall_back_to_serial_and_stay_correct() {
        // Inner kernels run on pool workers, which must take the serial
        // path rather than re-entering the pool (deadlock avoidance).
        let out = par_map_indexed_with(Some(4), 16, |i| {
            par_sum_f64(10, |k| (i * 10 + k) as f64)
        });
        let expected: Vec<f64> = (0..16)
            .map(|i| (0..10).map(|k| (i * 10 + k) as f64).sum())
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_map_dynamic_matches_serial_at_every_thread_count() {
        let serial: Vec<u64> = (0..257).map(|i| i as u64 * 7 + 1).collect();
        for threads in [None, Some(1), Some(2), Some(4), Some(16)] {
            let out = par_map_dynamic_with(threads, 257, || (), |(), i| i as u64 * 7 + 1);
            assert_eq!(out, serial, "threads={threads:?}");
        }
    }

    #[test]
    fn par_map_dynamic_reuses_state_within_a_participant() {
        // The scratch state is reused across claimed items: with a serial
        // run (1 thread) a counter state sees every index once, in order.
        let out = par_map_dynamic_with(Some(1), 6, || 0u64, |calls, i| {
            *calls += 1;
            (*calls, i)
        });
        let expected: Vec<(u64, usize)> = (0..6).map(|i| (i as u64 + 1, i)).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_map_dynamic_empty_and_single() {
        assert!(par_map_dynamic_with(Some(4), 0, || (), |(), i| i).is_empty());
        assert_eq!(par_map_dynamic_with(Some(4), 1, || (), |(), i| i + 9), vec![9]);
    }

    #[test]
    fn available_threads_is_cached_and_stable() {
        let a = available_threads();
        let b = available_threads();
        assert!(a >= 1);
        assert_eq!(a, b);
    }

    #[test]
    fn parallelism_resolution() {
        assert_eq!(Parallelism::serial().resolve(), 1);
        assert_eq!(Parallelism::with_threads(5).resolve(), 5);
        assert_eq!(Parallelism::with_threads(0).threads, None);
        assert!(Parallelism::default().resolve() >= 1);
    }
}
