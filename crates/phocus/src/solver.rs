//! The PHOcus Solver facade: represent → solve → certify.

use crate::error::Result;
use crate::representation::{represent, RepresentationConfig, Sparsification};
use par_algo::{main_algorithm_with, online_bound, GreedyRule, OnlineBound, RunStats};
use par_core::{Instance, PhotoId};
use par_datasets::Universe;
use par_exec::Parallelism;
use par_sparse::{sparsification_bound, SparsificationBound};
use std::time::{Duration, Instant};

/// Configuration of a full PHOcus run.
#[derive(Debug, Clone)]
pub struct PhocusConfig {
    /// The representation choices (contextualization, sparsification, …).
    pub representation: RepresentationConfig,
    /// Compute the Theorem 4.8 certificate when sparsifying (adds a
    /// Budgeted-Max-Coverage run over the GFL graph).
    pub certify_sparsification: bool,
    /// Worker threads for the parallel kernels (gain batches, SimHash
    /// signing, sparsification, exact scoring). Installed as the
    /// process-wide default for the duration of each run; the selection and
    /// scores are identical at every thread count.
    pub parallelism: Parallelism,
    /// Solve through the component-sharded CELF driver (default on): the
    /// instance is decomposed into photo–query connected components, each
    /// running its own lazy stream under a budget-aware coordinator. The
    /// selection transcript and score bits are identical to the global
    /// solver at every thread count; only wall-clock differs.
    pub sharding: bool,
}

impl Default for PhocusConfig {
    fn default() -> Self {
        PhocusConfig {
            representation: RepresentationConfig::default(),
            certify_sparsification: false,
            parallelism: Parallelism::default(),
            sharding: true,
        }
    }
}

/// The outcome of a PHOcus run.
#[derive(Debug, Clone)]
pub struct PhocusReport {
    /// Retained photos (including `S₀`), in selection order.
    pub selected: Vec<PhotoId>,
    /// Objective value on the selection instance.
    pub score: f64,
    /// Solution cost in bytes.
    pub cost: u64,
    /// Which greedy rule won inside Algorithm 1.
    pub winner: GreedyRule,
    /// Aggregated solver instrumentation (both sub-runs).
    pub stats: RunStats,
    /// The a-posteriori online bound on the selection instance.
    pub online: OnlineBound,
    /// Theorem 4.8 certificate (present when sparsifying and requested).
    pub sparsification: Option<SparsificationBound>,
    /// Stored similarity pairs in the represented instance.
    pub stored_pairs: usize,
    /// Wall-clock time of representation.
    pub represent_time: Duration,
    /// Wall-clock time of solving.
    pub solve_time: Duration,
    /// Worker threads the run resolved to (1 = serial).
    pub threads: usize,
}

/// The PHOcus system: holds a configuration, solves universes.
#[derive(Debug, Clone, Default)]
pub struct Phocus {
    /// The run configuration.
    pub config: PhocusConfig,
}

impl Phocus {
    /// Creates a solver with the given configuration.
    pub fn new(config: PhocusConfig) -> Self {
        Phocus { config }
    }

    /// Represents the universe under `budget` and solves it.
    ///
    /// Returns a typed [`crate::PhocusError`] — never panics — when the
    /// universe cannot be represented (e.g. the required set `S₀` alone
    /// exceeds `budget`, surfacing as
    /// [`par_core::ModelError::RequiredSetOverBudget`]).
    pub fn solve(&self, universe: &Universe, budget: u64) -> Result<PhocusReport> {
        let prev = self.config.parallelism.install_global();
        let result = (|| {
            let t0 = Instant::now(); // phocus-lint: allow(wall-clock) — fills the reported timing field only
            let inst = represent(universe, budget, &self.config.representation)?;
            let represent_time = t0.elapsed();
            Ok(self.solve_instance_inner(&inst, represent_time))
        })();
        prev.install_global();
        result
    }

    /// Solves an already-represented instance.
    pub fn solve_instance(&self, inst: &Instance, represent_time: Duration) -> PhocusReport {
        let prev = self.config.parallelism.install_global();
        let report = self.solve_instance_inner(inst, represent_time);
        prev.install_global();
        report
    }

    fn solve_instance_inner(&self, inst: &Instance, represent_time: Duration) -> PhocusReport {
        let t1 = Instant::now(); // phocus-lint: allow(wall-clock) — fills the reported timing field only
        let outcome = main_algorithm_with(inst, self.config.sharding);
        let solve_time = t1.elapsed();
        let online = online_bound(inst, &outcome.best.selected);
        let sparsification = match (
            self.config.certify_sparsification,
            self.config.representation.sparsification,
        ) {
            (true, Sparsification::Threshold { tau }) | (true, Sparsification::Lsh { tau, .. }) => {
                Some(sparsification_bound(inst, tau))
            }
            _ => None,
        };
        PhocusReport {
            selected: outcome.best.selected.clone(),
            score: outcome.best.score,
            cost: outcome.best.cost,
            winner: outcome.winner,
            stats: outcome.total_stats(),
            online,
            sparsification,
            stored_pairs: inst.stored_pairs(),
            represent_time,
            solve_time,
            threads: self.config.parallelism.resolve(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use par_datasets::{generate_openimages, OpenImagesConfig};

    fn universe() -> Universe {
        generate_openimages(&OpenImagesConfig {
            name: "S".into(),
            photos: 150,
            target_subsets: 30,
            seed: 21,
            ..Default::default()
        })
    }

    #[test]
    fn phocus_ns_solves_and_certifies() {
        let u = universe();
        let solver = Phocus::default();
        let report = solver.solve(&u, u.total_cost() / 4).unwrap();
        assert!(!report.selected.is_empty());
        assert!(report.cost <= u.total_cost() / 4);
        assert!(report.score > 0.0);
        assert!(report.online.ratio > 0.3, "ratio {}", report.online.ratio);
        assert!(report.sparsification.is_none());
    }

    #[test]
    fn phocus_with_lsh_certificate() {
        let u = universe();
        let solver = Phocus::new(PhocusConfig {
            representation: RepresentationConfig::phocus(0.6),
            certify_sparsification: true,
            ..Default::default()
        });
        let report = solver.solve(&u, u.total_cost() / 4).unwrap();
        let cert = report.sparsification.expect("certificate requested");
        assert!(cert.alpha > 0.0 && cert.factor > 0.0);
        assert_eq!(cert.tau, 0.6);
    }

    #[test]
    fn sparsified_run_stores_fewer_pairs() {
        let u = universe();
        let dense = Phocus::default().solve(&u, u.total_cost() / 4).unwrap();
        let sparse = Phocus::new(PhocusConfig {
            representation: RepresentationConfig::phocus(0.7),
            ..Default::default()
        })
        .solve(&u, u.total_cost() / 4)
        .unwrap();
        assert!(sparse.stored_pairs < dense.stored_pairs);
    }

    #[test]
    fn sharding_toggle_is_bit_identical() {
        let u = universe();
        let budget = u.total_cost() / 4;
        let solve = |sharding: bool| {
            Phocus::new(PhocusConfig {
                representation: RepresentationConfig::phocus(0.7),
                sharding,
                ..Default::default()
            })
            .solve(&u, budget)
            .unwrap()
        };
        let on = solve(true);
        let off = solve(false);
        assert_eq!(on.selected, off.selected);
        assert_eq!(on.score.to_bits(), off.score.to_bits());
        assert_eq!(on.cost, off.cost);
        assert_eq!(on.winner, off.winner);
    }

    #[test]
    fn full_budget_retains_everything() {
        let u = universe();
        let report = Phocus::default().solve(&u, u.total_cost()).unwrap();
        assert_eq!(report.selected.len(), u.num_photos());
    }
}
