//! # par-embed — image substrate: pixels → features → embeddings → SIM
//!
//! The paper derives its similarity function from ResNet-50 embeddings of
//! real product photos and from EXIF/SIFT-based multidimensional distances
//! (Sinha et al.). Neither real photos nor a trained CNN are available to a
//! reproduction, so this crate builds the closest synthetic equivalent that
//! exercises the same code paths end to end:
//!
//! * [`image`] — procedural "product photos": small RGB rasters rendered
//!   from a category prototype plus attribute variation and noise, with a
//!   simulated JPEG byte-cost model (heavy-tailed sizes);
//! * [`features`] — genuine feature extraction over those pixels: HSV color
//!   histograms and gradient-orientation descriptors (a SIFT-lite);
//! * [`codebook`] — k-means visual-word codebooks (Lloyd's algorithm with
//!   k-means++ seeding) and bag-of-visual-words histograms;
//! * [`embedding`] — L2-normalized embedding vectors produced either from
//!   extracted features (the honest pipeline) or in closed form from the
//!   image spec (the fast path for 100K-photo scalability runs — documented
//!   substitution: both yield cosine geometry that clusters by category);
//! * [`exif`] — synthesized EXIF-like metadata (timestamp, geolocation,
//!   camera) for the Sinha-style context distance;
//! * [`quality`] — no-reference image quality (sharpness/exposure/noise),
//!   the quality half of Example 5.1's relevance computation;
//! * [`contextual`] — the paper's *contextualized* similarity: per-subset
//!   attention re-weighting of the embedding space plus optional per-context
//!   distance normalization (Section 5.1), exposed as a
//!   [`par_core::SimilarityProvider`].

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod codebook;
pub mod contextual;
pub mod embedding;
pub mod exif;
pub mod features;
pub mod image;
pub mod quality;

pub use codebook::{Codebook, KMeansConfig};
pub use contextual::{
    ContextKernel, ContextVector, ContextualSimilarity, NonContextualSimilarity, PreparedContext,
};
pub use embedding::{Embedding, FeatureEmbedder, SpecEmbedder};
pub use exif::ExifData;
pub use features::{color_histogram, gradient_descriptors, FeatureVector};
pub use image::{Image, ImageSpec};
pub use quality::{assess, QualityScore};
