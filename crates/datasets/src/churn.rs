//! Churn-trace generation and replay for the epoch-resident solver.
//!
//! The incremental experiments (BENCH_incremental, `phocus epochs`) need
//! reproducible streams of [`EpochDelta`]s: photos arriving and leaving,
//! queries drifting, the budget wobbling. This module provides
//!
//! * a **generator** ([`generate_churn`]) that evolves a base [`Instance`]
//!   for a configured number of epochs — Zipf-skewed photo arrivals attached
//!   via fresh drift queries, removals of cold photos, query retirement,
//!   required-flag flips, and optional budget wobble — validating every
//!   epoch against `par_core::apply_delta` so the emitted trace is
//!   guaranteed to replay cleanly over the whole chain;
//! * a **text format** (`# phocus-trace v1`, [`trace_to_text`] /
//!   [`trace_from_text`]) so traces can be archived and replayed by the CLI.
//!   Operations reference photos and queries **by name**, not by id: dense
//!   ids are compacted on every removal, so a name is the only reference
//!   that stays stable across epochs;
//! * a **resolver** ([`resolve_epoch`]) that turns one epoch's name-based
//!   operations into a concrete [`EpochDelta`] against the *live* instance
//!   (pre-delta ids), which is exactly what `IncrementalSolver::apply_delta`
//!   consumes. Replay loop: resolve epoch `k` against the current instance,
//!   apply, repeat.
//!
//! Like the universe format in [`crate::io`], the trace format is
//! tab-separated, line-oriented, and its parser never panics on arbitrary
//! input (exercised by the workspace fuzz tests).

use crate::error::DatasetError;
use crate::io::ParseError;
use crate::openimages::{lognormal_cost, sample_count};
use crate::zipf::Zipf;
use par_core::{EpochDelta, Instance, MemberRef, PhotoAdd, PhotoId, QueryAdd, SubsetId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Convenience alias.
type Result<T> = std::result::Result<T, DatasetError>;

/// One name-based operation of a churn trace. The variants mirror the fields
/// of [`EpochDelta`], with photos and queries identified by name/label so
/// the trace survives the id compaction every removal triggers.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceOp {
    /// A photo arrives with the given storage cost; `required` pins it.
    AddPhoto {
        /// Unique photo name (no tabs or newlines).
        name: String,
        /// Storage cost in bytes (strictly positive).
        cost: u64,
        /// Whether policy pins the photo on arrival.
        required: bool,
    },
    /// A photo leaves the archive.
    RemovePhoto {
        /// Name of the photo to purge.
        name: String,
    },
    /// A query arrives. Members may name photos added earlier in the *same*
    /// epoch.
    AddQuery {
        /// Unique query label (no tabs or newlines).
        label: String,
        /// Importance weight `W(q)`.
        weight: f64,
        /// `(photo name, raw relevance)` per member; relevance is normalized
        /// at apply time.
        members: Vec<(String, f64)>,
        /// Sparse similarity pairs over local member positions.
        pairs: Vec<(u32, u32, f64)>,
    },
    /// A query is retired.
    RetireQuery {
        /// Label of the query to retire.
        label: String,
    },
    /// A photo gains the policy-retained flag.
    Require {
        /// Name of the photo to pin.
        name: String,
    },
    /// A photo loses the policy-retained flag.
    Unrequire {
        /// Name of the photo to release.
        name: String,
    },
    /// The storage budget changes to an absolute byte count.
    Budget {
        /// New budget in bytes.
        bytes: u64,
    },
}

/// A named sequence of epochs, each a list of name-based operations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChurnTrace {
    /// Trace name (carried through the text format).
    pub name: String,
    /// Operations per epoch, in application order.
    pub epochs: Vec<Vec<TraceOp>>,
}

/// Configuration for [`generate_churn`]. The churn magnitude is expressed as
/// fractions of the *current* instance size, so the same config scales from
/// toy fixtures to Open-Images-sized corpora.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnConfig {
    /// Number of epochs to generate.
    pub epochs: usize,
    /// Fraction of (non-required) photos removed per epoch.
    pub removal_fraction: f64,
    /// Mean number of photo arrivals per epoch.
    pub arrivals_mean: f64,
    /// Probability that an arrival is attached to existing photos via a
    /// fresh drift query (otherwise it lands as an isolated singleton).
    pub attach_prob: f64,
    /// Mean number of standalone drift queries (over existing photos only)
    /// per epoch.
    pub drift_mean: f64,
    /// Per-epoch probability of retiring one random query.
    pub retire_prob: f64,
    /// Per-epoch probability of flipping one photo's required flag.
    pub flip_prob: f64,
    /// Relative budget wobble per epoch (`0.0` disables budget changes; the
    /// budget never drops below the post-churn required cost).
    pub budget_wobble: f64,
    /// Zipf exponent skewing which existing photos attract drift queries
    /// (rank 0 = oldest surviving photo).
    pub zipf_exponent: f64,
    /// Master RNG seed; the whole trace is a pure function of `(base
    /// instance, config)`.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            epochs: 8,
            removal_fraction: 0.01,
            arrivals_mean: 2.0,
            attach_prob: 0.8,
            drift_mean: 1.0,
            retire_prob: 0.25,
            flip_prob: 0.25,
            budget_wobble: 0.0,
            zipf_exponent: 1.1,
            seed: 7,
        }
    }
}

impl ChurnConfig {
    fn validate(&self) -> Result<()> {
        let frac = |v: f64, what: &str| {
            if !(0.0..=1.0).contains(&v) {
                return Err(DatasetError::InvalidUniverse(format!(
                    "churn config: {what} must lie in [0, 1], got {v}"
                )));
            }
            Ok(())
        };
        frac(self.removal_fraction, "removal_fraction")?;
        frac(self.attach_prob, "attach_prob")?;
        frac(self.retire_prob, "retire_prob")?;
        frac(self.flip_prob, "flip_prob")?;
        if !self.arrivals_mean.is_finite() || self.arrivals_mean < 0.0 {
            return Err(DatasetError::InvalidUniverse(format!(
                "churn config: arrivals_mean must be finite and non-negative, got {}",
                self.arrivals_mean
            )));
        }
        if !self.drift_mean.is_finite() || self.drift_mean < 0.0 {
            return Err(DatasetError::InvalidUniverse(format!(
                "churn config: drift_mean must be finite and non-negative, got {}",
                self.drift_mean
            )));
        }
        if !self.budget_wobble.is_finite() || !(0.0..1.0).contains(&self.budget_wobble) {
            return Err(DatasetError::InvalidUniverse(format!(
                "churn config: budget_wobble must lie in [0, 1), got {}",
                self.budget_wobble
            )));
        }
        Ok(())
    }
}

fn err(line: usize, message: impl Into<String>) -> DatasetError {
    DatasetError::Parse(ParseError {
        line,
        message: message.into(),
    })
}

fn resolve_err(msg: String) -> DatasetError {
    DatasetError::TraceResolve(msg)
}

/// A name lookup table over the live instance. `None` marks a name that
/// occurs more than once (ambiguous — resolution refuses to guess).
struct NameMaps<'a> {
    photos: HashMap<&'a str, Option<PhotoId>>,
    subsets: HashMap<&'a str, Option<SubsetId>>,
}

impl<'a> NameMaps<'a> {
    fn new(inst: &'a Instance) -> Self {
        let mut photos: HashMap<&str, Option<PhotoId>> = HashMap::new();
        for p in inst.photos() {
            photos
                .entry(&*p.name)
                .and_modify(|e| *e = None)
                .or_insert(Some(p.id));
        }
        let mut subsets: HashMap<&str, Option<SubsetId>> = HashMap::new();
        for s in inst.subsets() {
            subsets
                .entry(&*s.label)
                .and_modify(|e| *e = None)
                .or_insert(Some(s.id));
        }
        NameMaps { photos, subsets }
    }

    fn photo(&self, name: &str) -> Result<PhotoId> {
        match self.photos.get(name) {
            Some(Some(id)) => Ok(*id),
            Some(None) => Err(resolve_err(format!("photo name `{name}` is ambiguous"))),
            None => Err(resolve_err(format!("unknown photo name `{name}`"))),
        }
    }

    fn subset(&self, label: &str) -> Result<SubsetId> {
        match self.subsets.get(label) {
            Some(Some(id)) => Ok(*id),
            Some(None) => Err(resolve_err(format!("query label `{label}` is ambiguous"))),
            None => Err(resolve_err(format!("unknown query label `{label}`"))),
        }
    }
}

/// Resolves one epoch's name-based operations into a concrete
/// [`EpochDelta`] against the live (pre-delta) instance.
///
/// Photo names and query labels must be unique in `inst` *if referenced*;
/// an ambiguous or unknown name yields [`DatasetError::TraceResolve`].
/// `AddQuery` members may name photos added earlier in the same epoch
/// (resolved to [`MemberRef::New`]); everything else resolves to pre-delta
/// ids exactly as [`EpochDelta`] expects.
pub fn resolve_epoch(ops: &[TraceOp], inst: &Instance) -> Result<EpochDelta> {
    let maps = NameMaps::new(inst);
    let mut delta = EpochDelta::default();
    // Photos added earlier in this same epoch, by name → add_photos index.
    let mut fresh: HashMap<&str, usize> = HashMap::new();
    for op in ops {
        match op {
            TraceOp::AddPhoto {
                name,
                cost,
                required,
            } => {
                if fresh.insert(name.as_str(), delta.add_photos.len()).is_some() {
                    return Err(resolve_err(format!(
                        "photo name `{name}` added twice in one epoch"
                    )));
                }
                delta.add_photos.push(PhotoAdd {
                    name: name.clone(),
                    cost: *cost,
                    required: *required,
                });
            }
            TraceOp::RemovePhoto { name } => delta.remove_photos.push(maps.photo(name)?),
            TraceOp::AddQuery {
                label,
                weight,
                members,
                pairs,
            } => {
                let mut refs = Vec::with_capacity(members.len());
                let mut relevance = Vec::with_capacity(members.len());
                for (name, rel) in members {
                    let m = match fresh.get(name.as_str()) {
                        Some(&k) => MemberRef::New(k),
                        None => MemberRef::Existing(maps.photo(name)?),
                    };
                    refs.push(m);
                    relevance.push(*rel);
                }
                delta.add_queries.push(QueryAdd {
                    label: label.clone(),
                    weight: *weight,
                    members: refs,
                    relevance,
                    pairs: pairs.clone(),
                });
            }
            TraceOp::RetireQuery { label } => delta.retire_queries.push(maps.subset(label)?),
            TraceOp::Require { name } => delta.require.push(maps.photo(name)?),
            TraceOp::Unrequire { name } => delta.unrequire.push(maps.photo(name)?),
            TraceOp::Budget { bytes } => delta.set_budget = Some(*bytes),
        }
    }
    Ok(delta)
}

/// Strips tabs and newlines from a name before it enters the tab-separated
/// format (mirrors the label sanitization in [`crate::io::to_text`]).
fn sanitize(s: &str) -> String {
    s.replace(['\t', '\n', '\r'], " ")
}

/// Serializes a trace to the `# phocus-trace v1` text format. Names
/// containing tabs or newlines are sanitized to spaces (the generator never
/// produces such names).
pub fn trace_to_text(trace: &ChurnTrace) -> String {
    let mut out = String::new();
    out.push_str("# phocus-trace v1\n");
    let _ = writeln!(out, "name\t{}", sanitize(&trace.name));
    for ops in &trace.epochs {
        out.push_str("epoch\n");
        for op in ops {
            match op {
                TraceOp::AddPhoto {
                    name,
                    cost,
                    required,
                } => {
                    let _ = writeln!(
                        out,
                        "add_photo\t{}\t{cost}\t{}",
                        sanitize(name),
                        u8::from(*required)
                    );
                }
                TraceOp::RemovePhoto { name } => {
                    let _ = writeln!(out, "remove_photo\t{}", sanitize(name));
                }
                TraceOp::AddQuery {
                    label,
                    weight,
                    members,
                    pairs,
                } => {
                    let _ = write!(
                        out,
                        "add_query\t{}\t{weight}\t{}",
                        sanitize(label),
                        members.len()
                    );
                    for (name, rel) in members {
                        let _ = write!(out, "\t{}\t{rel}", sanitize(name));
                    }
                    let _ = write!(out, "\t{}", pairs.len());
                    for (i, j, s) in pairs {
                        let _ = write!(out, "\t{i}\t{j}\t{s}");
                    }
                    out.push('\n');
                }
                TraceOp::RetireQuery { label } => {
                    let _ = writeln!(out, "retire_query\t{}", sanitize(label));
                }
                TraceOp::Require { name } => {
                    let _ = writeln!(out, "require\t{}", sanitize(name));
                }
                TraceOp::Unrequire { name } => {
                    let _ = writeln!(out, "unrequire\t{}", sanitize(name));
                }
                TraceOp::Budget { bytes } => {
                    let _ = writeln!(out, "budget\t{bytes}");
                }
            }
        }
    }
    out
}

fn parse_u64(line: usize, field: &str, what: &str) -> Result<u64> {
    field
        .parse::<u64>()
        .map_err(|_| err(line, format!("bad {what} `{field}`")))
}

fn parse_f64(line: usize, field: &str, what: &str) -> Result<f64> {
    let v = field
        .parse::<f64>()
        .map_err(|_| err(line, format!("bad {what} `{field}`")))?;
    if !v.is_finite() {
        return Err(err(line, format!("non-finite {what} `{field}`")));
    }
    Ok(v)
}

fn parse_usize(line: usize, field: &str, what: &str) -> Result<usize> {
    field
        .parse::<usize>()
        .map_err(|_| err(line, format!("bad {what} `{field}`")))
}

/// Parses the `# phocus-trace v1` text format. Never panics on arbitrary
/// input; every malformed line is reported with its 1-based line number.
pub fn trace_from_text(text: &str) -> Result<ChurnTrace> {
    let mut trace = ChurnTrace::default();
    let mut saw_header = false;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        if line.starts_with('#') {
            if line.trim() == "# phocus-trace v1" {
                saw_header = true;
            }
            continue;
        }
        if !saw_header {
            return Err(err(lineno, "missing `# phocus-trace v1` header"));
        }
        let fields: Vec<&str> = line.split('\t').collect();
        let arity = |want: usize| -> Result<()> {
            if fields.len() != want {
                return Err(err(
                    lineno,
                    format!(
                        "`{}` expects {} field(s), got {}",
                        fields[0],
                        want - 1,
                        fields.len() - 1
                    ),
                ));
            }
            Ok(())
        };
        match fields[0] {
            "name" => {
                arity(2)?;
                trace.name = fields[1].to_string();
            }
            "epoch" => {
                arity(1)?;
                trace.epochs.push(Vec::new());
            }
            tag => {
                let Some(ops) = trace.epochs.last_mut() else {
                    return Err(err(lineno, format!("`{tag}` before the first `epoch`")));
                };
                match tag {
                    "add_photo" => {
                        arity(4)?;
                        let cost = parse_u64(lineno, fields[2], "cost")?;
                        let required = match fields[3] {
                            "0" => false,
                            "1" => true,
                            other => {
                                return Err(err(
                                    lineno,
                                    format!("bad required flag `{other}` (want 0 or 1)"),
                                ))
                            }
                        };
                        ops.push(TraceOp::AddPhoto {
                            name: fields[1].to_string(),
                            cost,
                            required,
                        });
                    }
                    "remove_photo" => {
                        arity(2)?;
                        ops.push(TraceOp::RemovePhoto {
                            name: fields[1].to_string(),
                        });
                    }
                    "add_query" => {
                        if fields.len() < 4 {
                            return Err(err(lineno, "truncated `add_query`"));
                        }
                        let weight = parse_f64(lineno, fields[2], "weight")?;
                        let m = parse_usize(lineno, fields[3], "member count")?;
                        let members_end = 4usize
                            .checked_add(m.checked_mul(2).ok_or_else(|| {
                                err(lineno, "member count overflows")
                            })?)
                            .ok_or_else(|| err(lineno, "member count overflows"))?;
                        if fields.len() < members_end + 1 {
                            return Err(err(lineno, "truncated `add_query` member list"));
                        }
                        let mut members = Vec::with_capacity(m);
                        for k in 0..m {
                            let name = fields[4 + 2 * k].to_string();
                            let rel = parse_f64(lineno, fields[5 + 2 * k], "relevance")?;
                            members.push((name, rel));
                        }
                        let p = parse_usize(lineno, fields[members_end], "pair count")?;
                        let total = members_end
                            .checked_add(1)
                            .and_then(|v| v.checked_add(p.checked_mul(3)?))
                            .ok_or_else(|| err(lineno, "pair count overflows"))?;
                        if fields.len() != total {
                            return Err(err(
                                lineno,
                                format!(
                                    "`add_query` expects {} field(s), got {}",
                                    total - 1,
                                    fields.len() - 1
                                ),
                            ));
                        }
                        let mut pairs = Vec::with_capacity(p);
                        for k in 0..p {
                            let at = members_end + 1 + 3 * k;
                            let i = parse_u64(lineno, fields[at], "pair index")? as u32;
                            let j = parse_u64(lineno, fields[at + 1], "pair index")? as u32;
                            let s = parse_f64(lineno, fields[at + 2], "pair similarity")?;
                            pairs.push((i, j, s));
                        }
                        ops.push(TraceOp::AddQuery {
                            label: fields[1].to_string(),
                            weight,
                            members,
                            pairs,
                        });
                    }
                    "retire_query" => {
                        arity(2)?;
                        ops.push(TraceOp::RetireQuery {
                            label: fields[1].to_string(),
                        });
                    }
                    "require" => {
                        arity(2)?;
                        ops.push(TraceOp::Require {
                            name: fields[1].to_string(),
                        });
                    }
                    "unrequire" => {
                        arity(2)?;
                        ops.push(TraceOp::Unrequire {
                            name: fields[1].to_string(),
                        });
                    }
                    "budget" => {
                        arity(2)?;
                        ops.push(TraceOp::Budget {
                            bytes: parse_u64(lineno, fields[1], "budget")?,
                        });
                    }
                    other => return Err(err(lineno, format!("unknown record `{other}`"))),
                }
            }
        }
    }
    if !saw_header && !text.lines().any(|l| !l.trim().is_empty()) {
        return Err(err(1, "empty trace"));
    }
    if !saw_header {
        return Err(err(1, "missing `# phocus-trace v1` header"));
    }
    Ok(trace)
}

/// Generates a churn trace by evolving `base` for `cfg.epochs` epochs.
///
/// Every epoch is resolved and applied internally (via
/// [`par_core::apply_delta`]), so the returned trace is guaranteed to replay
/// cleanly over the whole chain: the generator can never emit an operation
/// that references a photo removed in an earlier epoch or drives the budget
/// below the required-set cost. The trace is a pure function of `(base,
/// cfg)` — same inputs, same bytes.
///
/// Epoch shape (in application order):
/// 1. removals — `⌊n · removal_fraction⌋` random *non-required* photos
///    (never below 2 survivors);
/// 2. arrivals — `~arrivals_mean` photos with log-normal costs; each is
///    attached with probability `attach_prob` to 1–2 existing photos via a
///    fresh drift query (Zipf-skewed towards old photos), otherwise it
///    arrives as an isolated singleton;
/// 3. query drift — `~drift_mean` standalone queries over existing photos;
/// 4. with probability `retire_prob`, one random query retires;
/// 5. with probability `flip_prob`, one photo's required flag flips;
/// 6. if `budget_wobble > 0`, the budget moves by a uniform relative factor
///    in `±budget_wobble`, clamped to the post-churn required cost.
pub fn generate_churn(base: &Instance, cfg: &ChurnConfig) -> Result<ChurnTrace> {
    cfg.validate()?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut inst = base.clone();
    let mut trace = ChurnTrace {
        name: format!("churn-seed{}", cfg.seed),
        epochs: Vec::with_capacity(cfg.epochs),
    };
    for e in 0..cfg.epochs {
        let mut ops: Vec<TraceOp> = Vec::new();
        let n = inst.num_photos();

        // 1. Removals: random non-required photos, keeping ≥ 2 survivors.
        let mut removed = vec![false; n];
        let mut candidates: Vec<PhotoId> = inst
            .photos()
            .iter()
            .map(|p| p.id)
            .filter(|&p| !inst.is_required(p))
            .collect();
        let want = ((n as f64) * cfg.removal_fraction) as usize;
        let cap = n.saturating_sub(2);
        for _ in 0..want.min(cap).min(candidates.len()) {
            let at = rng.gen_range(0..candidates.len());
            let p = candidates.swap_remove(at);
            removed[p.index()] = true;
            ops.push(TraceOp::RemovePhoto {
                name: inst.photo(p).name.to_string(),
            });
        }

        // Surviving photos, oldest first: the Zipf attachment ranks them so
        // old photos stay popular (stable components) while the tail churns.
        let alive: Vec<PhotoId> = inst
            .photos()
            .iter()
            .map(|p| p.id)
            .filter(|p| !removed[p.index()])
            .collect();
        let zipf = if alive.is_empty() {
            None
        } else {
            Some(Zipf::new(alive.len(), cfg.zipf_exponent)?)
        };
        let pick_alive = |rng: &mut StdRng| -> Option<PhotoId> {
            zipf.as_ref().map(|z| alive[z.sample(rng)])
        };

        // 2. Arrivals, each optionally attached via a fresh drift query.
        let arrivals = sample_count(&mut rng, cfg.arrivals_mean);
        for i in 0..arrivals {
            let name = format!("churn-e{e:03}-p{i:02}");
            let cost = lognormal_cost(&mut rng);
            ops.push(TraceOp::AddPhoto {
                name: name.clone(),
                cost,
                required: false,
            });
            if rng.gen::<f64>() < cfg.attach_prob {
                if let Some(anchor) = pick_alive(&mut rng) {
                    let anchor_name = inst.photo(anchor).name.to_string();
                    let weight = 0.5 + 2.5 * rng.gen::<f64>();
                    let sim = 0.3 + 0.6 * rng.gen::<f64>();
                    ops.push(TraceOp::AddQuery {
                        label: format!("drift-e{e:03}-a{i:02}"),
                        weight,
                        members: vec![(name, 1.0), (anchor_name, 1.0)],
                        pairs: vec![(0, 1, sim)],
                    });
                }
            }
        }

        // 3. Standalone drift queries over surviving photos.
        let drifts = sample_count(&mut rng, cfg.drift_mean);
        for d in 0..drifts {
            let (Some(a), Some(b)) = (pick_alive(&mut rng), pick_alive(&mut rng)) else {
                break;
            };
            if a == b {
                continue;
            }
            let weight = 0.5 + 2.5 * rng.gen::<f64>();
            let sim = 0.2 + 0.7 * rng.gen::<f64>();
            ops.push(TraceOp::AddQuery {
                label: format!("drift-e{e:03}-q{d:02}"),
                weight,
                members: vec![
                    (inst.photo(a).name.to_string(), 0.5 + rng.gen::<f64>()),
                    (inst.photo(b).name.to_string(), 0.5 + rng.gen::<f64>()),
                ],
                pairs: vec![(0, 1, sim)],
            });
        }

        // 4. Retirement: one random query whose label is unambiguous.
        if inst.num_subsets() > 1 && rng.gen::<f64>() < cfg.retire_prob {
            let q = SubsetId(rng.gen_range(0..inst.num_subsets()) as u32);
            let label = &inst.subset(q).label;
            let unique = inst.subsets().iter().filter(|s| &s.label == label).count() == 1;
            if unique {
                ops.push(TraceOp::RetireQuery {
                    label: label.to_string(),
                });
            }
        }

        // Required-cost bookkeeping for the flip and the budget clamp:
        // removals only ever touch non-required photos, so the required cost
        // changes solely through the flip below.
        let mut required_cost = inst.required_cost();

        // 5. Required-flag flip.
        if cfg.flip_prob > 0.0 && rng.gen::<f64>() < cfg.flip_prob {
            if let Some(p) = pick_alive(&mut rng) {
                let name = inst.photo(p).name.to_string();
                if inst.is_required(p) {
                    required_cost = required_cost.saturating_sub(inst.cost(p));
                    ops.push(TraceOp::Unrequire { name });
                } else if required_cost.saturating_add(inst.cost(p)) <= inst.budget() {
                    required_cost = required_cost.saturating_add(inst.cost(p));
                    ops.push(TraceOp::Require { name });
                }
            }
        }

        // 6. Budget wobble, clamped so the required set always fits.
        if cfg.budget_wobble > 0.0 {
            let factor = 1.0 + cfg.budget_wobble * (2.0 * rng.gen::<f64>() - 1.0);
            let wobbled = (inst.budget() as f64 * factor) as u64;
            ops.push(TraceOp::Budget {
                bytes: wobbled.max(required_cost).max(1),
            });
        }

        // Advance the live instance; the generator constructs only valid
        // operations, so a failure here is a bug worth surfacing verbatim.
        let delta = resolve_epoch(&ops, &inst)?;
        let applied = par_core::apply_delta(&inst, &delta).map_err(|apply_err| {
            DatasetError::InvalidUniverse(format!(
                "generated epoch {e} does not apply: {apply_err}"
            ))
        })?;
        inst = applied.instance;
        trace.epochs.push(ops);
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use par_core::fixtures::{random_instance, RandomInstanceConfig};

    fn base(seed: u64) -> Instance {
        random_instance(
            seed,
            &RandomInstanceConfig {
                photos: 60,
                subsets: 18,
                subset_size: (2, 6),
                cost_range: (100, 900),
                budget_fraction: 0.5,
                required_prob: 0.05,
            },
        )
    }

    fn busy_config() -> ChurnConfig {
        ChurnConfig {
            epochs: 10,
            removal_fraction: 0.05,
            arrivals_mean: 2.5,
            drift_mean: 1.5,
            budget_wobble: 0.15,
            ..ChurnConfig::default()
        }
    }

    #[test]
    fn generated_trace_replays_over_the_whole_chain() {
        let inst0 = base(3);
        let trace = generate_churn(&inst0, &busy_config()).unwrap();
        assert_eq!(trace.epochs.len(), 10);
        let mut inst = inst0;
        let mut total_ops = 0;
        for ops in &trace.epochs {
            total_ops += ops.len();
            let delta = resolve_epoch(ops, &inst).unwrap();
            inst = par_core::apply_delta(&inst, &delta).unwrap().instance;
        }
        assert!(total_ops > 0, "trace generated no churn at all");
        assert!(inst.num_photos() >= 2);
    }

    #[test]
    fn generation_is_deterministic() {
        let inst = base(5);
        let cfg = busy_config();
        let a = generate_churn(&inst, &cfg).unwrap();
        let b = generate_churn(&inst, &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(trace_to_text(&a), trace_to_text(&b));
        let other = generate_churn(
            &inst,
            &ChurnConfig {
                seed: cfg.seed + 1,
                ..cfg
            },
        )
        .unwrap();
        assert_ne!(trace_to_text(&a), trace_to_text(&other));
    }

    #[test]
    fn text_roundtrip_is_lossless() {
        let inst = base(7);
        let trace = generate_churn(&inst, &busy_config()).unwrap();
        let text = trace_to_text(&trace);
        let back = trace_from_text(&text).unwrap();
        assert_eq!(trace, back);
        assert_eq!(trace_to_text(&back), text);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        let cases = [
            ("", "empty trace"),
            ("add_photo\tx\t1\t0\n", "header"),
            ("# phocus-trace v1\nadd_photo\tx\t1\t0\n", "before the first"),
            ("# phocus-trace v1\nepoch\nadd_photo\tx\tbad\t0\n", "bad cost"),
            ("# phocus-trace v1\nepoch\nadd_photo\tx\t1\t2\n", "required flag"),
            ("# phocus-trace v1\nepoch\nbudget\t-3\n", "bad budget"),
            ("# phocus-trace v1\nepoch\nwat\tx\n", "unknown record"),
            (
                "# phocus-trace v1\nepoch\nadd_query\tq\t1.0\t2\ta\t1.0\n",
                "truncated",
            ),
            (
                "# phocus-trace v1\nepoch\nadd_query\tq\t1.0\t1\ta\t1.0\t1\t0\t1\n",
                "expects",
            ),
        ];
        for (text, needle) in cases {
            let got = trace_from_text(text).unwrap_err().to_string();
            assert!(
                got.contains(needle),
                "for {text:?}: expected `{needle}` in `{got}`"
            );
        }
    }

    #[test]
    fn resolver_reports_unknown_and_ambiguous_names() {
        let inst = base(11);
        let missing = resolve_epoch(
            &[TraceOp::RemovePhoto {
                name: "no-such-photo".into(),
            }],
            &inst,
        );
        assert!(matches!(missing, Err(DatasetError::TraceResolve(_))));
        let twice = resolve_epoch(
            &[
                TraceOp::AddPhoto {
                    name: "dup".into(),
                    cost: 10,
                    required: false,
                },
                TraceOp::AddPhoto {
                    name: "dup".into(),
                    cost: 20,
                    required: false,
                },
            ],
            &inst,
        );
        assert!(matches!(twice, Err(DatasetError::TraceResolve(_))));
    }

    #[test]
    fn same_epoch_arrivals_resolve_to_new_members() {
        let inst = base(13);
        let anchor = inst.photo(PhotoId(0)).name.clone();
        let ops = vec![
            TraceOp::AddPhoto {
                name: "fresh".into(),
                cost: 123,
                required: false,
            },
            TraceOp::AddQuery {
                label: "link".into(),
                weight: 1.0,
                members: vec![("fresh".into(), 1.0), (anchor.to_string(), 1.0)],
                pairs: vec![(0, 1, 0.5)],
            },
        ];
        let delta = resolve_epoch(&ops, &inst).unwrap();
        assert_eq!(delta.add_queries[0].members[0], MemberRef::New(0));
        assert_eq!(
            delta.add_queries[0].members[1],
            MemberRef::Existing(PhotoId(0))
        );
        // And the delta actually applies.
        par_core::apply_delta(&inst, &delta).unwrap();
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let inst = base(17);
        for bad in [
            ChurnConfig {
                removal_fraction: 1.5,
                ..ChurnConfig::default()
            },
            ChurnConfig {
                arrivals_mean: f64::NAN,
                ..ChurnConfig::default()
            },
            ChurnConfig {
                budget_wobble: 1.0,
                ..ChurnConfig::default()
            },
        ] {
            assert!(generate_churn(&inst, &bad).is_err());
        }
    }
}
