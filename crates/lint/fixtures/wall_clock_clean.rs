//! Fixture: no wall-clock reads in library code; timing stays inside the
//! `#[cfg(test)]` module.

pub fn work(x: u64) -> u64 {
    x.wrapping_mul(2)
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn timing_in_tests_is_fine() {
        let t0 = Instant::now();
        assert!(t0.elapsed().as_nanos() < u128::MAX);
    }
}
