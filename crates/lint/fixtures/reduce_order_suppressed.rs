//! Fixture: scratch accumulation whose merge order is pinned downstream.

pub fn direct(xs: &[f64]) -> f64 {
    let partials = par_map_dynamic(xs.len(), || 0.0f64, |scratch, i| {
        *scratch += xs[i]; // phocus-lint: allow(reduce-order) — fixture: partials merged in index order below
        *scratch
    });
    let mut total = 0.0;
    for p in partials {
        total += p;
    }
    total
}
