//! Common solver output and instrumentation types.

use par_core::PhotoId;
use std::time::Duration;

/// Instrumentation gathered during a solver run.
///
/// `gain_evals` is the quantity the paper's efficiency analysis counts
/// (Section 4.2: Ω(B·n⁴) for the Sviridenko scheme vs `O(B·n)` for CELF,
/// with lazy evaluation shaving a further large constant factor), and
/// `sim_ops` is what τ-sparsification reduces.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunStats {
    /// Number of marginal-gain evaluations performed.
    pub gain_evals: u64,
    /// Number of similarity lookups performed.
    pub sim_ops: u64,
    /// Number of priority-queue pops (CELF only).
    pub pq_pops: u64,
    /// Number of lazy accepts — pops whose cached bound was still the best
    /// after recomputation (CELF only).
    pub lazy_accepts: u64,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl RunStats {
    /// Merges counters from another run (used by Algorithm 1 to aggregate
    /// its two sub-runs).
    pub fn merge(&self, other: &RunStats) -> RunStats {
        RunStats {
            gain_evals: self.gain_evals + other.gain_evals,
            sim_ops: self.sim_ops + other.sim_ops,
            pq_pops: self.pq_pops + other.pq_pops,
            lazy_accepts: self.lazy_accepts + other.lazy_accepts,
            elapsed: self.elapsed + other.elapsed,
        }
    }
}

/// The output of a greedy-style solver: the selected photo set (including the
/// policy-retained `S₀`), its score *under the instance it was selected on*,
/// its byte cost, and run instrumentation.
///
/// Note the score caveat: baselines select on simplified instance views; the
/// caller re-scores `selected` under the true instance (see
/// [`par_core::Solution`]).
#[derive(Debug, Clone)]
pub struct GreedyOutcome {
    /// Selected photos in selection order (S₀ first).
    pub selected: Vec<PhotoId>,
    /// Objective value on the selection instance.
    pub score: f64,
    /// Total cost in bytes.
    pub cost: u64,
    /// Instrumentation counters.
    pub stats: RunStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge_adds_counters() {
        let a = RunStats {
            gain_evals: 10,
            sim_ops: 100,
            pq_pops: 5,
            lazy_accepts: 3,
            elapsed: Duration::from_millis(7),
        };
        let b = RunStats {
            gain_evals: 1,
            sim_ops: 2,
            pq_pops: 3,
            lazy_accepts: 4,
            elapsed: Duration::from_millis(5),
        };
        let m = a.merge(&b);
        assert_eq!(m.gain_evals, 11);
        assert_eq!(m.sim_ops, 102);
        assert_eq!(m.pq_pops, 8);
        assert_eq!(m.lazy_accepts, 7);
        assert_eq!(m.elapsed, Duration::from_millis(12));
    }
}
