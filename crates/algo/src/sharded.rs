//! Component-sharded CELF (lazy greedy over a component decomposition).
//!
//! [`sharded_lazy_greedy`] produces a **bit-identical** transcript to the
//! global [`lazy_greedy`](crate::lazy_greedy) — same photos, same order,
//! same `f64` score bits — while doing strictly less gain recomputation.
//! The instance is first split by [`par_core::components::decompose`] into
//! shards that interact only through the shared budget. Each shard then runs
//! its own lazy stream (a CELF heap plus per-photo staleness stamps), and a
//! budget-aware coordinator repeatedly takes the stream whose *settled* top
//! has the maximum key, with the global heap's exact tie-break (smaller
//! photo id).
//!
//! All streams share **one** evaluator — the prepared solver's clone of the
//! post-`S₀` arena — so every gain is computed by the very same code on the
//! very same state as the global solver's, making bit-identity of scores a
//! triviality rather than a theorem about sub-instance remapping. The
//! decomposition buys speed through what is *not* recomputed, at two levels:
//!
//! 1. **Across shards**: the global heap's epoch counter advances on *every*
//!    accept, so every cached entry goes stale even when the accepted photo
//!    lives in a different component and cannot have changed its gain. A
//!    shard stream is only re-settled after an accept in its own shard, so
//!    cross-component accepts trigger no pops and no recomputes elsewhere.
//! 2. **Within a shard**: an accept only changes the gains of photos whose
//!    *read-set* it touched. A marginal gain reads exactly the photo's own
//!    coverage (`best` similarity) and its stored neighbors' coverage in
//!    each of its contexts; so when [`Evaluator::add_tracked`] reports the
//!    members whose `best` changed, bumping a version counter on each
//!    changed member *and its stored CSR neighbors* (all members, in dense
//!    contexts) marks precisely the photos whose cached gains may have
//!    moved. A popped entry whose photo's version is unchanged is guaranteed
//!    to recompute to the same key bits, so the recomputation is skipped
//!    entirely.
//! 3. **The singleton pool**: photos forming singleton components share no
//!    stored pair with anyone, so their seed keys are *frozen* — exact for
//!    the whole run. The pool's stream is a cursor over entries pre-sorted
//!    in pop order (cached per rule at prepare time) instead of a heap:
//!    pops are sequential reads with no sift-downs, no staleness checks,
//!    and pool accepts skip change-tracking and propagation outright.
//!
//! On top of removing redundant re-evaluations, the prepared
//! [`ShardedSolver`] amortizes all rule-independent work across solves: the
//! decomposition, the `S₀` replay, and the epoch-0 seed sweep (marginal
//! gains at the post-`S₀` state do not depend on the greedy rule; each
//! solve derives its keys as `rule.key(δ, cost)` exactly as the global
//! seeding does). Algorithm 1 runs both rules, so its sharded form pays for
//! one seed sweep instead of two.
//!
//! Why the transcript is identical: at every step, global CELF selects the
//! photo with the maximum *current* key among unselected photos affordable
//! under the remaining budget (lazy acceptance is exact by submodularity),
//! breaking ties toward the smaller id; photos found unaffordable are
//! dropped permanently (costs only grow). A settled shard stream parks its
//! shard's true argmax under the same rule: cached keys are upper bounds
//! (gains only shrink as the solution grows), current-stamp entries carry
//! exact keys, and when the global loop recomputes a stale-but-unchanged
//! top it re-pushes the identical `(key, photo)` and accepts it on the next
//! pop — the very photo the stamp check parks without recomputing. A parked
//! candidate can never go stale while parked: only accepts in its own shard
//! touch its read-set, and its shard only accepts the parked candidate
//! itself. The coordinator's max-heap over parked candidates therefore
//! selects the same global argmax, re-checking affordability at pop time
//! exactly where the global loop does.
//!
//! Per-component stream construction (keying the cached seed gains and
//! heapifying) is dispatched through `par-exec`, so multi-core runs scale
//! with component count; the coordinator itself is sequential by nature
//! (each accept must observe the previous one), and the serial fallback is
//! transcript-identical because heap *pop order* is fully determined by the
//! entry ordering, not by construction order.

use crate::celf::Entry;
use crate::types::{GreedyOutcome, RunStats};
use crate::GreedyRule;
use par_core::components::{decompose, decompose_with_labels, Decomposition, ShardLabels};
use par_core::{ContextSim, EvalArena, EvalStats, Evaluator, Instance, PhotoId, SubsetId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Reusable solver buffers for multi-tenant (fleet) runs: the evaluator
/// arenas, per-shard stream entry buffers, staleness stamps, and the
/// change-tracking list that [`ShardedSolver`] otherwise allocates fresh on
/// every prepare + solve.
///
/// One `SolveScratch` serves any sequence of tenants: buffers grow to the
/// largest instance seen and are reused (cleared, then fully rewritten) for
/// each subsequent one. Like [`EvalArena`], the scratch holds *capacity
/// only*, so [`ShardedSolver::solve_scratch`] is bit-identical to
/// [`ShardedSolver::solve`] no matter what ran in the scratch before — the
/// invariant the fleet determinism tests pin.
#[derive(Debug, Default)]
pub struct SolveScratch {
    /// Capacity for the prepared solver's base (post-`S₀`) evaluator.
    base_eval: EvalArena,
    /// Capacity for the per-solve evaluator clone.
    solve_eval: EvalArena,
    /// Recycled per-shard stream entry buffers (heap backing stores and
    /// frozen pool vectors alike).
    entries: Vec<Vec<Entry>>,
    /// Per-photo staleness versions.
    ver: Vec<u32>,
    /// Coverage-change report buffer for `add_tracked`.
    changed: Vec<(SubsetId, u32)>,
}

impl SolveScratch {
    /// An empty scratch; buffers are allocated on first use and kept.
    pub fn new() -> Self {
        Self::default()
    }
}


/// One per-component lazy stream: a CELF heap over the shard's photos
/// (global ids) and the parked settled top.
///
/// Instead of the global CELF's single epoch (every accept invalidates every
/// cached entry), each *subset* carries a version counter — `ver` in
/// [`ShardedSolver::solve_with`] — bumped when an accept changes any of its
/// members' coverage. A cached entry stores its photo's stamp
/// ([`photo_stamp`]) at compute time; the entry is exactly current while the
/// stamp is unchanged, because a marginal gain reads only the coverage
/// state of the photo's own contexts. Popping a current entry therefore
/// skips the gain recomputation the global loop would have paid, with a
/// bit-identical key.
struct ShardStream {
    state: StreamState,
    /// The settled top: current (stamp-validated) and affordable at settle
    /// time. `None` once the stream is drained.
    candidate: Option<Entry>,
    pq_pops: u64,
}

/// The backing store of a shard stream.
enum StreamState {
    /// A CELF max-heap: entries go stale and are re-keyed via the staleness
    /// stamps.
    Heap(BinaryHeap<Entry>),
    /// The singleton pool's stream: a cursor over entries pre-sorted in pop
    /// order (descending [`Entry`] order — max key, ties to the smaller id).
    ///
    /// A pool photo shares no stored similarity pair with any other photo
    /// (it forms a singleton interaction component), so its marginal gain
    /// reads only its own coverage, which no other photo's accept can raise
    /// — every other photo's similarity to it is unstored, hence zero. Its
    /// seed key is therefore **exact forever**: no staleness check, no
    /// recomputation, and a sorted cursor pops in exactly the heap's order
    /// with sequential memory access instead of `O(log n)` sift-downs
    /// through a pool-sized heap.
    Frozen { entries: Vec<Entry>, cursor: usize },
}

impl ShardStream {
    /// Advances until the top entry is current (its cached stamp matches;
    /// frozen entries are always current) and affordable, parking it as the
    /// candidate. Photos popped while unaffordable are dropped permanently —
    /// the remaining budget only shrinks, exactly the global loop's drop
    /// rule.
    // phocus-lint: hot-kernel — CELF stream advance; runs once per merge-heap pop
    fn settle(
        &mut self,
        inst: &Instance,
        ev: &Evaluator<'_>,
        ver: &[u32],
        budget: u64,
        rule: GreedyRule,
    ) {
        debug_assert!(self.candidate.is_none());
        match &mut self.state {
            StreamState::Heap(heap) => {
                while let Some(top) = heap.pop() {
                    self.pq_pops += 1;
                    let p = top.photo;
                    if ev.is_selected(p) {
                        continue;
                    }
                    if !ev.fits(p, budget) {
                        continue;
                    }
                    let stamp = ver[p.index()];
                    if top.epoch == stamp {
                        self.candidate = Some(top);
                        return;
                    }
                    let delta = ev.gain(p);
                    heap.push(Entry {
                        key: rule.key(delta, inst.cost(p)),
                        photo: p,
                        epoch: stamp,
                    });
                }
            }
            StreamState::Frozen { entries, cursor } => {
                while let Some(&top) = entries.get(*cursor) {
                    *cursor += 1;
                    self.pq_pops += 1;
                    if ev.is_selected(top.photo) {
                        continue;
                    }
                    if !ev.fits(top.photo, budget) {
                        continue;
                    }
                    self.candidate = Some(top);
                    return;
                }
            }
        }
    }
}

/// A coordinator heap entry: a shard's settled top, keyed for the merged
/// argmax with the same ordering as the global CELF heap (max key, ties to
/// the smaller photo id). Shared with the epoch-replay coordinator in
/// [`crate::incremental`].
pub(crate) struct MergeEntry {
    pub(crate) key: f64,
    pub(crate) photo: PhotoId,
    pub(crate) shard: u32,
}

impl PartialEq for MergeEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.photo == other.photo
    }
}
impl Eq for MergeEntry {}
impl PartialOrd for MergeEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key
            .total_cmp(&other.key)
            .then_with(|| other.photo.cmp(&self.photo))
    }
}

/// A reusable component-sharded solver: decomposes the instance, replays
/// `S₀`, and runs the rule-independent seed sweep **once**, then solves any
/// number of times (e.g. under both greedy rules, as
/// [`main_algorithm_sharded`](crate::main_algorithm_sharded) does).
#[derive(Debug)]
pub struct ShardedSolver<'a> {
    inst: &'a Instance,
    dec: Decomposition,
    /// The shared arena with `S₀` replayed; cloned per solve (the clone
    /// shares the offset/weight layout and copies only the mutable state).
    base: Evaluator<'a>,
    /// Instrumentation already spent building `base` (subtracted from each
    /// solve's reported stats so they count per-solve work only).
    base_stats: EvalStats,
    /// Epoch-0 marginal gains of every unselected affordable photo at the
    /// post-`S₀` state, pre-partitioned by shard with ascending photo id
    /// within each shard. Rule-independent: each solve derives its heap keys
    /// as `rule.key(δ, cost)`, bit-identical to the global seeding.
    seed_by_shard: Vec<Vec<(PhotoId, f64)>>,
    /// The singleton pool's seed entries pre-sorted in pop order, one vector
    /// per greedy rule (indexed by [`rule_index`]). Pool keys are frozen —
    /// see [`StreamState::Frozen`] — so a cold solve memcpys the right
    /// vector instead of re-keying and heapifying the (often largest) shard.
    pool_sorted: Option<[Vec<Entry>; 2]>,
}

/// Index of `rule` into per-rule caches ([`ShardedSolver::pool_sorted`],
/// the epoch layer's transcript caches).
#[inline]
pub(crate) fn rule_index(rule: GreedyRule) -> usize {
    match rule {
        GreedyRule::UnitCost => 0,
        GreedyRule::CostBenefit => 1,
    }
}

impl<'a> ShardedSolver<'a> {
    /// Decomposes `inst` into photo–query components and prepares the shared
    /// post-`S₀` state: the evaluator arena and the seed-gain sweep (one
    /// parallel batch through `par-exec`).
    pub fn new(inst: &'a Instance) -> Self {
        Self::build(inst, &mut EvalArena::new())
    }

    /// [`new`](Self::new) drawing the base evaluator's buffers from
    /// `scratch`. Bit-identical preparation; pair with
    /// [`recycle`](Self::recycle) to return the buffers afterwards.
    pub fn new_in(inst: &'a Instance, scratch: &mut SolveScratch) -> Self {
        Self::build(inst, &mut scratch.base_eval)
    }

    /// [`new_in`](Self::new_in) with the component labeling precomputed —
    /// resident labels from the epoch layer or labels bulk-read from a
    /// `phocus-pack` file skip the union-find pass of [`decompose`]. The
    /// labels must equal `shard_labels(inst)` (the pack writer derives them
    /// exactly so); everything downstream is bit-identical to
    /// [`new`](Self::new).
    pub fn new_in_with_labels(
        inst: &'a Instance,
        labels: ShardLabels,
        scratch: &mut SolveScratch,
    ) -> Self {
        Self::build_with(inst, decompose_with_labels(inst, labels), &mut scratch.base_eval)
    }

    fn build(inst: &'a Instance, arena: &mut EvalArena) -> Self {
        Self::build_with(inst, decompose(inst), arena)
    }

    fn build_with(inst: &'a Instance, dec: Decomposition, arena: &mut EvalArena) -> Self {
        let mut base = Evaluator::new_in(inst, arena);
        for &p in inst.required() {
            base.add(p);
        }
        // The seed sweep covers *every* unselected photo, not just the ones
        // affordable under the instance budget: affordability is applied at
        // stream-build time against the budget of each individual solve, so
        // one prepared solver serves a whole budget sweep
        // ([`solve_with_budget`](Self::solve_with_budget)) and the epoch
        // layer's replay caches stay valid across budget changes.
        let candidates: Vec<PhotoId> = (0..inst.num_photos() as u32)
            .map(PhotoId)
            .filter(|&p| !base.is_selected(p))
            .collect(); // phocus-lint: allow(alloc-hot) — stream construction, once per run, not the pop loop
        let gains = base.batch_gains(&candidates);
        // phocus-lint: allow(alloc-hot) — stream construction, once per run
        let mut seed_by_shard: Vec<Vec<(PhotoId, f64)>> = vec![Vec::new(); dec.num_shards()];
        for (&p, &delta) in candidates.iter().zip(&gains) {
            seed_by_shard[dec.shard_of(p)].push((p, delta));
        }
        let base_stats = base.stats();
        let pool_sorted = dec.singleton_pool().map(|pool| {
            [GreedyRule::UnitCost, GreedyRule::CostBenefit].map(|rule| {
                let mut entries: Vec<Entry> = seed_by_shard[pool]
                    .iter()
                    .map(|&(p, delta)| Entry {
                        key: rule.key(delta, inst.cost(p)),
                        photo: p,
                        epoch: 0,
                    })
                    .collect(); // phocus-lint: allow(alloc-hot) — pool seed sort, once per run
                entries.sort_unstable_by(|a, b| b.cmp(a));
                entries
            })
        });
        ShardedSolver {
            inst,
            dec,
            base,
            base_stats,
            seed_by_shard,
            pool_sorted,
        }
    }

    /// The underlying component decomposition.
    pub fn decomposition(&self) -> &Decomposition {
        &self.dec
    }

    /// Sharded equivalent of [`lazy_greedy`](crate::lazy_greedy).
    pub fn solve(&self, rule: GreedyRule) -> GreedyOutcome {
        self.solve_inner(None, rule, None, self.inst.budget())
    }

    /// [`solve`](Self::solve) under an arbitrary budget `B'` instead of the
    /// instance's own: bit-identical to solving `inst.with_budget(B')` from
    /// scratch, but reusing this solver's decomposition, `S₀` replay and
    /// seed sweep (all budget-independent). This is what lets a sorted
    /// budget sweep — [`quality_curve`](crate::quality_curve) — prepare the
    /// sharded decomposition once.
    pub fn solve_with_budget(&self, rule: GreedyRule, budget: u64) -> GreedyOutcome {
        self.solve_inner(None, rule, None, budget)
    }

    /// Sharded equivalent of [`lazy_greedy_from`](crate::lazy_greedy_from):
    /// resumes from an arbitrary initial selection. The cached seed gains do
    /// not apply to a warm start (they were computed at the post-`S₀` state),
    /// so this path pays its own seed sweep, like the global solver.
    pub fn solve_from(&self, initial: &[PhotoId], rule: GreedyRule) -> GreedyOutcome {
        self.solve_inner(Some(initial), rule, None, self.inst.budget())
    }

    /// [`solve`](Self::solve) drawing every per-solve allocation (evaluator
    /// clone, stream entry buffers, staleness stamps, change list) from
    /// `scratch`, and returning the capacity there afterwards. Bit-identical
    /// to `solve` — see [`SolveScratch`].
    pub fn solve_scratch(&self, rule: GreedyRule, scratch: &mut SolveScratch) -> GreedyOutcome {
        self.solve_inner(None, rule, Some(scratch), self.inst.budget())
    }

    /// Returns the prepared base evaluator's buffers to `scratch` for the
    /// next tenant. Call after the last solve against this solver.
    pub fn recycle(self, scratch: &mut SolveScratch) {
        self.base.recycle(&mut scratch.base_eval);
    }

    fn solve_inner(
        &self,
        initial: Option<&[PhotoId]>,
        rule: GreedyRule,
        mut scratch: Option<&mut SolveScratch>,
        budget: u64,
    ) -> GreedyOutcome {
        let start = Instant::now(); // phocus-lint: allow(wall-clock) — fills the reported timing field only
        let inst = self.inst;
        let dec = &self.dec;
        let mut ev = match scratch.as_deref_mut() {
            Some(sc) => self.base.clone_in(&mut sc.solve_eval),
            None => self.base.clone(),
        };

        // The per-shard seed gains: the prepared sweep for a cold solve, or
        // a fresh sweep at the warm-started state. Either way the entries
        // within a shard are in ascending photo id, mirroring the global
        // seeding scan order.
        let warm_seeds: Option<Vec<Vec<(PhotoId, f64)>>> = initial.map(|init| {
            for &p in init {
                ev.add(p);
            }
            let candidates: Vec<PhotoId> = (0..inst.num_photos() as u32)
                .map(PhotoId)
                .filter(|&p| !ev.is_selected(p) && ev.fits(p, budget))
                .collect();
            let gains = ev.batch_gains(&candidates);
            let mut by_shard = vec![Vec::new(); dec.num_shards()];
            for (&p, &delta) in candidates.iter().zip(&gains) {
                by_shard[dec.shard_of(p)].push((p, delta));
            }
            by_shard
        });
        let seeds = warm_seeds.as_ref().unwrap_or(&self.seed_by_shard);

        // Build the per-shard streams. `make_stream` writes into a caller-
        // provided buffer (empty on the fresh-allocation path, recycled on
        // the scratch path) with identical entry values either way; with a
        // scratch the shards are built serially so the recycled buffers can
        // rotate through, without one they fan out through par-exec. Pop
        // order is fully determined by the entry ordering, so all three
        // paths are transcript-identical.
        let pool = dec.singleton_pool();
        // The prepared seeds cover every unselected photo; affordability is
        // applied here against *this solve's* budget. At stream-build time
        // the evaluator holds exactly the state the seeds were swept at
        // (post-`S₀`, or the warm start), so `ev.fits` reproduces the filter
        // the global seeding applies, for any budget.
        let seed_ref = &ev;
        let make_stream = |s: usize, mut buf: Vec<Entry>| -> ShardStream {
            buf.clear();
            if Some(s) == pool {
                // Frozen pool stream: reuse the pre-sorted entries on the
                // cold path; a warm start re-keys at the warm state (pool
                // keys are frozen from the seed sweep on, whatever the
                // initial selection) and sorts into pop order. Filtering the
                // pre-sorted entries preserves their pop order.
                match (&self.pool_sorted, initial.is_none()) {
                    (Some(per_rule), true) => {
                        buf.extend(
                            per_rule[rule_index(rule)]
                                .iter()
                                .filter(|e| seed_ref.fits(e.photo, budget))
                                .copied(),
                        );
                    }
                    _ => {
                        buf.extend(seeds[s].iter().filter_map(|&(p, delta)| {
                            seed_ref.fits(p, budget).then_some(Entry {
                                key: rule.key(delta, inst.cost(p)),
                                photo: p,
                                epoch: 0,
                            })
                        }));
                        buf.sort_unstable_by(|a, b| b.cmp(a));
                    }
                }
                return ShardStream {
                    state: StreamState::Frozen {
                        entries: buf,
                        cursor: 0,
                    },
                    candidate: None,
                    pq_pops: 0,
                };
            }
            buf.extend(seeds[s].iter().filter_map(|&(p, delta)| {
                seed_ref.fits(p, budget).then_some(Entry {
                    key: rule.key(delta, inst.cost(p)),
                    photo: p,
                    epoch: 0,
                })
            }));
            ShardStream {
                state: StreamState::Heap(BinaryHeap::from(buf)),
                candidate: None,
                pq_pops: 0,
            }
        };
        let mut streams: Vec<ShardStream> = match scratch.as_deref_mut() {
            Some(sc) => (0..dec.num_shards())
                .map(|s| make_stream(s, sc.entries.pop().unwrap_or_default()))
                .collect(),
            None => par_exec::par_map_indexed(dec.num_shards(), |s| make_stream(s, Vec::new())),
        };

        // Per-photo staleness versions; all zero, matching the epoch-0 seed
        // entries.
        let (mut ver, mut changed) = match scratch.as_deref_mut() {
            Some(sc) => {
                let mut ver = std::mem::take(&mut sc.ver);
                ver.clear();
                ver.resize(inst.num_photos(), 0);
                let mut changed = std::mem::take(&mut sc.changed);
                changed.clear();
                (ver, changed)
            }
            None => (vec![0u32; inst.num_photos()], Vec::new()),
        };

        // The merged frontier: at most one settled candidate per shard.
        let mut merge: BinaryHeap<MergeEntry> = BinaryHeap::new();
        for (s, stream) in streams.iter_mut().enumerate() {
            stream.settle(inst, &ev, &ver, budget, rule);
            if let Some(c) = &stream.candidate {
                merge.push(MergeEntry {
                    key: c.key,
                    photo: c.photo,
                    shard: s as u32, // phocus-lint: allow(cast-bounds) — shard count ≤ photo count, u32 by id width
                });
            }
        }

        let mut merge_pops = 0u64;
        let mut lazy_accepts = 0u64;
        while let Some(top) = merge.pop() {
            merge_pops += 1;
            let s = top.shard as usize;
            streams[s].candidate = None;
            if ev.fits(top.photo, budget) {
                lazy_accepts += 1;
                if Some(s) == pool {
                    // A pool accept raises only its own coverage (no stored
                    // pair links it to anyone), and the frozen pool stream
                    // never reads stamps: no propagation to do.
                    ev.add(top.photo);
                } else {
                    // Accept, then bump the version of every photo whose
                    // gain read-set the add touched.
                    changed.clear();
                    ev.add_tracked(top.photo, |q, j| changed.push((q, j)));
                    propagate_changes(inst, &changed, &mut ver);
                }
            }
            // Otherwise: parked before the budget tightened; global CELF
            // drops such photos at pop time, and they can never fit again.
            streams[s].settle(inst, &ev, &ver, budget, rule);
            if let Some(c) = &streams[s].candidate {
                merge.push(MergeEntry {
                    key: c.key,
                    photo: c.photo,
                    shard: top.shard,
                });
            }
        }

        let st = ev.stats();
        let pq_pops = merge_pops + streams.iter().map(|s| s.pq_pops).sum::<u64>();
        let outcome = GreedyOutcome {
            score: ev.score(),
            cost: ev.cost(),
            selected: ev.selected_ids().to_vec(),
            stats: RunStats {
                // Per-solve work only: the prepared `S₀` replay and seed
                // sweep are amortized across solves and not re-counted.
                gain_evals: st.gain_evals - self.base_stats.gain_evals,
                sim_ops: st.sim_ops - self.base_stats.sim_ops,
                pq_pops,
                lazy_accepts,
                elapsed: start.elapsed(),
            },
        };
        if let Some(sc) = scratch {
            ev.recycle(&mut sc.solve_eval);
            sc.ver = ver;
            sc.changed = changed;
            for stream in streams {
                let buf = match stream.state {
                    StreamState::Heap(heap) => heap.into_vec(),
                    StreamState::Frozen { entries, .. } => entries,
                };
                sc.entries.push(buf);
            }
        }
        outcome
    }
}

/// Bumps the staleness version of every photo whose gain read-set an accept
/// touched, given the coverage changes [`Evaluator::add_tracked`] reported
/// (grouped by subset, in report order).
///
/// Per changed subset the cheaper propagation wins: walk the changed
/// members' stored rows — a gain reads exactly its own and its stored
/// neighbors' coverage — or, when those rows are longer than the context
/// (or the context is dense/unit, where one change dirties every member),
/// bump every member once. Both mark a superset of the affected photos, so
/// invalidation never costs more than O(|q|) per changed context. Shared by
/// the prepared solver and the epoch-replay coordinator in
/// [`crate::incremental`].
pub(crate) fn propagate_changes(inst: &Instance, changed: &[(SubsetId, u32)], ver: &mut [u32]) {
    let mut i = 0;
    while i < changed.len() {
        let q = changed[i].0;
        let mut end = i + 1;
        while end < changed.len() && changed[end].0 == q {
            end += 1;
        }
        let group = &changed[i..end];
        let members = &inst.subset(q).members;
        let precise = match inst.sim(q) {
            ContextSim::Sparse(sp) => {
                let walk: usize = group
                    .iter()
                    .map(|&(_, j)| sp.neighbors(j as usize).0.len() + 1)
                    .sum();
                (walk < members.len()).then_some(sp)
            }
            _ => None,
        };
        match precise {
            Some(sp) => {
                for &(_, j) in group {
                    let m = members[j as usize].index();
                    ver[m] = ver[m].wrapping_add(1);
                    for &k in sp.neighbors(j as usize).0 {
                        let n = members[k as usize].index();
                        ver[n] = ver[n].wrapping_add(1);
                    }
                }
            }
            None => {
                for &m in members {
                    ver[m.index()] = ver[m.index()].wrapping_add(1);
                }
            }
        }
        i = end;
    }
}

/// Runs the component-sharded CELF on `inst` with its budget. Bit-identical
/// transcript to [`lazy_greedy`](crate::lazy_greedy), faster on instances
/// with more than one component.
pub fn sharded_lazy_greedy(inst: &Instance, rule: GreedyRule) -> GreedyOutcome {
    ShardedSolver::new(inst).solve(rule)
}

/// [`sharded_lazy_greedy`] resuming from an arbitrary initial selection;
/// bit-identical to [`lazy_greedy_from`](crate::lazy_greedy_from).
pub fn sharded_lazy_greedy_from(
    inst: &Instance,
    initial: &[PhotoId],
    rule: GreedyRule,
) -> GreedyOutcome {
    ShardedSolver::new(inst).solve_from(initial, rule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lazy_greedy;
    use crate::lazy_greedy_from;
    use par_core::fixtures::{figure1_instance, random_instance, RandomInstanceConfig, MB};

    fn assert_transcripts_match(inst: &Instance) {
        for rule in [GreedyRule::UnitCost, GreedyRule::CostBenefit] {
            let global = lazy_greedy(inst, rule);
            let sharded = sharded_lazy_greedy(inst, rule);
            assert_eq!(sharded.selected, global.selected, "selection diverged ({rule:?})");
            assert_eq!(
                sharded.score.to_bits(),
                global.score.to_bits(),
                "score bits diverged ({rule:?}): {} vs {}",
                sharded.score,
                global.score
            );
            assert_eq!(sharded.cost, global.cost);
        }
    }

    #[test]
    fn figure1_transcripts_match() {
        for budget in [2 * MB, 3 * MB, 4 * MB, u64::MAX] {
            assert_transcripts_match(&figure1_instance(budget));
        }
    }

    #[test]
    fn dense_and_sparse_random_transcripts_match() {
        for seed in 0..4 {
            let inst = random_instance(seed, &RandomInstanceConfig::default());
            assert_transcripts_match(&inst);
            assert_transcripts_match(&inst.sparsify(0.8));
            assert_transcripts_match(&inst.with_unit_sims());
        }
    }

    #[test]
    fn required_photos_and_tight_budgets_match() {
        let cfg = RandomInstanceConfig {
            photos: 60,
            subsets: 15,
            required_prob: 0.1,
            budget_fraction: 0.25,
            ..Default::default()
        };
        for seed in 0..4 {
            let inst = random_instance(seed, &cfg);
            assert_transcripts_match(&inst.sparsify(0.85));
        }
    }

    #[test]
    fn warm_start_matches_lazy_greedy_from() {
        let inst = random_instance(11, &RandomInstanceConfig::default()).sparsify(0.8);
        // Warm-start from the first few CB picks (a superset of S₀).
        let warm = lazy_greedy(&inst, GreedyRule::CostBenefit);
        let initial: Vec<PhotoId> = warm.selected.iter().copied().take(4).collect();
        for rule in [GreedyRule::UnitCost, GreedyRule::CostBenefit] {
            let global = lazy_greedy_from(&inst, &initial, rule);
            let sharded = sharded_lazy_greedy_from(&inst, &initial, rule);
            assert_eq!(sharded.selected, global.selected);
            assert_eq!(sharded.score.to_bits(), global.score.to_bits());
        }
    }

    #[test]
    fn scratch_solve_is_bit_identical_across_reused_tenants() {
        // One scratch, several differently shaped "tenants" in sequence:
        // each prepare + solve through the dirty scratch must match the
        // fresh-allocation path bit for bit.
        let mut scratch = SolveScratch::new();
        let tenants = [
            random_instance(3, &RandomInstanceConfig::default()),
            random_instance(
                9,
                &RandomInstanceConfig {
                    photos: 40,
                    subsets: 8,
                    budget_fraction: 0.3,
                    ..Default::default()
                },
            )
            .sparsify(0.8),
            figure1_instance(3 * MB),
        ];
        for inst in &tenants {
            for rule in [GreedyRule::UnitCost, GreedyRule::CostBenefit] {
                let fresh_solver = ShardedSolver::new(inst);
                let fresh = fresh_solver.solve(rule);
                let solver = ShardedSolver::new_in(inst, &mut scratch);
                let reused = solver.solve_scratch(rule, &mut scratch);
                solver.recycle(&mut scratch);
                assert_eq!(reused.selected, fresh.selected, "selection ({rule:?})");
                assert_eq!(reused.score.to_bits(), fresh.score.to_bits());
                assert_eq!(reused.cost, fresh.cost);
                assert_eq!(reused.stats.gain_evals, fresh.stats.gain_evals);
                assert_eq!(reused.stats.pq_pops, fresh.stats.pq_pops);
            }
        }
        assert!(
            !scratch.entries.is_empty(),
            "solve_scratch must return entry buffers for reuse"
        );
    }

    #[test]
    fn main_algorithm_scratch_matches_sharded() {
        let mut scratch = SolveScratch::new();
        for seed in 0..3 {
            let inst = random_instance(seed, &RandomInstanceConfig::default()).sparsify(0.85);
            let fresh = crate::main_algorithm_sharded(&inst);
            let reused = crate::main_algorithm_scratch(&inst, &mut scratch);
            assert_eq!(reused.best.selected, fresh.best.selected);
            assert_eq!(reused.best.score.to_bits(), fresh.best.score.to_bits());
            assert_eq!(reused.winner, fresh.winner);
        }
    }

    #[test]
    fn solve_with_budget_matches_rebuilt_solver() {
        // One prepared solver swept over many budgets must match a solver
        // prepared per budget (and hence, transitively, the global CELF).
        let inst = random_instance(17, &RandomInstanceConfig::default()).sparsify(0.8);
        let solver = ShardedSolver::new(&inst);
        let lo = inst.required_cost();
        let hi = inst.total_cost();
        for step in 0..6u64 {
            let budget = lo + (hi - lo) * step / 5;
            let scoped = inst.with_budget(budget).unwrap();
            let fresh_solver = ShardedSolver::new(&scoped);
            for rule in [GreedyRule::UnitCost, GreedyRule::CostBenefit] {
                let swept = solver.solve_with_budget(rule, budget);
                let fresh = fresh_solver.solve(rule);
                assert_eq!(swept.selected, fresh.selected, "budget {budget} ({rule:?})");
                assert_eq!(swept.score.to_bits(), fresh.score.to_bits());
                assert_eq!(swept.cost, fresh.cost);
            }
        }
    }

    #[test]
    fn sharded_recomputes_less_on_multi_component_instances() {
        let inst = random_instance(5, &RandomInstanceConfig::default()).sparsify(0.85);
        let solver = ShardedSolver::new(&inst);
        if solver.decomposition().num_shards() < 2 {
            return; // nothing to save on a single component
        }
        let global = lazy_greedy(&inst, GreedyRule::CostBenefit);
        let sharded = solver.solve(GreedyRule::CostBenefit);
        assert!(
            sharded.stats.gain_evals <= global.stats.gain_evals,
            "sharded {} vs global {}",
            sharded.stats.gain_evals,
            global.stats.gain_evals
        );
    }
}
