//! Architecture rules: the declared crate DAG and the `parallel` feature
//! boundary.
//!
//! The declared DAG below is the machine-checked form of DESIGN.md §3
//! ("Dependency edges (bottom-up)"). Adding a crate or an edge is a
//! deliberate act: extend the table here in the same PR, and the diff shows
//! the layering change explicitly. An edge in a `Cargo.toml` that the table
//! does not sanction fails CI with the manifest line in the span.

use crate::context::{CrateCategory, FileContext};
use crate::diag::Diagnostic;
use crate::manifest::CrateManifest;

/// Offline dependency shims under `crates/vendor/`, allowed everywhere.
/// (`scoped-pool` is deliberately *not* here: the worker-pool backend is an
/// explicit par-exec-only edge in the DAG, mirroring how
/// `cfg(feature = "parallel")` is confined to par-exec.)
pub const VENDOR_SHIMS: &[&str] = &["rand", "proptest", "criterion"];

const ALL_LIBS: &[&str] = &[
    "par-core",
    "par-embed",
    "par-lsh",
    "par-search",
    "par-algo",
    "par-sparse",
    "par-datasets",
    "phocus",
    "par-study",
    "par-exec",
];

/// The declared crate DAG: every internal dependency each crate may have.
/// `None` means the crate is unknown — it must be added here (with its
/// layer) before the workspace accepts it.
pub fn declared_deps(name: &str) -> Option<&'static [&'static str]> {
    Some(match name {
        // Leaves.
        "par-search" | "par-lint" => &[],
        "rand" | "proptest" | "criterion" | "scoped-pool" => &[],
        // The one crate allowed to hold the worker-pool backend (and the
        // `parallel` feature gate).
        "par-exec" => &["scoped-pool"],
        // Model and substrates.
        "par-core" => &["par-exec"],
        "par-embed" => &["par-core"],
        "par-lsh" => &["par-exec"],
        // Solvers over the model.
        "par-algo" => &["par-core", "par-exec"],
        "par-sparse" => &["par-core", "par-algo", "par-exec"],
        // Data and the end-to-end system.
        "par-datasets" => &["par-core", "par-embed", "par-search"],
        "phocus" => &[
            "par-core",
            "par-embed",
            "par-lsh",
            "par-search",
            "par-algo",
            "par-sparse",
            "par-datasets",
            "par-exec",
        ],
        "par-study" => &["par-core", "par-algo", "par-datasets", "phocus"],
        // Harnesses may see everything.
        "par-bench" | "par-examples" | "integration-tests" => ALL_LIBS,
        _ => return None,
    })
}

/// `crate-dag`: validates one crate's manifest edges against the declared
/// DAG. `manifest_path` is used verbatim in diagnostics.
pub fn check_dag(manifest_path: &str, m: &CrateManifest, out: &mut Vec<Diagnostic>) {
    let Some(allowed) = declared_deps(&m.name) else {
        out.push(Diagnostic {
            rule: "crate-dag",
            path: manifest_path.to_string(),
            line: 1,
            col: 1,
            message: format!(
                "crate `{}` is not in the declared crate DAG \
                 (crates/lint/src/rules/architecture.rs); declare its layer \
                 and allowed dependencies there",
                m.name
            ),
        });
        return;
    };
    for dep in &m.deps {
        if VENDOR_SHIMS.contains(&dep.name.as_str()) || allowed.contains(&dep.name.as_str()) {
            continue;
        }
        out.push(Diagnostic {
            rule: "crate-dag",
            path: manifest_path.to_string(),
            line: dep.line,
            col: 1,
            message: format!(
                "dependency edge `{}` -> `{}` violates the declared crate DAG \
                 (allowed: {:?}); layering changes must update the declared \
                 table in the same PR",
                m.name, dep.name, allowed
            ),
        });
    }
}

/// `parallel-cfg`: the `parallel` feature gate may only be *tested* inside
/// `par-exec` — every other crate forwards the feature in its manifest and
/// calls `par_exec` kernels that fall back to serial. A stray
/// `#[cfg(feature = "parallel")]` elsewhere forks behavior outside the
/// audited serial/parallel equivalence boundary.
pub fn parallel_cfg(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.spec.crate_name == "par-exec" || ctx.spec.category == CrateCategory::Vendor {
        return;
    }
    let code = &ctx.code;
    for i in 0..code.len() {
        let t = &code[i];
        if t.is_ident("feature")
            && i + 2 < code.len()
            && code[i + 1].is_punct('=')
            && code[i + 2].text.contains("parallel")
        {
            ctx.emit(
                out,
                "parallel-cfg",
                t.line,
                t.col,
                "`cfg(feature = \"parallel\")` is confined to par-exec: other \
                 crates must forward the feature in Cargo.toml and call \
                 par_exec kernels (which fall back to serial), so the \
                 serial/parallel equivalence stays auditable in one place"
                    .to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::parse_crate_manifest;

    #[test]
    fn legal_edge_passes() {
        let m = parse_crate_manifest(
            "[package]\nname = \"par-algo\"\n[dependencies]\npar-core = { workspace = true }\nrand = { workspace = true }\n",
        );
        let mut out = Vec::new();
        check_dag("crates/algo/Cargo.toml", &m, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn inverted_edge_fails_with_span() {
        let m = parse_crate_manifest(
            "[package]\nname = \"par-core\"\n[dependencies]\npar-algo = { workspace = true }\n",
        );
        let mut out = Vec::new();
        check_dag("crates/core/Cargo.toml", &m, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "crate-dag");
        assert_eq!(out[0].line, 4);
        assert!(out[0].message.contains("par-core"));
    }

    #[test]
    fn unknown_crate_must_declare_its_layer() {
        let m = parse_crate_manifest("[package]\nname = \"par-new-thing\"\n");
        let mut out = Vec::new();
        check_dag("crates/new/Cargo.toml", &m, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("declare its layer"));
    }
}
