//! Typed errors for LSH parameter planning.

use std::fmt;

/// Errors raised when planning a banded SimHash configuration.
///
/// Part of the workspace-wide `PhocusError` hierarchy: `phocus::PhocusError`
/// wraps [`LshError`] via `From`, so a bad sparsification threshold surfaces
/// to the CLI as a diagnostic instead of a panic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LshError {
    /// The recall target is outside `(0, 1]` (or NaN).
    InvalidRecall(f64),
    /// The similarity threshold `τ` is outside `[-1, 1]` (or NaN) — it must
    /// be a cosine value.
    InvalidTau(f64),
}

impl fmt::Display for LshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LshError::InvalidRecall(r) => {
                write!(f, "LSH recall target {r} is not in (0, 1]")
            }
            LshError::InvalidTau(t) => {
                write!(f, "similarity threshold τ = {t} is not a cosine in [-1, 1]")
            }
        }
    }
}

impl std::error::Error for LshError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offending_value() {
        assert!(LshError::InvalidRecall(1.5).to_string().contains("1.5"));
        assert!(LshError::InvalidTau(-2.0).to_string().contains("-2"));
    }
}
