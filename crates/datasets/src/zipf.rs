//! A seeded Zipf sampler over `{0, …, n−1}`.
//!
//! Item `k` (0-based rank) has probability proportional to `1/(k+1)^s`.
//! Sampling is by binary search over the precomputed CDF — `O(log n)` per
//! draw, exact, and dependency-free.

use crate::error::DatasetError;
use rand::Rng;

/// A Zipf distribution over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution with `n` items and exponent `s ≥ 0`
    /// (`s = 0` is uniform; larger `s` concentrates mass on low ranks).
    ///
    /// Returns [`DatasetError::InvalidZipf`] if the parameters yield a
    /// cumulative distribution that is not finite and strictly increasing —
    /// zero items, a non-finite or negative exponent, or an exponent so large
    /// that tail masses underflow to zero. A NaN in the CDF would otherwise
    /// silently mis-bucket every binary-searched draw.
    pub fn new(n: usize, s: f64) -> Result<Self, DatasetError> {
        if n == 0 {
            return Err(DatasetError::InvalidZipf {
                index: 0,
                value: f64::NAN,
            });
        }
        if !(s >= 0.0 && s.is_finite()) {
            return Err(DatasetError::InvalidZipf { index: 0, value: s });
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // The normalized CDF must be finite and strictly increasing for
        // binary search to partition `[0, 1)` correctly.
        let mut prev = 0.0f64;
        for (index, &value) in cdf.iter().enumerate() {
            if !value.is_finite() || value <= prev {
                return Err(DatasetError::InvalidZipf { index, value });
            }
            prev = value;
        }
        Ok(Zipf { cdf })
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is degenerate (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.1).unwrap();
        let sum: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(1000, 1.0).unwrap();
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(100));
        // Rank-0 mass ≈ 1/H_1000 ≈ 0.133.
        assert!(z.pmf(0) > 0.1);
    }

    #[test]
    fn s_zero_is_uniform() {
        let z = Zipf::new(10, 0.0).unwrap();
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_matches_pmf_roughly() {
        let z = Zipf::new(50, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0usize; 50];
        let draws = 100_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        // Empirical frequency of rank 0 within 10% of pmf.
        let freq0 = counts[0] as f64 / draws as f64;
        assert!((freq0 - z.pmf(0)).abs() < 0.1 * z.pmf(0) + 0.005);
        // All draws in range.
        assert_eq!(counts.iter().sum::<usize>(), draws);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(matches!(
            Zipf::new(0, 1.0),
            Err(DatasetError::InvalidZipf { .. })
        ));
        assert!(Zipf::new(10, f64::NAN).is_err());
        assert!(Zipf::new(10, f64::INFINITY).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        // Exponent large enough that every tail term underflows: the CDF
        // stalls at 1.0 and stops strictly increasing.
        assert!(Zipf::new(10, 2000.0).is_err());
    }
}
