//! Banded LSH tables: bucket signatures band by band and emit candidate
//! pairs that collide in at least one band.

use crate::simhash::Signature;
use std::collections::HashMap;

/// A banded index over a set of signatures.
///
/// Band `k` uses signature bits `[k·rows, (k+1)·rows)`. Two items are
/// *candidates* if they share a bucket in any band. `for_candidate_pairs`
/// deduplicates pairs across bands.
#[derive(Debug)]
pub struct LshIndex {
    /// Per band: bucket key → item indices.
    tables: Vec<HashMap<u64, Vec<u32>>>,
    num_items: usize,
}

impl LshIndex {
    /// Builds the index. Signatures must have at least `rows · bands` bits.
    pub fn build(signatures: &[Signature], rows: usize, bands: usize) -> Self {
        assert!((1..=64).contains(&rows), "rows must fit a u64 band key");
        if let Some(s) = signatures.first() {
            assert!(
                s.len() >= rows * bands,
                "signatures too short: {} < {}",
                s.len(),
                rows * bands
            );
        }
        // Bands are independent: build each band's table on its own worker.
        // Within a band the items are inserted in index order, so every
        // bucket's contents are identical to a serial build.
        let tables: Vec<HashMap<u64, Vec<u32>>> = par_exec::par_map_indexed(bands, |k| {
            let mut table: HashMap<u64, Vec<u32>> = HashMap::new();
            for (i, sig) in signatures.iter().enumerate() {
                let key = sig.band_key(k * rows, rows);
                table.entry(key).or_default().push(i as u32);
            }
            table
        });
        LshIndex {
            tables,
            num_items: signatures.len(),
        }
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.num_items
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.num_items == 0
    }

    /// Calls `f(i, j)` (with `i < j`) once for every candidate pair.
    ///
    /// Pairs colliding in several bands are deduplicated by collecting the
    /// packed keys and sort-deduping — substantially faster than hashing
    /// each occurrence when buckets are large.
    pub fn for_candidate_pairs(&self, mut f: impl FnMut(u32, u32)) {
        let mut keys: Vec<u64> = Vec::new();
        for table in &self.tables {
            // phocus-lint: allow(hash-iter) — pair keys are sort-deduped below, so bucket order cannot reach the caller
            for bucket in table.values() {
                if bucket.len() < 2 {
                    continue;
                }
                for (a_pos, &a) in bucket.iter().enumerate() {
                    for &b in &bucket[a_pos + 1..] {
                        let (i, j) = if a < b { (a, b) } else { (b, a) };
                        keys.push(((i as u64) << 32) | j as u64);
                    }
                }
            }
        }
        keys.sort_unstable();
        keys.dedup();
        for k in keys {
            f((k >> 32) as u32, k as u32);
        }
    }

    /// Total number of candidate pairs (after deduplication).
    pub fn num_candidate_pairs(&self) -> usize {
        let mut n = 0;
        self.for_candidate_pairs(|_, _| n += 1);
        n
    }

    /// The largest bucket size across all bands — a skew diagnostic: huge
    /// buckets degrade LSH toward quadratic behavior.
    pub fn max_bucket(&self) -> usize {
        self.tables
            .iter()
            .flat_map(|t| t.values())
            .map(|b| b.len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simhash::SimHasher;

    fn cluster_vectors() -> Vec<Vec<f32>> {
        // Two well-separated clusters of 4.
        let mut v = Vec::new();
        for k in 0..4 {
            v.push(vec![1.0, 0.01 * k as f32, 0.0]);
        }
        for k in 0..4 {
            v.push(vec![-0.01 * k as f32, 0.0, 1.0]);
        }
        v
    }

    #[test]
    fn within_cluster_pairs_are_candidates() {
        let vecs = cluster_vectors();
        let h = SimHasher::new(3, 64, 5);
        let sigs: Vec<_> = vecs.iter().map(|v| h.sign(v)).collect();
        let idx = LshIndex::build(&sigs, 4, 16);
        let mut candidates = std::collections::HashSet::new();
        idx.for_candidate_pairs(|i, j| {
            candidates.insert((i, j));
        });
        // Each cluster has 6 internal pairs; nearly-identical vectors share
        // nearly-identical signatures, so all must be candidates.
        for c in 0..2u32 {
            for a in 0..4u32 {
                for b in (a + 1)..4 {
                    let pair = (c * 4 + a, c * 4 + b);
                    assert!(candidates.contains(&pair), "missing pair {pair:?}");
                }
            }
        }
    }

    #[test]
    fn pairs_are_deduplicated() {
        let vecs = [vec![1.0f32, 0.0], vec![1.0, 0.0]];
        let h = SimHasher::new(2, 64, 6);
        let sigs: Vec<_> = vecs.iter().map(|v| h.sign(v)).collect();
        // Identical vectors collide in every band; pair must appear once.
        let idx = LshIndex::build(&sigs, 4, 16);
        assert_eq!(idx.num_candidate_pairs(), 1);
    }

    #[test]
    fn empty_index() {
        let sigs: Vec<Signature> = Vec::new();
        let idx = LshIndex::build(&sigs, 4, 8);
        assert!(idx.is_empty());
        assert_eq!(idx.num_candidate_pairs(), 0);
        assert_eq!(idx.max_bucket(), 0);
    }

    #[test]
    fn max_bucket_reports_skew() {
        let vecs: Vec<Vec<f32>> = std::iter::repeat_with(|| vec![1.0f32, 0.0])
            .take(10)
            .collect();
        let h = SimHasher::new(2, 64, 8);
        let sigs: Vec<_> = vecs.iter().map(|v| h.sign(v)).collect();
        let idx = LshIndex::build(&sigs, 4, 16);
        assert_eq!(idx.max_bucket(), 10);
    }
}
