//! # par-search — a small inverted-index BM25 search engine
//!
//! The paper's e-commerce pipeline (Example 5.1) derives the pre-defined
//! subsets `Q` from search queries: each landing page is the result set of a
//! popular query, and the relevance scores `R` come from the engine's
//! retrieval scores. This crate is that engine, built from scratch:
//!
//! * [`tokenize()`](tokenize::tokenize) — lowercasing alphanumeric tokenizer with a small stopword
//!   list;
//! * [`index`] — an inverted index with per-term postings and document
//!   lengths;
//! * [`bm25`] — Okapi BM25 scoring;
//! * [`SearchEngine`] — build over a corpus of documents, run ranked
//!   queries, obtain `(doc, score)` lists that PHOcus converts into subsets
//!   and relevance scores.

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod bm25;
pub mod index;
pub mod tokenize;

pub use bm25::Bm25Params;
pub use index::InvertedIndex;
pub use tokenize::tokenize;

/// A ranked retrieval result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Document id (position in the corpus passed to [`SearchEngine::build`]).
    pub doc: u32,
    /// BM25 retrieval score (positive).
    pub score: f64,
}

/// A BM25 search engine over an in-memory corpus.
#[derive(Debug)]
pub struct SearchEngine {
    index: InvertedIndex,
    params: Bm25Params,
}

impl SearchEngine {
    /// Builds the engine over a corpus; document ids are corpus positions.
    pub fn build(corpus: &[impl AsRef<str>]) -> Self {
        SearchEngine {
            index: InvertedIndex::build(corpus),
            params: Bm25Params::default(),
        }
    }

    /// Builds with custom BM25 parameters.
    pub fn with_params(corpus: &[impl AsRef<str>], params: Bm25Params) -> Self {
        SearchEngine {
            index: InvertedIndex::build(corpus),
            params,
        }
    }

    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        self.index.num_docs()
    }

    /// Runs a ranked query, returning up to `limit` hits with positive BM25
    /// scores, best first. Ties are broken by ascending document id so
    /// results are fully deterministic.
    pub fn search(&self, query: &str, limit: usize) -> Vec<Hit> {
        let terms = tokenize(query);
        let mut scores: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        for term in &terms {
            if let Some(postings) = self.index.postings(term) {
                let idf = bm25::idf(self.index.num_docs(), postings.len());
                for &(doc, tf) in postings {
                    let dl = self.index.doc_len(doc);
                    let s = bm25::score_term(tf, dl, self.index.avg_doc_len(), idf, &self.params);
                    *scores.entry(doc).or_insert(0.0) += s;
                }
            }
        }
        let mut hits: Vec<Hit> = scores
            .into_iter()
            .filter(|&(_, s)| s > 0.0)
            .map(|(doc, score)| Hit { doc, score })
            .collect();
        hits.sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.doc.cmp(&b.doc)));
        hits.truncate(limit);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<&'static str> {
        vec![
            "black adidas running shoes",
            "red nike running shoes for men",
            "black office chair with wheels",
            "ergonomic office chair black leather",
            "samsung smartphone 128gb black",
            "apple iphone smartphone silver",
            "black dress shirt buttoned",
        ]
    }

    #[test]
    fn search_ranks_relevant_docs_first() {
        let engine = SearchEngine::build(&corpus());
        let hits = engine.search("office chair", 10);
        assert!(hits.len() >= 2);
        let top2: Vec<u32> = hits[..2].iter().map(|h| h.doc).collect();
        assert!(top2.contains(&2) && top2.contains(&3), "top2 {top2:?}");
    }

    #[test]
    fn rare_terms_outweigh_common_terms() {
        let engine = SearchEngine::build(&corpus());
        // "black" appears in 5 docs, "iphone" in 1: the iphone doc must beat
        // black-only matches for "black iphone".
        let hits = engine.search("black iphone", 10);
        assert_eq!(hits[0].doc, 5);
    }

    #[test]
    fn no_match_returns_empty() {
        let engine = SearchEngine::build(&corpus());
        assert!(engine.search("bicycle helmet", 10).is_empty());
        assert!(engine.search("", 10).is_empty());
    }

    #[test]
    fn limit_truncates_results() {
        let engine = SearchEngine::build(&corpus());
        let hits = engine.search("black", 2);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn scores_are_positive_and_sorted() {
        let engine = SearchEngine::build(&corpus());
        let hits = engine.search("black running shoes", 10);
        assert!(!hits.is_empty());
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        assert!(hits.iter().all(|h| h.score > 0.0));
    }

    #[test]
    fn deterministic_tie_breaking() {
        let engine = SearchEngine::build(&["shoes socks", "shoes socks"]);
        let hits = engine.search("shoes", 10);
        assert_eq!(hits[0].doc, 0);
        assert_eq!(hits[1].doc, 1);
    }
}
