//! Ablations of PHOcus's design choices, beyond the paper's own figures:
//! contextualization strength, τ-sparsification sweep, the compression
//! extension (the paper's §6 future work), the local-search polish pass,
//! and solver scaling across dataset sizes.

use crate::registry::{dataset, DatasetId, Scale, SEED};
use crate::Series;
use par_algo::{main_algorithm, swap_local_search, LocalSearchConfig};
use par_core::Solution;
use par_sparse::sparsification_bound;
use phocus::{compare_remove_vs_compress, represent, ActionLadder, RepresentationConfig, Sparsification};

/// Contextualization ablation: quality of the PHOcus solution as the
/// attention floor `blend` moves from fully contextual (0) to non-contextual
/// (1), evaluated under the fully-contextual objective. Shows how much of
/// the PHOcus-vs-NCS gap the contextual embeddings buy.
pub fn ablation_context(_scale: Scale) -> Vec<Series> {
    let u = dataset(DatasetId::EcFashion, Scale::Scaled);
    let budget = u.total_cost() / 12;
    // The evaluation objective: the default (blend 0.3) contextual instance.
    let eval = represent(&u, budget, &RepresentationConfig::default()).expect("representation");
    let mut rows = Vec::new();
    for blend in [0.0f32, 0.15, 0.3, 0.5, 0.75, 1.0] {
        let cfg = RepresentationConfig {
            blend,
            ..Default::default()
        };
        let inst = represent(&u, budget, &cfg).expect("representation");
        let sel = main_algorithm(&inst).best.selected;
        let q = Solution::new_unchecked(&eval, sel).score();
        rows.push(Series::new(
            "ablation_context",
            format!("blend={blend}"),
            "quality (true objective)",
            q,
        ));
    }
    rows
}

/// τ sweep: stored pairs, quality (relative to dense), and the Theorem 4.8
/// certificate across thresholds — the tuning table of Section 4.3.
pub fn ablation_tau(_scale: Scale) -> Vec<Series> {
    let u = dataset(DatasetId::P1K, Scale::Scaled);
    let budget = u.total_cost() / 5;
    let dense = represent(&u, budget, &RepresentationConfig::default()).expect("representation");
    let dense_sel = main_algorithm(&dense).best.selected;
    let dense_q = Solution::new_unchecked(&dense, dense_sel).score();
    let dense_pairs = dense.stored_pairs().max(1);

    let mut rows = Vec::new();
    for tau in [0.3, 0.5, 0.6, 0.7, 0.8, 0.9] {
        let cfg = RepresentationConfig {
            sparsification: Sparsification::Lsh {
                tau,
                target_recall: 0.95,
                seed: SEED,
            },
            ..Default::default()
        };
        let sparse = represent(&u, budget, &cfg).expect("representation");
        let sel = main_algorithm(&sparse).best.selected;
        let q = Solution::new_unchecked(&dense, sel).score();
        let cert = sparsification_bound(&dense, tau);
        let x = format!("tau={tau}");
        rows.push(Series::new(
            "ablation_tau",
            x.clone(),
            "stored pairs %",
            100.0 * sparse.stored_pairs() as f64 / dense_pairs as f64,
        ));
        rows.push(Series::new(
            "ablation_tau",
            x.clone(),
            "quality %",
            100.0 * q / dense_q,
        ));
        rows.push(Series::new("ablation_tau", x, "thm4.8 alpha", cert.alpha));
    }
    rows
}

/// The §6 future-work experiment: remove-only vs compression-aware archival
/// at tight budgets. Values: quality and variant counts.
pub fn ablation_compression(_scale: Scale) -> Vec<Series> {
    let u = dataset(DatasetId::P1K, Scale::Scaled);
    let mut rows = Vec::new();
    for (label, divisor) in [("4%", 25u64), ("10%", 10), ("25%", 4)] {
        let budget = u.total_cost() / divisor;
        let cmp = compare_remove_vs_compress(
            &u,
            budget,
            &ActionLadder::standard(),
            &RepresentationConfig::default(),
        )
        .expect("comparison runs");
        rows.push(Series::new(
            "ablation_compression",
            label,
            "remove-only",
            cmp.remove_only,
        ));
        rows.push(Series::new(
            "ablation_compression",
            label,
            "with compression",
            cmp.with_compression,
        ));
        rows.push(Series::new(
            "ablation_compression",
            label,
            "kept compressed",
            cmp.kept_compressed as f64,
        ));
    }
    rows
}

/// Local-search polish: how much a 1-swap pass adds on top of Algorithm 1
/// (and on top of a random solution, for contrast).
pub fn ablation_local_search(_scale: Scale) -> Vec<Series> {
    use rand::SeedableRng;
    let u = dataset(DatasetId::EcElectronics, Scale::Scaled);
    let budget = u.total_cost() / 12;
    let inst = represent(&u, budget, &RepresentationConfig::default()).expect("representation");
    let cfg = LocalSearchConfig::default();

    let greedy = main_algorithm(&inst).best;
    let polished = swap_local_search(&inst, &greedy.selected, &cfg);
    let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
    let random = par_algo::rand_a(&inst, &mut rng);
    let random_q = par_core::exact_score(&inst, &random);
    let random_polished = swap_local_search(&inst, &random, &cfg);

    vec![
        Series::new("ablation_local_search", "greedy", "before", greedy.score),
        Series::new(
            "ablation_local_search",
            "greedy",
            "after 1-swap",
            polished.score,
        ),
        Series::new("ablation_local_search", "random", "before", random_q),
        Series::new(
            "ablation_local_search",
            "random",
            "after 1-swap",
            random_polished.score,
        ),
    ]
}

/// Solver scaling: end-to-end PHOcus vs PHOcus-NS time (seconds) across
/// dataset sizes — the trend behind Figure 5f's hours-vs-minutes story.
pub fn ablation_scaling(scale: Scale) -> Vec<Series> {
    let mut rows = Vec::new();
    let ids: &[DatasetId] = match scale {
        Scale::Scaled => &[DatasetId::P1K, DatasetId::P5K, DatasetId::P10K],
        Scale::Full => &[
            DatasetId::P1K,
            DatasetId::P5K,
            DatasetId::P10K,
            DatasetId::P50K,
        ],
    };
    for &id in ids {
        let u = dataset(id, scale);
        let budget = u.total_cost() / 5;
        let name = u.name.clone();

        let t = std::time::Instant::now();
        let dense = represent(&u, budget, &RepresentationConfig::default()).expect("repr");
        main_algorithm(&dense);
        let ns_time = t.elapsed().as_secs_f64();

        let t = std::time::Instant::now();
        let sparse = represent(
            &u,
            budget,
            &RepresentationConfig {
                sparsification: Sparsification::Lsh {
                    tau: 0.6,
                    target_recall: 0.95,
                    seed: SEED,
                },
                ..Default::default()
            },
        )
        .expect("repr");
        main_algorithm(&sparse);
        let ph_time = t.elapsed().as_secs_f64();

        rows.push(Series::new(
            "ablation_scaling",
            name.clone(),
            "PHOcus",
            ph_time,
        ));
        rows.push(Series::new("ablation_scaling", name, "PHOcus-NS", ns_time));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_sweep_is_monotone_in_pairs() {
        let rows = ablation_tau(Scale::Scaled);
        let pairs: Vec<f64> = rows
            .iter()
            .filter(|r| r.series == "stored pairs %")
            .map(|r| r.value)
            .collect();
        for w in pairs.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "pairs increased along the τ sweep");
        }
        // Quality stays high throughout.
        for r in rows.iter().filter(|r| r.series == "quality %") {
            assert!(r.value >= 85.0, "{}: quality {}", r.x, r.value);
        }
    }

    #[test]
    fn compression_helps_at_tight_budgets() {
        let rows = ablation_compression(Scale::Scaled);
        let remove = rows
            .iter()
            .find(|r| r.x == "4%" && r.series == "remove-only")
            .unwrap()
            .value;
        let compress = rows
            .iter()
            .find(|r| r.x == "4%" && r.series == "with compression")
            .unwrap()
            .value;
        assert!(
            compress > remove,
            "compression did not help: {compress} vs {remove}"
        );
    }

    #[test]
    fn local_search_helps_random_more_than_greedy() {
        let rows = ablation_local_search(Scale::Scaled);
        let v = |x: &str, s: &str| {
            rows.iter()
                .find(|r| r.x == x && r.series == s)
                .unwrap()
                .value
        };
        let greedy_gain = v("greedy", "after 1-swap") - v("greedy", "before");
        let random_gain = v("random", "after 1-swap") - v("random", "before");
        assert!(greedy_gain >= -1e-9);
        assert!(random_gain > greedy_gain, "random should gain more");
    }
}
