//! LSH benchmarks: SimHash pair discovery vs exhaustive all-pairs cosine —
//! the "roughly linear time" claim of Section 4.3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use par_embed::{ImageSpec, SpecEmbedder};
use par_lsh::{cosine, similar_pairs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn vectors(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let embedder = SpecEmbedder::new(64, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cache = std::collections::HashMap::new();
    (0..n)
        .map(|i| {
            let spec = ImageSpec::new(
                rng.gen_range(0..(n as u32 / 20).max(2)),
                [rng.gen(), rng.gen(), rng.gen(), rng.gen()],
                i as u64,
            );
            embedder.embed_cached(&spec, &mut cache).as_slice().to_vec()
        })
        .collect()
}

fn exhaustive_pairs(vecs: &[Vec<f32>], tau: f64) -> usize {
    let mut count = 0;
    for i in 0..vecs.len() {
        for j in 0..i {
            if cosine(&vecs[i], &vecs[j]) >= tau {
                count += 1;
            }
        }
    }
    count
}

fn bench_pair_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("pair_discovery");
    group.sample_size(10);
    for n in [500usize, 1000, 2000] {
        let vecs = vectors(n, 42);
        group.bench_with_input(BenchmarkId::new("lsh", n), &vecs, |b, v| {
            b.iter(|| similar_pairs(std::hint::black_box(v), 0.8, 0.95, 7).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("exhaustive", n), &vecs, |b, v| {
            b.iter(|| exhaustive_pairs(std::hint::black_box(v), 0.8))
        });
    }
    group.finish();
}

fn bench_signing(c: &mut Criterion) {
    use par_lsh::SimHasher;
    let vecs = vectors(1000, 3);
    let hasher = SimHasher::new(64, 128, 5);
    c.bench_function("simhash_sign/1000x64d/128bit", |b| {
        b.iter(|| {
            for v in &vecs {
                std::hint::black_box(hasher.sign(v));
            }
        })
    });
}

criterion_group!(benches, bench_pair_discovery, bench_signing);
criterion_main!(benches);
