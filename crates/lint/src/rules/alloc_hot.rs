//! `alloc-hot`: allocation bans inside annotated hot kernels and their
//! crate-local callees.
//!
//! The PR 2/6/8 performance story is arena discipline: the gain kernels,
//! the CELF stream advance, the dynamic dispatch loop, and the pack bulk
//! loaders run allocation-free, reusing caller-provided buffers. This rule
//! machine-checks that discipline. A function annotated
//!
//! ```text
//! // phocus-lint: hot-kernel — why this function is on the hot path
//! ```
//!
//! (line above the item, attributes tolerated, or trailing on the header
//! line) and every function it reaches through the intra-crate
//! [call graph](crate::callgraph) must not contain allocating calls:
//! `vec!`/`format!`, `.collect()`, `.to_vec()`, `.to_owned()`,
//! `.to_string()`, `.clone()`, `::with_capacity`, `String::from`, and
//! `Box::new`/`Arc::new`/`Rc::new`.
//!
//! Envelope (documented, deliberate): `.push`/`.extend` onto reused
//! buffers are amortized-O(1) and allowed; `Vec::new`/`String::new` do not
//! allocate; cross-crate callees and closures called through variables are
//! not followed (annotate those in their own crate). `#[cfg(test)]`
//! regions are exempt. Suppression requires a per-site justification:
//! `// phocus-lint: allow(alloc-hot) — reason`.

use crate::callgraph::{CrateGraph, FnId};
use crate::context::FileContext;
use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::scope::FileScopes;

/// Method names whose call allocates.
const BANNED_METHODS: &[&str] = &["collect", "to_vec", "to_owned", "to_string", "clone"];

/// `Type::new` paths whose call allocates.
const BANNED_NEW_PATHS: &[&str] = &["Box", "Arc", "Rc"];

/// An allocating construct found at a token position.
fn allocation_at(code: &[Tok], j: usize) -> Option<String> {
    let t = &code[j];
    if t.kind != TokKind::Ident {
        return None;
    }
    let next_is = |c: char| code.get(j + 1).is_some_and(|n| n.is_punct(c));
    // `vec![…]` / `format!(…)`.
    if (t.text == "vec" || t.text == "format") && next_is('!') {
        return Some(format!("{}!", t.text));
    }
    let called = next_is('(')
        || (next_is(':') && code.get(j + 2).is_some_and(|n| n.is_punct(':')))
        || (next_is(':') && code.get(j + 2).is_some_and(|n| n.is_punct('<')));
    if !called {
        return None;
    }
    let after_dot = j > 0 && code[j - 1].is_punct('.');
    let after_path = j > 1 && code[j - 1].is_punct(':') && code[j - 2].is_punct(':');
    if after_dot && BANNED_METHODS.contains(&t.text.as_str()) {
        return Some(format!(".{}()", t.text));
    }
    if after_path {
        if t.text == "with_capacity" {
            return Some("::with_capacity".to_string());
        }
        let qualifier = (j >= 3).then(|| code[j - 3].text.as_str());
        if t.text == "new" && qualifier.is_some_and(|q| BANNED_NEW_PATHS.contains(&q)) {
            return Some(format!("{}::new", qualifier.unwrap_or("")));
        }
        if t.text == "from" && qualifier == Some("String") {
            return Some("String::from".to_string());
        }
    }
    None
}

/// Runs the rule over one crate: `files` and `scopes` are parallel slices.
pub fn check(
    files: &[FileContext<'_>],
    scopes: &[FileScopes],
    graph: &CrateGraph,
    out: &mut Vec<Diagnostic>,
) {
    let roots: Vec<FnId> = scopes
        .iter()
        .enumerate()
        .flat_map(|(fi, s)| {
            s.fns
                .iter()
                .enumerate()
                .filter(|(_, f)| f.hot)
                .map(move |(gi, _)| (fi, gi))
        })
        .collect();
    if roots.is_empty() {
        return;
    }
    let parent = graph.reachable(&roots);
    for (&node, &par) in &parent {
        let (fi, gi) = node;
        let ctx = &files[fi];
        let item = &scopes[fi].fns[gi];
        // Witness chain back to the annotated root.
        let mut chain = vec![item.name.clone()];
        let mut cur = node;
        let mut up = par;
        while up != cur {
            cur = up;
            chain.push(scopes[cur.0].fns[cur.1].name.clone());
            up = parent.get(&cur).copied().unwrap_or(cur);
        }
        chain.reverse();
        let root_name = chain.first().cloned().unwrap_or_default();
        let is_root = chain.len() == 1;

        let (open, close) = item.body;
        let end = close.min(ctx.code.len());
        for j in open + 1..end {
            let t = &ctx.code[j];
            if ctx.in_test_region(t.line) {
                continue;
            }
            // A nested fn item is its own node; don't double-report its
            // body as part of the enclosing function's.
            if scopes[fi]
                .fn_of(j)
                .is_some_and(|inner| inner.body != item.body)
            {
                continue;
            }
            let Some(what) = allocation_at(&ctx.code, j) else {
                continue;
            };
            let depth = scopes[fi].loop_depth.get(j).copied().unwrap_or(0);
            let site = if is_root {
                format!("hot kernel `{}`", item.name)
            } else {
                format!(
                    "`{}`, reached from hot kernel `{}` via {}",
                    item.name,
                    root_name,
                    chain.join(" → ")
                )
            };
            let loop_note = if depth > 0 {
                format!(" at loop depth {depth}")
            } else {
                String::new()
            };
            ctx.emit(
                out,
                "alloc-hot",
                t.line,
                t.col,
                format!(
                    "allocating call `{what}` in {site}{loop_note}; hot kernels reuse \
                     caller-provided buffers (arena discipline) — restructure, or \
                     `allow(alloc-hot)` with a per-site rationale"
                ),
            );
        }
    }
}
