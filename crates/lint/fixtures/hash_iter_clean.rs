//! Fixture: deterministic iteration — a `BTreeMap` walk and a
//! collect-then-sort over hash-map contents.

use std::collections::{BTreeMap, HashMap};

pub fn total(weights: &BTreeMap<u32, f64>) -> f64 {
    let mut sum = 0.0;
    for (_, w) in weights.iter() {
        sum += w;
    }
    sum
}

pub fn sorted_keys(m: &HashMap<u32, f64>) -> Vec<u32> {
    let mut keys: Vec<u32> = m.keys().copied().collect();
    keys.sort_unstable();
    keys
}
