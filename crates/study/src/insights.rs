//! The "unexpected insights" analysis.
//!
//! The paper reports twice that the analysts "gained unexpected insights in
//! terms of which photos to retain". This module makes that concrete: it
//! diffs the PHOcus solution against the manual one and categorizes what the
//! solver saw that the analyst missed — photos kept for *cross-page reuse*
//! (one photo serving many landing pages), photos kept for *coverage by
//! proxy* (highly similar to many non-retained co-members), and cost
//! trades (several small photos where the analyst kept one large one).

use par_core::{Instance, PhotoId};
use std::collections::HashSet;

/// One photo the solver kept that the analyst did not, with why.
#[derive(Debug, Clone, PartialEq)]
pub struct Insight {
    /// The photo.
    pub photo: PhotoId,
    /// Number of pre-defined subsets it serves.
    pub pages_served: usize,
    /// Total similarity mass it contributes to *other* members across its
    /// contexts (how much it covers by proxy).
    pub proxy_coverage: f64,
    /// Byte cost.
    pub cost: u64,
}

/// The diff between the PHOcus and manual selections.
#[derive(Debug, Clone)]
pub struct InsightReport {
    /// Photos PHOcus kept that the analyst missed, strongest first.
    pub solver_only: Vec<Insight>,
    /// Photos the analyst kept that PHOcus dropped.
    pub manual_only: Vec<Insight>,
    /// Photos both kept.
    pub agreed: usize,
    /// Mean pages-served of solver-only vs manual-only picks: > 1 means the
    /// solver's extra picks serve more landing pages (descriptive; can dip
    /// below 1 when the analyst also spreads widely).
    pub reuse_ratio: f64,
    /// Mean marginal objective value (w.r.t. the agreed intersection) of
    /// solver-only vs manual-only picks. This is the decisive metric: > 1
    /// means the photos the solver added are genuinely worth more than the
    /// analyst's alternatives — the "unexpected insight".
    pub value_ratio: f64,
}

fn describe(inst: &Instance, p: PhotoId) -> Insight {
    let mut proxy_coverage = 0.0;
    for m in inst.memberships(p) {
        let sim = inst.sim(m.subset);
        sim.for_neighbors(m.local as usize, |_, s| proxy_coverage += s);
    }
    Insight {
        photo: p,
        pages_served: inst.memberships(p).len(),
        proxy_coverage,
        cost: inst.cost(p),
    }
}

/// Produces the insight report for a (solver, manual) selection pair.
///
/// The hash sets are used for membership tests only; every iteration walks
/// the caller's slices in their given order, so the agreed-core evaluator
/// accumulation and the tie order of the sorted insight lists are
/// deterministic across processes.
pub fn analyze(inst: &Instance, solver: &[PhotoId], manual: &[PhotoId]) -> InsightReport {
    let solver_set: HashSet<PhotoId> = solver.iter().copied().collect();
    let manual_set: HashSet<PhotoId> = manual.iter().copied().collect();

    let mut solver_only: Vec<Insight> = solver
        .iter()
        .filter(|p| !manual_set.contains(p))
        .map(|&p| describe(inst, p))
        .collect();
    let mut manual_only: Vec<Insight> = manual
        .iter()
        .filter(|p| !solver_set.contains(p))
        .map(|&p| describe(inst, p))
        .collect();
    let order = |a: &Insight, b: &Insight| {
        b.pages_served
            .cmp(&a.pages_served)
            .then_with(|| b.proxy_coverage.total_cmp(&a.proxy_coverage))
    };
    solver_only.sort_by(order);
    manual_only.sort_by(order);

    let mean = |v: &[Insight]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().map(|i| i.pages_served as f64).sum::<f64>() / v.len() as f64
        }
    };
    let mean_manual = mean(&manual_only);
    let reuse_ratio = if mean_manual > 0.0 {
        mean(&solver_only) / mean_manual
    } else if solver_only.is_empty() {
        1.0
    } else {
        f64::INFINITY
    };

    // Marginal value of each side's unique picks on top of the agreed core.
    // Float accumulation in `Evaluator::add` is order-sensitive, so the
    // agreed photos are added in solver-slice order, not hash-set order.
    let agreed: Vec<PhotoId> = solver
        .iter()
        .copied()
        .filter(|p| manual_set.contains(p))
        .collect();
    let mut base = par_core::Evaluator::new(inst);
    for &p in &agreed {
        base.add(p);
    }
    let mean_gain = |picks: &[Insight]| {
        if picks.is_empty() {
            return 0.0;
        }
        picks.iter().map(|i| base.gain(i.photo)).sum::<f64>() / picks.len() as f64
    };
    let g_solver = mean_gain(&solver_only);
    let g_manual = mean_gain(&manual_only);
    let value_ratio = if g_manual > 0.0 {
        g_solver / g_manual
    } else if solver_only.is_empty() {
        1.0
    } else {
        f64::INFINITY
    };

    InsightReport {
        agreed: agreed.len(),
        solver_only,
        manual_only,
        reuse_ratio,
        value_ratio,
    }
}

/// Renders the top insights as human-readable lines.
pub fn render(inst: &Instance, report: &InsightReport, top: usize) -> String {
    let mut out = format!(
        "agreement: {} photos; solver-only {}, manual-only {}; reuse ratio {:.2}; value ratio {:.2}\n",
        report.agreed,
        report.solver_only.len(),
        report.manual_only.len(),
        report.reuse_ratio,
        report.value_ratio
    );
    out.push_str("photos the solver kept that the analyst missed:\n");
    for i in report.solver_only.iter().take(top) {
        out.push_str(&format!(
            "  {} — serves {} pages, proxy coverage {:.2}, {} bytes\n",
            inst.photo(i.photo).name,
            i.pages_served,
            i.proxy_coverage,
            i.cost
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyst::ManualAnalyst;
    use par_datasets::{generate_ecommerce, EcConfig, EcDomain};
    use phocus::{represent, RepresentationConfig};

    fn setting() -> (Instance, Vec<PhotoId>, Vec<PhotoId>) {
        let u = generate_ecommerce(&EcConfig::small(EcDomain::Fashion, 33));
        let budget = u.total_cost() / 10;
        let inst = represent(&u, budget, &RepresentationConfig::default()).unwrap();
        let solver = par_algo::main_algorithm(&inst).best.selected;
        let manual = ManualAnalyst::default().select(&inst).selected;
        (inst, solver, manual)
    }

    #[test]
    fn report_partitions_the_selections() {
        let (inst, solver, manual) = setting();
        let report = analyze(&inst, &solver, &manual);
        assert_eq!(
            report.agreed + report.solver_only.len(),
            solver.len(),
            "solver partition"
        );
        assert_eq!(
            report.agreed + report.manual_only.len(),
            manual.len(),
            "manual partition"
        );
    }

    #[test]
    fn solver_picks_are_worth_more() {
        // The paper's insight: the photos PHOcus adds beyond the analyst's
        // picks carry more objective value than the analyst's alternatives.
        let (inst, solver, manual) = setting();
        let report = analyze(&inst, &solver, &manual);
        assert!(
            report.value_ratio > 1.0,
            "value ratio {} should exceed 1",
            report.value_ratio
        );
        assert!(report.reuse_ratio.is_finite());
    }

    #[test]
    fn insights_are_sorted_by_reuse() {
        let (inst, solver, manual) = setting();
        let report = analyze(&inst, &solver, &manual);
        for w in report.solver_only.windows(2) {
            assert!(w[0].pages_served >= w[1].pages_served);
        }
    }

    #[test]
    fn render_mentions_photo_names() {
        let (inst, solver, manual) = setting();
        let report = analyze(&inst, &solver, &manual);
        let text = render(&inst, &report, 3);
        assert!(text.contains("reuse ratio"));
        assert!(text.contains("serves"));
    }

    #[test]
    fn identical_selections_have_no_diff() {
        let (inst, solver, _) = setting();
        let report = analyze(&inst, &solver, &solver);
        assert!(report.solver_only.is_empty());
        assert!(report.manual_only.is_empty());
        assert_eq!(report.reuse_ratio, 1.0);
        assert_eq!(report.value_ratio, 1.0);
    }
}
