//! The [`Photo`] record: identity, human-readable name, and byte cost.

use crate::PhotoId;
use std::sync::Arc;

/// A photo in the archive.
///
/// The model only needs the photo's *cost* — the disk space (in bytes)
/// required to store it — plus an identifier. The `name` field carries a
/// human-readable label (file name, product title, …) that flows into reports
/// and the user-study tooling but plays no role in optimization. It is an
/// `Arc<str>` because epoch deltas rebuild the photo table every epoch
/// ([`crate::delta`]): surviving photos share their name storage with the
/// pre-delta instance instead of deep-copying it.
#[derive(Debug, Clone, PartialEq)]
pub struct Photo {
    /// Dense identifier of this photo within its instance.
    pub id: PhotoId,
    /// Human-readable label (file name, product title, …).
    pub name: Arc<str>,
    /// Storage cost in bytes. Must be strictly positive.
    pub cost: u64,
}

impl Photo {
    /// Creates a photo record.
    pub fn new(id: PhotoId, name: impl Into<Arc<str>>, cost: u64) -> Self {
        Photo {
            id,
            name: name.into(),
            cost,
        }
    }

    /// Cost expressed in (binary) megabytes, for reporting.
    pub fn cost_mb(&self) -> f64 {
        self.cost as f64 / (1024.0 * 1024.0)
    }
}

/// Formats a byte count using binary units, e.g. `1.5 MiB`.
pub fn format_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn photo_cost_mb() {
        let p = Photo::new(PhotoId(0), "eiffel.jpg", 2 * 1024 * 1024);
        assert!((p.cost_mb() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn format_bytes_units() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.00 KiB");
        assert_eq!(format_bytes(3 * 1024 * 1024), "3.00 MiB");
        assert_eq!(format_bytes(5 * 1024 * 1024 * 1024), "5.00 GiB");
    }
}
