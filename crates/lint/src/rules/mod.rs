//! The rule registry and the per-file / per-crate dispatch.
//!
//! Four families, mirroring DESIGN.md §12 and §17:
//!
//! * **determinism** — [`determinism::float_ord`], [`determinism::hash_iter`],
//!   [`determinism::wall_clock`], [`reduce_order`]: protect the bit-identical
//!   solver transcripts (PR 1/3 goldens), the `total_cmp` discipline (PR 4),
//!   and index-ordered float merges under parallel fan-out.
//! * **architecture** — [`architecture::check_dag`],
//!   [`architecture::parallel_cfg`]: keep the crate DAG acyclic and layered,
//!   and the `parallel` feature confined to `par-exec` (PR 1).
//! * **performance/safety** — [`alloc_hot`], [`cast_bounds`]: arena
//!   discipline inside annotated hot kernels and their crate-local callees,
//!   and locally-evidenced narrowing casts in library code.
//! * **hygiene** — [`hygiene::no_print`], [`hygiene::no_unsafe`],
//!   [`ci::check_ci`]: no stray output or panicking placeholders in library
//!   code, no `unsafe` outside the vendored shims, and a CI panic-freedom
//!   gate that cannot silently skip a crate.
//!
//! File-scoped rules run per file ([`run_file_rules`]); the token-tree
//! rules that need fn scopes and the intra-crate call graph run per crate
//! ([`run_crate_rules`]) over all of its files at once.

pub mod alloc_hot;
pub mod architecture;
pub mod cast_bounds;
pub mod ci;
pub mod determinism;
pub mod hygiene;
pub mod reduce_order;

use crate::callgraph::CrateGraph;
use crate::context::FileContext;
use crate::diag::Diagnostic;
use crate::scope;

/// Every rule id, for pragma validation, `--help`, and the `rules`
/// subcommand (schema-drift gate in ci.sh).
pub const RULES: &[&str] = &[
    "float-ord",
    "hash-iter",
    "wall-clock",
    "crate-dag",
    "parallel-cfg",
    "no-print",
    "no-unsafe",
    "ci-gate",
    "alloc-hot",
    "cast-bounds",
    "reduce-order",
    "lint-meta",
];

/// Runs every file-scoped rule over one lexed file and returns the
/// surviving (non-suppressed) diagnostics, pragma-syntax findings included.
pub fn run_file_rules(ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    determinism::float_ord(ctx, &mut out);
    determinism::hash_iter(ctx, &mut out);
    determinism::wall_clock(ctx, &mut out);
    architecture::parallel_cfg(ctx, &mut out);
    hygiene::no_print(ctx, &mut out);
    hygiene::no_unsafe(ctx, &mut out);
    out.extend(
        ctx.meta_diags
            .iter()
            .filter(|d| !ctx.is_allowed("lint-meta", d.line))
            .cloned(),
    );
    out
}

/// Runs the crate-scoped (token-tree) rules over one crate's files:
/// `alloc-hot` and `reduce-order` follow the intra-crate call graph,
/// `cast-bounds` needs per-fn binding hints. Returns surviving diagnostics.
pub fn run_crate_rules(files: &[FileContext<'_>]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let scopes: Vec<scope::FileScopes> = files.iter().map(scope::analyze).collect();
    let pairs: Vec<(&[crate::lexer::Tok], &scope::FileScopes)> = files
        .iter()
        .zip(scopes.iter())
        .map(|(f, s)| (&f.code[..], s))
        .collect();
    let graph = CrateGraph::build(&pairs);
    alloc_hot::check(files, &scopes, &graph, &mut out);
    reduce_order::check(files, &scopes, &graph, &mut out);
    for (ctx, s) in files.iter().zip(scopes.iter()) {
        cast_bounds::check(ctx, s, &mut out);
    }
    out
}
