//! `ci-gate`: cross-checks `ci.sh` against the workspace.
//!
//! Three invariants:
//!
//! 1. `phocus-lint` itself must run in CI *before* the test steps, so a
//!    determinism/layering regression fails fast.
//! 2. The clippy panic-freedom gate must cover every non-vendor library
//!    crate. The sanctioned mechanism is deriving the list from
//!    `phocus-lint gate-crates` (metadata-derived, so a newly added crate
//!    is covered automatically). A hard-coded list is accepted only if it
//!    names every gate crate — the historical failure mode this rule
//!    exists to prevent is a new crate silently skipping the gate.
//! 3. The pack determinism gate must stay wired up: `phocus pack` run
//!    twice on the same dataset with the images compared by `cmp`. The
//!    phocus-pack format's canonicality (one instance, one byte image) is
//!    a cross-process property that in-process golden hashes cannot see.

use crate::diag::Diagnostic;

/// Validates `ci_src` (the text of `ci.sh`) given the metadata-derived
/// gate crate list. `path` is used verbatim in diagnostics.
pub fn check_ci(path: &str, ci_src: &str, gate_crates: &[String], out: &mut Vec<Diagnostic>) {
    let lines: Vec<&str> = ci_src.lines().collect();
    let find_line = |needle: &str| {
        lines
            .iter()
            .position(|l| l.contains(needle))
            .map(|i| i as u32 + 1)
    };

    // 1. phocus-lint runs, and before the first test step.
    let lint_line = find_line("par-lint");
    let test_line = find_line("cargo test");
    match (lint_line, test_line) {
        (None, _) => out.push(Diagnostic {
            rule: "ci-gate",
            path: path.to_string(),
            line: 1,
            col: 1,
            message: "ci.sh never runs phocus-lint (`cargo run --release -q -p \
                      par-lint`); static analysis must gate CI"
                .to_string(),
        }),
        (Some(l), Some(t)) if t < l => out.push(Diagnostic {
            rule: "ci-gate",
            path: path.to_string(),
            line: l,
            col: 1,
            message: "phocus-lint must run before the test steps in ci.sh so \
                      invariant regressions fail fast"
                .to_string(),
        }),
        _ => {}
    }

    // 3. Pack determinism gate: `phocus pack` twice + `cmp`.
    let pack_line = find_line("pack --dataset");
    let cmp_line = lines
        .iter()
        .position(|l| l.trim_start().starts_with("cmp "))
        .map(|i| i as u32 + 1);
    if pack_line.is_none() || cmp_line.is_none() {
        out.push(Diagnostic {
            rule: "ci-gate",
            path: path.to_string(),
            line: 1,
            col: 1,
            message: "ci.sh lost the pack determinism gate (`phocus pack` on \
                      the same dataset twice, images compared with `cmp`)"
                .to_string(),
        });
    }

    // 2. Panic-freedom gate coverage.
    let Some(gate_line) = find_line("unwrap_used") else {
        out.push(Diagnostic {
            rule: "ci-gate",
            path: path.to_string(),
            line: 1,
            col: 1,
            message: "ci.sh lost the clippy panic-freedom gate \
                      (-D clippy::unwrap_used …) over the library crates"
                .to_string(),
        });
        return;
    };
    if ci_src.contains("gate-crates") {
        return; // metadata-derived list: covers every crate by construction
    }
    for c in gate_crates {
        let covered = lines.iter().any(|l| {
            l.split_whitespace().any(|w| {
                w.trim_matches(|ch: char| !(ch.is_alphanumeric() || ch == '-' || ch == '_'))
                    == c.as_str()
            })
        });
        if !covered {
            out.push(Diagnostic {
                rule: "ci-gate",
                path: path.to_string(),
                line: gate_line,
                col: 1,
                message: format!(
                    "panic-freedom gate omits crate `{c}`; derive the crate \
                     list from `phocus-lint gate-crates` instead of \
                     hard-coding it"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate() -> Vec<String> {
        vec!["par-core".to_string(), "par-algo".to_string()]
    }

    /// The pack determinism gate lines every passing fixture needs.
    const PACK_GATE: &str =
        "cargo run -q -p phocus -- pack --dataset p1k --budget-mb 1 --out /tmp/a.pack\ncmp /tmp/a.pack /tmp/b.pack\n";

    #[test]
    fn derived_list_passes() {
        let ci = format!("cargo build\ncargo run --release -q -p par-lint\nfor c in $(cargo run -q -p par-lint -- gate-crates); do :; done\ncargo clippy -- -D clippy::unwrap_used\ncargo test -q\n{PACK_GATE}");
        let mut out = Vec::new();
        check_ci("ci.sh", &ci, &gate(), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn hardcoded_list_missing_a_crate_fails() {
        let ci = format!("cargo run -q -p par-lint\nfor c in par-core; do :; done\ncargo clippy -D clippy::unwrap_used\ncargo test -q\n{PACK_GATE}");
        let mut out = Vec::new();
        check_ci("ci.sh", &ci, &gate(), &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("par-algo"));
    }

    #[test]
    fn missing_pack_gate_fails() {
        // `cmp` without the pack runs (or vice versa) is not a gate.
        let ci = "cargo run -q -p par-lint\nfor c in $(gate-crates); do :; done\nclippy -D clippy::unwrap_used\ncargo test -q\ncmp /tmp/a /tmp/b\n";
        let mut out = Vec::new();
        check_ci("ci.sh", ci, &gate(), &mut out);
        assert!(
            out.iter().any(|d| d.message.contains("pack determinism")),
            "{out:?}"
        );
    }

    #[test]
    fn lint_after_tests_fails() {
        let ci = "cargo test -q\ncargo run -q -p par-lint -- gate-crates\nclippy -D clippy::unwrap_used\n";
        let mut out = Vec::new();
        check_ci("ci.sh", ci, &gate(), &mut out);
        assert!(out.iter().any(|d| d.message.contains("before the test steps")));
    }

    #[test]
    fn missing_gate_fails() {
        let ci = "cargo run -q -p par-lint\ncargo test -q\n";
        let mut out = Vec::new();
        check_ci("ci.sh", ci, &gate(), &mut out);
        assert!(out.iter().any(|d| d.message.contains("panic-freedom gate")));
    }
}
