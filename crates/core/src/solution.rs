//! Feasibility-checked [`Solution`]s and coverage statistics.

use crate::{exact_score, Instance, ModelError, PhotoId, Result};

/// A candidate solution to a PAR instance: the set of photos to retain.
///
/// Construct via [`Solution::new`] (validates feasibility: `S₀ ⊆ S` and
/// `C(S) ≤ B`) or [`Solution::new_unchecked`] for intermediate values.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    photos: Vec<PhotoId>,
    cost: u64,
    score: f64,
}

impl Solution {
    /// Builds and validates a solution, computing its cost and exact score.
    ///
    /// Returns an error if a required photo is missing or the budget is
    /// exceeded. Duplicate ids are deduplicated.
    pub fn new(inst: &Instance, mut photos: Vec<PhotoId>) -> Result<Self> {
        photos.sort_unstable();
        photos.dedup();
        for &p in &photos {
            if p.index() >= inst.num_photos() {
                return Err(ModelError::UnknownPhoto(p));
            }
        }
        let selected: Vec<bool> = {
            let mut v = vec![false; inst.num_photos()];
            for &p in &photos {
                v[p.index()] = true;
            }
            v
        };
        for &r in inst.required() {
            if !selected[r.index()] {
                return Err(ModelError::MissingRequiredPhoto(r));
            }
        }
        let mut cost: u64 = 0;
        for &p in &photos {
            cost = cost
                .checked_add(inst.cost(p))
                .ok_or(ModelError::CostOverflow)?;
        }
        if cost > inst.budget() {
            return Err(ModelError::OverBudget {
                cost,
                budget: inst.budget(),
            });
        }
        let score = exact_score(inst, &photos);
        Ok(Solution {
            photos,
            cost,
            score,
        })
    }

    /// Builds a solution without feasibility checks (used for baselines that
    /// may be evaluated on views, or for reporting infeasible references).
    /// The score is still computed exactly against `inst`.
    pub fn new_unchecked(inst: &Instance, mut photos: Vec<PhotoId>) -> Self {
        photos.sort_unstable();
        photos.dedup();
        // Deduplicated ids of a validated instance sum to at most the
        // checked total cost, so this cannot overflow; saturate anyway
        // rather than wrap, since this constructor skips validation.
        let cost = photos
            .iter()
            .fold(0u64, |acc, &p| acc.saturating_add(inst.cost(p)));
        let score = exact_score(inst, &photos);
        Solution {
            photos,
            cost,
            score,
        }
    }

    /// The retained photos, sorted by id.
    #[inline]
    pub fn photos(&self) -> &[PhotoId] {
        &self.photos
    }

    /// Number of retained photos.
    #[inline]
    pub fn len(&self) -> usize {
        self.photos.len()
    }

    /// Whether the solution retains no photos.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.photos.is_empty()
    }

    /// Total cost `C(S)` in bytes.
    #[inline]
    pub fn cost(&self) -> u64 {
        self.cost
    }

    /// Exact objective value `G(S)`.
    #[inline]
    pub fn score(&self) -> f64 {
        self.score
    }

    /// Whether photo `p` is retained (binary search).
    pub fn contains(&self, p: PhotoId) -> bool {
        self.photos.binary_search(&p).is_ok()
    }

    /// Score as a fraction of the maximum attainable `Σ_q W(q)` — the
    /// "percent of total quality" measure used in the paper's Section 5.3
    /// budget-scenario discussion.
    pub fn quality_fraction(&self, inst: &Instance) -> f64 {
        let max = inst.max_score();
        if max == 0.0 {
            0.0
        } else {
            self.score / max
        }
    }

    /// Computes per-subset coverage statistics.
    pub fn coverage(&self, inst: &Instance) -> CoverageStats {
        let mut selected = vec![false; inst.num_photos()];
        for &p in &self.photos {
            selected[p.index()] = true;
        }
        let mut covered = 0usize;
        let mut fully_retained = 0usize;
        for q in inst.subsets() {
            let sel = q.members.iter().filter(|m| selected[m.index()]).count();
            if sel > 0 {
                covered += 1;
            }
            if sel == q.members.len() {
                fully_retained += 1;
            }
        }
        CoverageStats {
            subsets: inst.num_subsets(),
            covered,
            fully_retained,
        }
    }
}

/// Per-subset coverage statistics of a solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverageStats {
    /// Total number of pre-defined subsets.
    pub subsets: usize,
    /// Subsets with at least one retained member.
    pub covered: usize,
    /// Subsets whose members are all retained (score exactly 1).
    pub fully_retained: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure1_instance, MB};

    #[test]
    fn solution_validates_budget() {
        let inst = figure1_instance(2 * MB);
        // p1 (1.2MB) + p3 (2.1MB) over budget.
        let err = Solution::new(&inst, vec![PhotoId(0), PhotoId(2)]);
        assert!(matches!(err, Err(ModelError::OverBudget { .. })));
        let ok = Solution::new(&inst, vec![PhotoId(0), PhotoId(1)]).unwrap();
        assert_eq!(ok.cost(), 1_900_000);
    }

    #[test]
    fn solution_requires_s0() {
        let inst = figure1_instance(10 * MB);
        // Figure 1 has no required photos; simulate with a derived instance.
        // (Required-set tests live in instance.rs; here check the happy path.)
        let sol = Solution::new(&inst, vec![PhotoId(5)]).unwrap();
        assert!(sol.contains(PhotoId(5)));
        assert!(!sol.contains(PhotoId(0)));
    }

    #[test]
    fn score_matches_exact() {
        let inst = figure1_instance(u64::MAX);
        let sol = Solution::new(&inst, vec![PhotoId(0), PhotoId(5)]).unwrap();
        // p1 covers q1: 9·(0.5 + 0.3·0.7 + 0.2·0.8) = 7.83.
        // p6 covers q2: 0.3·0.4 + 0.4·0.7 + 0.3·1 = 0.7; q3: 3; q4: 0.7+0.3·0.7=0.91.
        // Similarities are stored as f32, so allow a small tolerance.
        assert!((sol.score() - (7.83 + 0.7 + 3.0 + 0.91)).abs() < 1e-6);
    }

    #[test]
    fn coverage_stats() {
        let inst = figure1_instance(u64::MAX);
        let sol = Solution::new(&inst, vec![PhotoId(5)]).unwrap();
        let cov = sol.coverage(&inst);
        assert_eq!(cov.subsets, 4);
        // p6 is in q2, q3, q4.
        assert_eq!(cov.covered, 3);
        assert_eq!(cov.fully_retained, 1); // q3 = {p6}
    }

    #[test]
    fn quality_fraction_full_retention_is_one() {
        let inst = figure1_instance(u64::MAX);
        let all: Vec<PhotoId> = (0..7).map(PhotoId).collect();
        let sol = Solution::new(&inst, all).unwrap();
        assert!((sol.quality_fraction(&inst) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dedup_and_sort() {
        let inst = figure1_instance(u64::MAX);
        let sol = Solution::new(&inst, vec![PhotoId(3), PhotoId(1), PhotoId(3)]).unwrap();
        assert_eq!(sol.photos(), &[PhotoId(1), PhotoId(3)]);
        assert_eq!(sol.len(), 2);
    }
}
