//! Procedural "product photos".
//!
//! An [`ImageSpec`] describes the semantic content of a photo — a category
//! (e.g. "running shoes") and a handful of continuous attributes (color,
//! orientation, zoom, background) — and rendering is a pure function of the
//! spec. Photos of the same category therefore share visual structure,
//! photos with close attributes are near-duplicates, and the downstream
//! feature/embedding pipeline recovers exactly the similarity geometry the
//! paper's ResNet embeddings provide over real product images.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Semantic description of a synthetic photo.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageSpec {
    /// Category id — determines the base composition (shape layout, hue).
    pub category: u32,
    /// Continuous attributes in `[0, 1]`: `[hue shift, size, position,
    /// background brightness]`. Close attributes ⇒ near-duplicate photos.
    pub attributes: [f32; 4],
    /// Per-photo noise seed (sensor noise, small occlusions).
    pub noise_seed: u64,
}

impl ImageSpec {
    /// Creates a spec with the given category, attributes, and noise seed.
    pub fn new(category: u32, attributes: [f32; 4], noise_seed: u64) -> Self {
        ImageSpec {
            category,
            attributes,
            noise_seed,
        }
    }
}

/// A small RGB raster.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major RGB pixels.
    pub pixels: Vec<[u8; 3]>,
}

impl Image {
    /// Renders the spec at the given resolution. Pure: identical specs yield
    /// identical pixels.
    pub fn render(spec: &ImageSpec, width: usize, height: usize) -> Image {
        let mut rng = StdRng::seed_from_u64(
            spec.noise_seed ^ (spec.category as u64).wrapping_mul(0x9E3779B97F4A7C15),
        );
        let [hue_shift, size, position, bg_brightness] = spec.attributes;

        // Category determines a base hue and a shape layout.
        let base_hue = (spec.category.wrapping_mul(2654435761) % 360) as f32;
        let hue = (base_hue + hue_shift * 60.0) % 360.0;
        let bg = hsv_to_rgb((hue + 180.0) % 360.0, 0.15, 0.35 + 0.5 * bg_brightness);

        let mut pixels = vec![bg; width * height];

        // Main subject: an ellipse whose size/position follow the attributes.
        let cx = width as f32 * (0.35 + 0.3 * position);
        let cy = height as f32 * 0.5;
        let rx = width as f32 * (0.15 + 0.2 * size);
        let ry = height as f32 * (0.2 + 0.2 * size);
        let subject = hsv_to_rgb(hue, 0.8, 0.9);
        draw_ellipse(&mut pixels, width, height, cx, cy, rx, ry, subject);

        // Category-dependent secondary shapes (stripes for even categories,
        // a block for odd ones) give distinct gradient statistics.
        if spec.category.is_multiple_of(2) {
            let stripe = hsv_to_rgb((hue + 40.0) % 360.0, 0.6, 0.7);
            for s in 0..3 {
                let y0 = (height as f32 * (0.15 + 0.25 * s as f32)) as usize;
                draw_rect(
                    &mut pixels,
                    width,
                    height,
                    0,
                    y0,
                    width,
                    (height / 20).max(1),
                    stripe,
                );
            }
        } else {
            let block = hsv_to_rgb((hue + 90.0) % 360.0, 0.7, 0.6);
            draw_rect(
                &mut pixels,
                width,
                height,
                width / 8,
                height * 2 / 3,
                width / 4,
                height / 5,
                block,
            );
        }

        // Sensor noise.
        for px in &mut pixels {
            for c in px.iter_mut() {
                let noise: i16 = rng.gen_range(-8..=8);
                *c = (*c as i16 + noise).clamp(0, 255) as u8;
            }
        }

        Image {
            width,
            height,
            pixels,
        }
    }

    /// Grayscale luma of pixel `(x, y)`.
    #[inline]
    pub fn luma(&self, x: usize, y: usize) -> f32 {
        let [r, g, b] = self.pixels[y * self.width + x];
        0.299 * r as f32 + 0.587 * g as f32 + 0.114 * b as f32
    }

    /// Simulated compressed byte size.
    ///
    /// Real photo archives have heavy-tailed file sizes driven by detail
    /// (edge energy) and noise. The model is
    /// `bytes = base + k_edge · Σ|∇luma| + k_noise`, producing sizes in the
    /// tens-of-kilobytes range typical of web product thumbnails (and
    /// matching the paper's ~50 KB/photo dataset scale).
    pub fn simulated_jpeg_bytes(&self) -> u64 {
        let mut edge_energy = 0.0f64;
        for y in 0..self.height {
            for x in 0..self.width.saturating_sub(1) {
                edge_energy += (self.luma(x + 1, y) - self.luma(x, y)).abs() as f64;
            }
        }
        for y in 0..self.height.saturating_sub(1) {
            for x in 0..self.width {
                edge_energy += (self.luma(x, y + 1) - self.luma(x, y)).abs() as f64;
            }
        }
        let per_pixel = edge_energy / (self.width * self.height).max(1) as f64;
        let base = 4_000.0;
        let scale = (self.width * self.height) as f64 / 1024.0;
        (base + scale * per_pixel * 90.0) as u64
    }
}

/// HSV → RGB (h in degrees, s/v in `[0,1]`).
pub fn hsv_to_rgb(h: f32, s: f32, v: f32) -> [u8; 3] {
    let h = h.rem_euclid(360.0);
    let c = v * s;
    let x = c * (1.0 - ((h / 60.0) % 2.0 - 1.0).abs());
    let m = v - c;
    let (r, g, b) = match (h / 60.0) as u32 {
        0 => (c, x, 0.0),
        1 => (x, c, 0.0),
        2 => (0.0, c, x),
        3 => (0.0, x, c),
        4 => (x, 0.0, c),
        _ => (c, 0.0, x),
    };
    [
        ((r + m) * 255.0) as u8,
        ((g + m) * 255.0) as u8,
        ((b + m) * 255.0) as u8,
    ]
}

#[allow(clippy::too_many_arguments)]
fn draw_ellipse(
    pixels: &mut [[u8; 3]],
    width: usize,
    height: usize,
    cx: f32,
    cy: f32,
    rx: f32,
    ry: f32,
    color: [u8; 3],
) {
    for y in 0..height {
        for x in 0..width {
            let dx = (x as f32 - cx) / rx;
            let dy = (y as f32 - cy) / ry;
            if dx * dx + dy * dy <= 1.0 {
                pixels[y * width + x] = color;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn draw_rect(
    pixels: &mut [[u8; 3]],
    width: usize,
    height: usize,
    x0: usize,
    y0: usize,
    w: usize,
    h: usize,
    color: [u8; 3],
) {
    for y in y0..(y0 + h).min(height) {
        for x in x0..(x0 + w).min(width) {
            pixels[y * width + x] = color;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_deterministic() {
        let spec = ImageSpec::new(3, [0.2, 0.5, 0.1, 0.8], 99);
        let a = Image::render(&spec, 32, 32);
        let b = Image::render(&spec, 32, 32);
        assert_eq!(a, b);
    }

    #[test]
    fn different_noise_seeds_differ() {
        let a = Image::render(&ImageSpec::new(3, [0.2, 0.5, 0.1, 0.8], 1), 32, 32);
        let b = Image::render(&ImageSpec::new(3, [0.2, 0.5, 0.1, 0.8], 2), 32, 32);
        assert_ne!(a, b);
    }

    #[test]
    fn different_categories_differ_strongly() {
        let a = Image::render(&ImageSpec::new(0, [0.5; 4], 7), 32, 32);
        let b = Image::render(&ImageSpec::new(17, [0.5; 4], 7), 32, 32);
        let diff: u64 = a
            .pixels
            .iter()
            .zip(&b.pixels)
            .map(|(pa, pb)| {
                pa.iter()
                    .zip(pb)
                    .map(|(&x, &y)| (x as i32 - y as i32).unsigned_abs() as u64)
                    .sum::<u64>()
            })
            .sum();
        // Average per-channel difference well above the ±8 noise floor.
        assert!(
            diff / (32 * 32 * 3) > 20,
            "avg diff {}",
            diff / (32 * 32 * 3)
        );
    }

    #[test]
    fn jpeg_size_grows_with_detail() {
        // A flat image (tiny attributes, dark) vs a busy striped one.
        let flat = Image {
            width: 32,
            height: 32,
            pixels: vec![[128, 128, 128]; 1024],
        };
        let busy = Image::render(&ImageSpec::new(2, [0.9, 0.9, 0.5, 0.9], 5), 32, 32);
        assert!(busy.simulated_jpeg_bytes() > flat.simulated_jpeg_bytes());
        assert!(flat.simulated_jpeg_bytes() >= 4_000);
    }

    #[test]
    fn hsv_primaries() {
        assert_eq!(hsv_to_rgb(0.0, 1.0, 1.0), [255, 0, 0]);
        assert_eq!(hsv_to_rgb(120.0, 1.0, 1.0), [0, 255, 0]);
        assert_eq!(hsv_to_rgb(240.0, 1.0, 1.0), [0, 0, 255]);
        // Grayscale when saturation is 0.
        let [r, g, b] = hsv_to_rgb(200.0, 0.0, 0.5);
        assert_eq!(r, g);
        assert_eq!(g, b);
    }

    #[test]
    fn luma_bounds() {
        let img = Image::render(&ImageSpec::new(1, [0.1; 4], 3), 16, 16);
        for y in 0..16 {
            for x in 0..16 {
                let l = img.luma(x, y);
                assert!((0.0..=255.0).contains(&l));
            }
        }
    }
}
