//! The XYZ landing-page scenario (the paper's running example): hundreds of
//! weighted query-derived landing pages share a small fast-access image
//! cache. Reproduces the Section 5.3 "budget scenarios in practice"
//! discussion — a budget of roughly 4% of the archive, where PHOcus's edge
//! over the greedy baselines is largest.
//!
//! ```text
//! cargo run -p par-examples --release --bin ecommerce_landing_pages
//! ```

use par_datasets::{generate_ecommerce, EcConfig, EcDomain};
use phocus::report::render_suite;
use phocus::{run_suite, SuiteConfig};

fn main() {
    // The Electronics domain: queries → landing pages via the BM25 engine.
    let mut cfg = EcConfig::small(EcDomain::Electronics, 42);
    cfg.catalog_size = 2_000;
    cfg.num_queries = 60;
    let universe = generate_ecommerce(&cfg);
    println!(
        "{}: {} photos ({:.1} MB archive), {} landing pages",
        universe.name,
        universe.num_photos(),
        universe.total_cost() as f64 / 1e6,
        universe.num_subsets()
    );

    // The paper's practical scenario: the image cache is ~4% of the archive
    // (2 MB out of ~50 MB in their Electronics deployment).
    let small_budget = universe.total_cost() / 25;
    println!(
        "\n--- small-budget scenario: {:.1} MB (~4% of archive) ---",
        small_budget as f64 / 1e6
    );
    let result = run_suite(&universe, small_budget, &SuiteConfig::default()).unwrap();
    print!("{}", render_suite(&result));
    for e in &result.entries {
        println!(
            "{:<12} reaches {:>5.1}% of total quality",
            e.algo.name(),
            100.0 * e.quality / result.max_score
        );
    }

    // A comfortable budget for contrast: differences shrink as the budget
    // approaches the archive size (Figures 5a–5c).
    let large_budget = universe.total_cost() / 2;
    println!(
        "\n--- comfortable budget: {:.1} MB (50% of archive) ---",
        large_budget as f64 / 1e6
    );
    let result = run_suite(&universe, large_budget, &SuiteConfig::default()).unwrap();
    print!("{}", render_suite(&result));
}
