//! Fixture: direct output and a panicking placeholder in library code.

pub fn report(x: u32) {
    println!("x = {x}");
}

pub fn later() {
    todo!()
}
