//! Round-trip fidelity of the `phocus-pack` persistent instance format.
//!
//! The pack loader's whole value proposition is that a loaded instance is
//! *indistinguishable* from the instance it was packed from — same arena
//! bytes, same fused weights, same component labels — so every downstream
//! transcript (evaluator kernels, both greedy rules, the sharded driver) is
//! bit-identical, at every thread count. This suite proves that, plus the
//! format's canonicality: one instance, one byte image, pinned by a golden
//! checksum.

use par_algo::{main_algorithm_packed, main_algorithm_sharded, sharded_lazy_greedy, GreedyRule};
use par_core::fixtures::{random_instance, RandomInstanceConfig, SplitMix64};
use par_core::{fnv1a64, pack_instance, unpack_instance, Evaluator, Instance, PhotoId, SubsetId};
use par_exec::Parallelism;
use proptest::prelude::*;

/// FNV-1a, 64-bit: tiny, stable, dependency-free transcript hashing.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
    fn f64(&mut self, v: f64) {
        self.write(&v.to_bits().to_le_bytes());
    }
}

/// A deterministic evaluator workout — batch gains, an add/remove schedule,
/// per-subset probes — folded into one hash. Run on the fresh evaluator and
/// on the pack-loaded one, the hashes must match bit for bit.
fn evaluator_workout(mut ev: Evaluator<'_>, num_photos: usize, num_subsets: usize) -> u64 {
    let mut h = Fnv::new();
    let all: Vec<PhotoId> = (0..num_photos as u32).map(PhotoId).collect();
    for g in ev.batch_gains(&all) {
        h.f64(g);
    }
    let mut rng = SplitMix64::new(0xAACC ^ num_photos as u64);
    for step in 0..30u64 {
        let p = PhotoId(rng.next_below(num_photos) as u32);
        if step % 6 == 5 && ev.num_selected() > 0 {
            let victim = ev.selected_ids()[rng.next_below(ev.num_selected())];
            h.f64(ev.remove(victim));
        } else {
            h.f64(ev.add(p));
        }
        h.f64(ev.score());
    }
    for q in 0..num_subsets {
        h.f64(ev.subset_score(SubsetId(q as u32)));
    }
    h.0
}

fn fixture(seed: u64, photos: usize, subsets: usize, budget_fraction: f64) -> Instance {
    random_instance(
        seed,
        &RandomInstanceConfig {
            photos,
            subsets,
            subset_size: (2, 7),
            cost_range: (100, 900),
            budget_fraction,
            required_prob: 0.05,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// pack → load reproduces the evaluator transcript bit for bit: the
    /// loaded layout's fused weights and arena geometry are the ones a fresh
    /// `Evaluator::new` would derive.
    #[test]
    fn loaded_evaluator_transcript_is_bit_identical(
        seed in any::<u64>(), photos in 8usize..48, subsets in 3usize..14,
    ) {
        let inst = fixture(seed, photos, subsets, 0.4);
        let loaded = unpack_instance(&pack_instance(&inst).expect("packable")).expect("valid pack must load");
        let fresh = evaluator_workout(Evaluator::new(&inst), photos, subsets);
        let packed = evaluator_workout(
            Evaluator::with_layout(&loaded.instance, &loaded.layout),
            photos,
            subsets,
        );
        prop_assert_eq!(fresh, packed, "evaluator transcript diverged after pack round-trip");
    }

    /// Both greedy rules and the full Algorithm 1 driver agree between the
    /// original and the loaded instance: same selection, same score bits.
    #[test]
    fn loaded_solver_outcomes_are_bit_identical(
        seed in any::<u64>(), photos in 8usize..48, subsets in 3usize..14,
    ) {
        let inst = fixture(seed, photos, subsets, 0.3);
        let loaded = unpack_instance(&pack_instance(&inst).expect("packable")).expect("valid pack must load");

        for rule in [GreedyRule::UnitCost, GreedyRule::CostBenefit] {
            let a = sharded_lazy_greedy(&inst, rule);
            let b = sharded_lazy_greedy(&loaded.instance, rule);
            prop_assert_eq!(a.selected, b.selected);
            prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
        }

        let a = main_algorithm_sharded(&inst);
        let mut scratch = par_algo::SolveScratch::default();
        let b = main_algorithm_packed(&loaded.instance, loaded.labels.clone(), &mut scratch);
        prop_assert_eq!(a.best.selected, b.best.selected);
        prop_assert_eq!(a.best.score.to_bits(), b.best.score.to_bits());
        prop_assert_eq!(a.best.cost, b.best.cost);
        prop_assert_eq!(a.winner, b.winner);
    }

    /// Packing is deterministic: same instance, same bytes — including after
    /// a load round-trip (`pack(load(pack(x))) == pack(x)`), so the format
    /// is canonical and `cmp` in CI is a complete determinism check.
    #[test]
    fn packing_is_canonical(
        seed in any::<u64>(), photos in 8usize..40, subsets in 3usize..12,
    ) {
        let inst = fixture(seed, photos, subsets, 0.5);
        let once = pack_instance(&inst).expect("packable");
        let twice = pack_instance(&inst).expect("packable");
        prop_assert_eq!(&once, &twice, "two packs of one instance differ");
        let loaded = unpack_instance(&once).expect("valid pack must load");
        let repacked = pack_instance(&loaded.instance).expect("packable");
        prop_assert_eq!(&once, &repacked, "re-pack after load drifted");
    }
}

/// The solver equivalence must hold at every worker-pool size — the loaded
/// instance feeds the same chunk-assignment arithmetic as the fresh one.
#[test]
fn loaded_solves_match_at_every_thread_count() {
    let inst = fixture(0xD1CE_9ACC, 60, 18, 0.35);
    let loaded = unpack_instance(&pack_instance(&inst).expect("packable")).expect("valid pack must load");
    for threads in [1usize, 2, 8] {
        let prev = Parallelism::with_threads(threads).install_global();
        let a = main_algorithm_sharded(&inst);
        let mut scratch = par_algo::SolveScratch::default();
        let b = main_algorithm_packed(&loaded.instance, loaded.labels.clone(), &mut scratch);
        prev.install_global();
        assert_eq!(a.best.selected, b.best.selected, "threads={threads}");
        assert_eq!(
            a.best.score.to_bits(),
            b.best.score.to_bits(),
            "threads={threads}"
        );
        assert_eq!(a.winner, b.winner, "threads={threads}");
    }
}

/// The pinned golden checksum of one fixed-seed pack: any byte-level drift
/// in the format — field order, endianness, section layout, header — fails
/// here even if round-trips still pass. Regenerate with
/// `PRINT_PACK_GOLDEN=1 cargo test -p integration-tests pack_golden -- --nocapture`.
const PACK_GOLDEN: u64 = 0x3e83da58f7c07e3b;

#[test]
fn pack_golden_checksum_is_pinned() {
    let inst = fixture(0x9ACC_601D, 32, 10, 0.4);
    let sum = fnv1a64(&pack_instance(&inst).expect("packable"));
    if std::env::var("PRINT_PACK_GOLDEN").is_ok() {
        println!("pack golden: 0x{sum:016x}");
    }
    assert_eq!(
        sum, PACK_GOLDEN,
        "pack byte image drifted from the pinned golden checksum"
    );
}
