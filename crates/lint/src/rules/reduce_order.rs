//! `reduce-order`: float accumulation reached from parallel fan-out must
//! merge in index order.
//!
//! Floating-point addition is not associative; the determinism guarantee
//! (same input → same archive, DESIGN.md §4) requires every reduction over
//! parallel results to combine them in *index order*, not completion order.
//! The par-exec entry points already return index-ordered `Vec`s and
//! `par_sum_f64` reduces its per-thread partials in thread order, so the
//! remaining hazard is accumulation *inside* the fanned-out work:
//!
//! * a closure passed to a fan-out entry point mutating captured state or
//!   the dynamic-dispatch scratch (`|scratch, i| { scratch.acc += … }`) —
//!   dynamic shards are handed out in claim order, so any compound assign
//!   to scratch or captured state is order-dependent regardless of its
//!   type;
//! * a crate-local function reached from such a closure folding into
//!   `&mut` state — flagged only with lexical *float* evidence (a float
//!   literal, `as f64`, an `f32`/`f64` token, or a float-hinted base),
//!   because integer accumulation (`self.stats.calls += 1` under an atomic
//!   or per-item counter) is associative and commutative.
//!
//! Envelope: cross-crate callees, closures passed through variables
//! (`&f`), and `sum()`/`fold()` over unordered iterators outside a fan-out
//! cone are not followed — the entry-point layer (par-exec's own ordered
//! merges, rule-checked here at the source) is the enforcement point.
//! Suppression: `// phocus-lint: allow(reduce-order) — reason`.

use crate::callgraph::{CrateGraph, FnId};
use crate::context::FileContext;
use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::scope::{literal_hint, FileScopes};
use std::collections::{BTreeMap, BTreeSet};

/// The par-exec fan-out entry points (free functions and methods).
const FAN_OUT: &[&str] = &[
    "par_map_indexed",
    "par_map_indexed_with",
    "par_map_slice",
    "par_map_slice_with",
    "par_map_dynamic",
    "par_map_dynamic_with",
    "par_sum_f64",
];

/// Forward-matches the group opened at `open`; returns the index of its
/// closer (or `code.len()` when unterminated).
fn match_close(code: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in code.iter().enumerate().skip(open) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    code.len()
}

/// Whether a closure literal's opening `|` can start after this token.
/// Deliberately excludes `|` itself so the second bar of a logical-or is
/// never taken for a closure head.
fn closure_start_after(t: &Tok) -> bool {
    (t.kind == TokKind::Punct
        && matches!(
            t.text.as_str(),
            "(" | "," | "=" | "{" | ";" | ">" | "<" | "+" | "-" | "*" | "/" | "&" | ":"
        ))
        || (t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "move" | "return" | "else" | "match" | "in"))
}

/// A closure literal found in a fan-out argument list.
struct Closure {
    params: Vec<String>,
    /// Body token range, half-open.
    body: (usize, usize),
}

/// Extracts top-level closure literals from the argument range
/// `(lo, hi)` (exclusive of the delimiters).
fn parse_closures(code: &[Tok], lo: usize, hi: usize) -> Vec<Closure> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut j = lo;
    while j < hi {
        let t = &code[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
            j += 1;
            continue;
        }
        if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            j += 1;
            continue;
        }
        let head = depth == 0
            && t.is_punct('|')
            && j > 0
            && closure_start_after(&code[j - 1]);
        if !head {
            j += 1;
            continue;
        }
        // Parameter list: idents up to the closing `|`, skipping `mut` and
        // type-annotation tails.
        let mut params = Vec::new();
        let mut k = j + 1;
        let mut after_colon = false;
        while k < hi && !code[k].is_punct('|') {
            let p = &code[k];
            if p.is_punct(',') {
                after_colon = false;
            } else if p.is_punct(':') {
                after_colon = true;
            } else if p.kind == TokKind::Ident && !after_colon && !p.is_ident("mut") {
                params.push(p.text.clone());
            }
            k += 1;
        }
        // Body: a brace group (possibly past a `-> T`), else the expression
        // up to the next top-level `,` or the end of the argument list.
        let mut b = k + 1;
        let mut budget = 8usize;
        while b < hi && budget > 0 && !code[b].is_punct('{') && !code[b].is_punct(',') {
            b += 1;
            budget -= 1;
        }
        let body = if b < hi && code[b].is_punct('{') {
            (b, match_close(code, b))
        } else {
            let mut e = k + 1;
            let mut d = 0i32;
            while e < hi {
                let t2 = &code[e];
                if t2.is_punct('(') || t2.is_punct('[') || t2.is_punct('{') {
                    d += 1;
                } else if t2.is_punct(')') || t2.is_punct(']') || t2.is_punct('}') {
                    d -= 1;
                } else if d == 0 && t2.is_punct(',') {
                    break;
                }
                e += 1;
            }
            (k, e)
        };
        out.push(Closure { params, body });
        j = body.1.max(k + 1);
    }
    out
}

/// A compound assignment operator (`+=`, `-=`, `*=`, `/=`) at `j`.
fn compound_assign_at(code: &[Tok], j: usize) -> Option<char> {
    let t = &code[j];
    if t.kind != TokKind::Punct {
        return None;
    }
    let op = t.text.chars().next()?;
    if !matches!(op, '+' | '-' | '*' | '/') {
        return None;
    }
    let eq = code.get(j + 1)?;
    if eq.is_punct('=') && eq.line == t.line && eq.col == t.col + 1 {
        Some(op)
    } else {
        None
    }
}

/// Walks left from a compound-assign operator to the root identifier of
/// its place expression (`self.stats.n` → `self`, `cov[i]` → `cov`,
/// `*acc` → `acc`).
fn assign_base(code: &[Tok], op_idx: usize, lo: usize) -> Option<String> {
    let mut p = op_idx.checked_sub(1)?;
    loop {
        if p < lo {
            return None;
        }
        let t = &code[p];
        if t.is_punct(']') || t.is_punct(')') {
            // Match back over an index or grouping.
            let closer = t.text.chars().next().unwrap_or(')');
            let opener = if closer == ']' { '[' } else { '(' };
            let mut depth = 0i32;
            loop {
                if code[p].is_punct(closer) {
                    depth += 1;
                } else if code[p].is_punct(opener) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                p = p.checked_sub(1)?;
            }
            p = p.checked_sub(1)?;
            continue;
        }
        if t.kind == TokKind::Ident {
            if p > lo && code[p - 1].is_punct('.') {
                p = p.checked_sub(2)?;
                continue;
            }
            return Some(t.text.clone());
        }
        return None;
    }
}

/// Names bound by `let`/`for` inside a closure body (one lexical level,
/// good enough for the strict scan).
fn body_bindings(code: &[Tok], range: (usize, usize)) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let hi = range.1.min(code.len());
    let mut j = range.0;
    while j < hi {
        if code[j].is_ident("let") || code[j].is_ident("for") {
            let mut k = j + 1;
            let mut budget = 8usize;
            while k < hi && budget > 0 {
                let t = &code[k];
                if t.is_punct('=') || t.is_punct(':') || t.is_ident("in") {
                    break;
                }
                if t.kind == TokKind::Ident && !t.is_ident("mut") {
                    out.insert(t.text.clone());
                }
                k += 1;
                budget -= 1;
            }
            j = k;
            continue;
        }
        j += 1;
    }
    out
}

/// Lexical float evidence for a compound assignment: a float-hinted base,
/// or a float literal / `f32`/`f64` token in the statement's right side.
fn float_evidence(
    code: &[Tok],
    op_idx: usize,
    end: usize,
    base_hint: Option<&'static str>,
) -> bool {
    if matches!(base_hint, Some("f32") | Some("f64")) {
        return true;
    }
    let mut depth = 0i32;
    let hi = end.min(code.len());
    for t in code.iter().take(hi).skip(op_idx + 2).take(40) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return false;
            }
        } else if depth == 0 && t.is_punct(';') {
            return false;
        } else if t.is_ident("f64")
            || t.is_ident("f32")
            || (t.kind == TokKind::Num
                && matches!(literal_hint(&t.text), Some("f64") | Some("f32")))
        {
            return true;
        }
    }
    false
}

/// Runs the rule over one crate: `files` and `scopes` are parallel slices.
pub fn check(
    files: &[FileContext<'_>],
    scopes: &[FileScopes],
    graph: &CrateGraph,
    out: &mut Vec<Diagnostic>,
) {
    // Transitive roots: fn name → first witness description.
    let mut roots: BTreeMap<FnId, String> = BTreeMap::new();

    for ctx in files {
        let code = &ctx.code;
        for j in 0..code.len() {
            let t = &code[j];
            if t.kind != TokKind::Ident || !FAN_OUT.contains(&t.text.as_str()) {
                continue;
            }
            if !code.get(j + 1).is_some_and(|n| n.is_punct('(')) {
                continue;
            }
            if ctx.in_test_region(t.line) {
                continue;
            }
            let fan = t.text.clone();
            let args_close = match_close(code, j + 1);
            let closures = parse_closures(code, j + 2, args_close);
            let n = closures.len();
            let is_dynamic = fan.contains("dynamic");
            for (ci, cl) in closures.iter().enumerate() {
                // In the dynamic variants the work closure comes last and
                // its first parameter is the claim-ordered scratch.
                let scratch = (is_dynamic && ci + 1 == n)
                    .then(|| cl.params.first().cloned())
                    .flatten();
                let mut bound: BTreeSet<String> = cl.params.iter().cloned().collect();
                bound.extend(body_bindings(code, cl.body));
                let (blo, bhi) = cl.body;
                let bhi = bhi.min(code.len());
                for k in blo..bhi {
                    if ctx.in_test_region(code[k].line) {
                        continue;
                    }
                    let Some(op) = compound_assign_at(code, k) else {
                        continue;
                    };
                    let Some(base) = assign_base(code, k, blo) else {
                        continue;
                    };
                    let tok = &code[k];
                    if scratch.as_deref() == Some(base.as_str()) {
                        ctx.emit(
                            out,
                            "reduce-order",
                            tok.line,
                            tok.col,
                            format!(
                                "accumulation `{base} {op}=` into the dynamic scratch of \
                                 `{fan}`; shards are handed out in claim order, so this \
                                 merge is nondeterministic — return per-index values and \
                                 reduce sequentially, or `allow(reduce-order)` with a \
                                 rationale"
                            ),
                        );
                    } else if base == "self" || !bound.contains(&base) {
                        ctx.emit(
                            out,
                            "reduce-order",
                            tok.line,
                            tok.col,
                            format!(
                                "order-sensitive accumulation `{base} {op}=` into captured \
                                 state inside a `{fan}` closure; parallel fan-out must \
                                 merge in index order — return per-index values and reduce \
                                 sequentially, or `allow(reduce-order)` with a rationale"
                            ),
                        );
                    }
                }
                // Crate-local callees of this closure seed the transitive scan.
                for name in crate::callgraph::callee_names(code, cl.body, &graph.by_name) {
                    for &id in graph.by_name.get(&name).into_iter().flatten() {
                        roots.entry(id).or_insert_with(|| {
                            format!("`{fan}` at {}:{}", ctx.spec.path, t.line)
                        });
                    }
                }
            }
        }
    }

    if roots.is_empty() {
        return;
    }
    let root_ids: Vec<FnId> = roots.keys().copied().collect();
    let parent = graph.reachable(&root_ids);
    for &node in parent.keys() {
        let (fi, gi) = node;
        let ctx = &files[fi];
        let item = &scopes[fi].fns[gi];
        if ctx.in_test_region(item.fn_line) {
            continue;
        }
        // Witness chain back to a seeding root.
        let mut chain = vec![item.name.clone()];
        let mut cur = node;
        loop {
            let up = parent.get(&cur).copied().unwrap_or(cur);
            if up == cur {
                break;
            }
            cur = up;
            chain.push(scopes[cur.0].fns[cur.1].name.clone());
        }
        chain.reverse();
        let witness = roots
            .get(&cur)
            .cloned()
            .unwrap_or_else(|| "a fan-out call".to_string());

        let (open, close) = item.body;
        let end = close.min(ctx.code.len());
        for k in open + 1..end {
            if ctx.in_test_region(ctx.code[k].line) {
                continue;
            }
            if scopes[fi]
                .fn_of(k)
                .is_some_and(|inner| inner.body != item.body)
            {
                continue;
            }
            let Some(op) = compound_assign_at(&ctx.code, k) else {
                continue;
            };
            let Some(base) = assign_base(&ctx.code, k, open + 1) else {
                continue;
            };
            let suspect = base == "self"
                || item.mut_ref_params.contains(&base)
                || !item.bound.contains(&base);
            if !suspect {
                continue;
            }
            let hint = item.hints.get(&base).copied();
            if !float_evidence(&ctx.code, k, end, hint) {
                continue;
            }
            let tok = &ctx.code[k];
            ctx.emit(
                out,
                "reduce-order",
                tok.line,
                tok.col,
                format!(
                    "float accumulation `{base} {op}=` in `{}`, reached from {witness} \
                     via {}; results merged outside index order are nondeterministic — \
                     restructure to an index-ordered reduce, or `allow(reduce-order)` \
                     with a rationale",
                    item.name,
                    chain.join(" → ")
                ),
            );
        }
    }
}
