#!/usr/bin/env bash
# Full local CI: build, test both feature configurations, lint.
#
#   ./ci.sh            # everything
#
# The `parallel` feature is default-on; the --no-default-features pass
# proves the serial fallback builds and produces identical results (the
# determinism suite pins golden transcript hashes shared by both builds).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

# Static analysis gates the test steps: determinism (float-ord, hash-iter,
# wall-clock, reduce-order), layering (crate-dag, parallel-cfg), hygiene
# (no-print, no-unsafe), and hot-path/pack-safety (alloc-hot, cast-bounds)
# regressions fail fast with file:line spans. See DESIGN.md §12 and §17.
echo "==> phocus-lint (workspace static analysis)"
cargo run --release -q -p par-lint

# Schema drift gate: the registry the --json v2 schema exposes must match
# the checked-in rule list exactly (order included) — a rule added, renamed,
# or dropped without updating lint-rules.txt (and the consumers reading the
# JSON) fails here, not in a downstream dashboard.
echo "==> phocus-lint --json schema + rule-registry drift check"
cargo run --release -q -p par-lint -- --json > /tmp/phocus_lint.json
head -c 32 /tmp/phocus_lint.json | grep -q '^{"version":2,"rules":\[' \
  || { echo "phocus-lint --json is not schema v2" >&2; exit 1; }
cargo run --release -q -p par-lint -- rules | diff - lint-rules.txt

echo "==> cargo test (default features: parallel)"
cargo test -q

echo "==> cargo test (--no-default-features: serial fallback)"
cargo test -q --no-default-features

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo clippy --all-targets --no-default-features -- -D warnings"
cargo clippy --all-targets --no-default-features -- -D warnings

# Panic-freedom gate: library and binary code must not contain unwrap/expect/
# panic! on any path (internal invariants use assert!/unreachable! instead,
# data-dependent failures return typed errors). Tests, benches, the examples
# crate, and the vendored shims are exempt — --lib --bins skips #[cfg(test)].
# The crate list is derived from workspace metadata via `phocus-lint
# gate-crates`, so a newly added library crate is gated automatically;
# phocus-lint's ci-gate rule cross-checks this stays wired up.
PKG_FLAGS=()
for c in $(cargo run --release -q -p par-lint -- gate-crates); do
  PKG_FLAGS+=(-p "$c")
done
echo "==> clippy panic-freedom gate (library + bins)"
cargo clippy "${PKG_FLAGS[@]}" --lib --bins -- \
  -D warnings -D clippy::unwrap_used -D clippy::expect_used -D clippy::panic

echo "==> no-panic fuzz gate (fixed seeds, bounded corpus)"
cargo test -q -p integration-tests --test no_panic

echo "==> gain-kernel layout bench (quick mode, smoke)"
CRITERION_QUICK=1 cargo bench -p par-bench --bench layout

echo "==> component-sharded solver bench (quick mode, smoke)"
CRITERION_QUICK=1 cargo bench -p par-bench --bench shard

echo "==> multi-tenant fleet bench (quick mode, smoke + engine/naive equivalence assert)"
CRITERION_QUICK=1 cargo bench -p par-bench --bench fleet

echo "==> incremental archiver bench (quick mode, smoke + per-epoch bit-identity assert)"
CRITERION_QUICK=1 cargo bench -p par-bench --bench incremental

echo "==> catalog cold-start bench (quick mode, smoke + pack/text solve bit-identity assert)"
CRITERION_QUICK=1 cargo bench -p par-bench --bench catalog

echo "==> multi-action solver bench (quick mode, smoke + sharded/global transcript assert)"
CRITERION_QUICK=1 cargo bench -p par-bench --bench multiaction

# Pack determinism gate: the phocus-pack format is canonical — packing the
# same dataset twice must produce byte-identical images — and a written
# image must pass the reader's full validation (header, section table,
# checksums, cross-section bounds).
echo "==> pack determinism gate (phocus pack, two runs + cmp + --check)"
PACK_ARGS=(pack --dataset p1k --budget-mb 1)
cargo run --release -q -p phocus -- "${PACK_ARGS[@]}" --out /tmp/phocus_pack_a.pack
cargo run --release -q -p phocus -- "${PACK_ARGS[@]}" --out /tmp/phocus_pack_b.pack
cmp /tmp/phocus_pack_a.pack /tmp/phocus_pack_b.pack
cargo run --release -q -p phocus -- pack --check /tmp/phocus_pack_a.pack

# Churn-replay determinism gate: the same epoch session, replayed twice with
# --check (every epoch verified bit-identical to a from-scratch solve
# in-process), must print byte-identical reports apart from the wall-clock
# ms= field. Catches nondeterminism that only shows up across process runs
# (hash-iteration order, uninitialized reuse) which the in-process goldens
# cannot see.
echo "==> churn-replay determinism gate (phocus epochs --check, two runs)"
EPOCH_ARGS=(epochs --dataset p1k --budget-mb 1 --epochs 6 --churn 0.02 --check)
cargo run --release -q -p phocus -- "${EPOCH_ARGS[@]}" | sed 's/\tms=[0-9.]*//' > /tmp/phocus_epochs_a.txt
cargo run --release -q -p phocus -- "${EPOCH_ARGS[@]}" | sed 's/\tms=[0-9.]*//' > /tmp/phocus_epochs_b.txt
diff /tmp/phocus_epochs_a.txt /tmp/phocus_epochs_b.txt
grep -q '^session.*failed=0$' /tmp/phocus_epochs_a.txt

# Compress determinism gate: multi-action solves must not depend on the
# solver build — the sharded and global paths on the same expanded
# instance must print byte-identical reports and retain the same actions.
echo "==> compress determinism gate (phocus compress, sharded vs --no-sharding)"
COMPRESS_ARGS=(compress --dataset p1k --budget-mb 1 --ladder 0.85:0.35,0.55:0.10)
cargo run --release -q -p phocus -- "${COMPRESS_ARGS[@]}" --out /tmp/phocus_actions_a.tsv | grep -v '^wrote ' > /tmp/phocus_compress_a.txt
cargo run --release -q -p phocus -- "${COMPRESS_ARGS[@]}" --no-sharding --out /tmp/phocus_actions_b.tsv | grep -v '^wrote ' > /tmp/phocus_compress_b.txt
diff /tmp/phocus_compress_a.txt /tmp/phocus_compress_b.txt
diff /tmp/phocus_actions_a.tsv /tmp/phocus_actions_b.tsv
grep -q 'compressed renditions' /tmp/phocus_compress_a.txt

echo "==> bench guard (recorded BENCH_*.json baselines)"
cargo run --release -q -p par-bench --bin bench_guard

echo "CI OK"
