//! Epoch deltas: incremental mutation of a live PAR instance.
//!
//! Production archives churn continuously — photos arrive and are purged,
//! query workloads drift, retention policy and budgets change — while the
//! instance between two consecutive solves is mostly unchanged. An
//! [`EpochDelta`] captures one epoch's worth of changes against a live
//! [`Instance`] and [`EpochDelta::apply`] produces:
//!
//! * the **post-delta instance**, rebuilt with order-preserving photo and
//!   subset id compaction (removed entries drop out, survivors keep their
//!   relative order, additions append) — so every cached quantity that
//!   depends only on iteration *order* (membership walks, CSR row order,
//!   smaller-id tie-breaks) stays bit-valid;
//! * the **post-delta shard labeling**, maintained incrementally: only the
//!   components actually touched by the delta are re-clustered, clean
//!   components carry their labels through, and the resulting
//!   [`ShardLabels`] is *identical* — same partition, same shard numbers —
//!   to a from-scratch [`shard_labels`] of the post-delta instance;
//! * **dirty marks** at photo and shard granularity, which the incremental
//!   solver in `par-algo` uses to decide which per-shard CELF stream
//!   transcripts can be replayed and which must be re-run.
//!
//! # Dirty-marking rules
//!
//! A photo's *component* is its shard, except that members of the merged
//! singleton pool are treated as one-photo components of their own (the pool
//! is an artifact of shard numbering, not of the interaction graph). The
//! delta dirties:
//!
//! * the component of every **removed** photo (its edges vanish, so the
//!   survivors may split);
//! * the components of every **retired** query's members (ditto);
//! * the components of every *existing* member of an **added** query (new
//!   edges may merge them) and every **added** photo;
//! * the component of every photo whose **required** flag flips (the shard's
//!   `S₀` replay state changes);
//! * nothing for a pure **budget** change — budget feasibility is verified
//!   per transcript event at replay time, not cached.
//!
//! No post-delta interaction edge ever connects a clean photo to a dirty
//! one: pre-existing edges lie inside a single old component (marked as a
//! unit) and new edges dirty both endpoints' components. Clean components
//! therefore survive verbatim and the incremental re-labeling only has to
//! run union-find over the dirty photos.
//!
//! Relevance vectors are **never re-normalized** when members are removed:
//! the surviving entries keep their exact bits (mirroring how
//! [`crate::components`] splits queries into fragments), so clean photos'
//! `W·R` products — and hence their cached marginal-gain bits — are
//! preserved. Added queries are normalized exactly like
//! [`crate::InstanceBuilder`] does.

use crate::components::{shard_labels, Dsu, ShardLabels};
use crate::instance::Instance;
use crate::sim::{ContextSim, DenseSim, SparseSim};
use crate::{ModelError, Photo, PhotoId, Result, Subset, SubsetId};
use std::sync::Arc;

/// A photo arriving in an epoch.
#[derive(Debug, Clone)]
pub struct PhotoAdd {
    /// Human-readable label (file name, product title, …).
    pub name: String,
    /// Storage cost in bytes; must be strictly positive.
    pub cost: u64,
    /// Whether policy requires the photo to be retained on arrival.
    pub required: bool,
}

/// A member reference inside an added query: either a photo that already
/// exists (by its **pre-delta** id) or one added by the same delta (by its
/// index into [`EpochDelta::add_photos`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberRef {
    /// An existing photo, identified by its pre-delta [`PhotoId`].
    Existing(PhotoId),
    /// The `k`-th photo of this delta's [`EpochDelta::add_photos`] list.
    New(usize),
}

/// A query arriving in an epoch.
#[derive(Debug, Clone)]
pub struct QueryAdd {
    /// Human-readable label.
    pub label: String,
    /// Importance weight `W(q)`; must be positive and finite.
    pub weight: f64,
    /// Member photos (pre-delta ids or same-delta additions).
    pub members: Vec<MemberRef>,
    /// Raw relevance scores, normalized to sum to 1 at apply time (exactly
    /// like the builder). Empty means uniform relevance.
    pub relevance: Vec<f64>,
    /// Sparse similarity pairs `(i, j, sim)` over *local member positions*
    /// of this query. Out-of-range indices and similarities outside `[0, 1]`
    /// are rejected.
    pub pairs: Vec<(u32, u32, f64)>,
}

/// One epoch's worth of changes to a live instance. All [`PhotoId`] /
/// [`SubsetId`] references are **pre-delta** ids.
///
/// Application order: photo removals (which drop the photo from every query
/// and imply un-requiring it; queries emptied this way auto-retire), query
/// retirements, photo additions, query additions, required-set changes
/// (`unrequire` before `require`), then the budget change.
#[derive(Debug, Clone, Default)]
pub struct EpochDelta {
    /// Photos to purge from the archive.
    pub remove_photos: Vec<PhotoId>,
    /// Queries to retire.
    pub retire_queries: Vec<SubsetId>,
    /// Photos arriving this epoch.
    pub add_photos: Vec<PhotoAdd>,
    /// Queries arriving this epoch.
    pub add_queries: Vec<QueryAdd>,
    /// Photos gaining the policy-retained flag.
    pub require: Vec<PhotoId>,
    /// Photos losing the policy-retained flag.
    pub unrequire: Vec<PhotoId>,
    /// New storage budget, if it changes this epoch.
    pub set_budget: Option<u64>,
}

impl EpochDelta {
    /// Whether the delta changes nothing at all.
    pub fn is_empty(&self) -> bool {
        self.remove_photos.is_empty()
            && self.retire_queries.is_empty()
            && self.add_photos.is_empty()
            && self.add_queries.is_empty()
            && self.require.is_empty()
            && self.unrequire.is_empty()
            && self.set_budget.is_none()
    }

    /// Applies the delta to `inst` (whose current labeling is `labels`),
    /// producing the post-delta instance, the incrementally maintained
    /// labeling, and the dirty marks. See the [module docs](self) for the
    /// exact semantics and invariants.
    pub fn apply(&self, inst: &Instance, labels: &ShardLabels) -> Result<AppliedDelta> {
        debug_assert_eq!(
            labels,
            &shard_labels(inst),
            "stale ShardLabels passed to EpochDelta::apply"
        );
        let n = inst.num_photos();
        let nq = inst.num_subsets();

        // ---- reference validation over the pre-delta instance ----
        let mut removed = vec![false; n];
        for &p in &self.remove_photos {
            if p.index() >= n {
                return Err(ModelError::UnknownPhoto(p));
            }
            removed[p.index()] = true;
        }
        let mut retired = vec![false; nq];
        for &q in &self.retire_queries {
            if q.index() >= nq {
                return Err(ModelError::UnknownSubset(q));
            }
            retired[q.index()] = true;
        }
        for &p in self.require.iter().chain(&self.unrequire) {
            if p.index() >= n || removed[p.index()] {
                return Err(ModelError::UnknownPhoto(p));
            }
        }

        // ---- order-preserving photo compaction ----
        let mut remap: Vec<Option<PhotoId>> = vec![None; n];
        let mut next = 0u32;
        for (p, slot) in remap.iter_mut().enumerate() {
            if !removed[p] {
                *slot = Some(PhotoId(next));
                next += 1;
            }
        }
        let first_new = next;
        for (k, add) in self.add_photos.iter().enumerate() {
            if add.cost == 0 {
                return Err(ModelError::ZeroCostPhoto(PhotoId(first_new + k as u32)));
            }
        }

        // ---- photos and the new ⇄ old id maps ----
        let n_new = (first_new as usize) + self.add_photos.len();
        let mut photos: Vec<Photo> = Vec::with_capacity(n_new);
        let mut origin: Vec<Option<PhotoId>> = Vec::with_capacity(n_new);
        for (p, mapped) in remap.iter().enumerate() {
            if let Some(new_id) = *mapped {
                let old = inst.photo(PhotoId(p as u32));
                photos.push(Photo::new(new_id, old.name.clone(), old.cost));
                origin.push(Some(PhotoId(p as u32)));
            }
        }
        for (k, add) in self.add_photos.iter().enumerate() {
            photos.push(Photo::new(
                PhotoId(first_new + k as u32),
                add.name.clone(),
                add.cost,
            ));
            origin.push(None);
        }
        if photos.is_empty() {
            return Err(ModelError::NoPhotos);
        }
        let mut total: u64 = 0;
        for p in &photos {
            total = total.checked_add(p.cost).ok_or(ModelError::CostOverflow)?;
        }

        // ---- required set ----
        let mut required_flags = vec![false; n_new];
        for &r in inst.required() {
            if let Some(new_id) = remap[r.index()] {
                required_flags[new_id.index()] = true;
            }
        }
        for &p in &self.unrequire {
            if let Some(new_id) = remap[p.index()] {
                required_flags[new_id.index()] = false;
            }
        }
        for &p in &self.require {
            if let Some(new_id) = remap[p.index()] {
                required_flags[new_id.index()] = true;
            }
        }
        for (k, add) in self.add_photos.iter().enumerate() {
            if add.required {
                required_flags[(first_new as usize) + k] = true;
            }
        }
        let required_ids: Vec<PhotoId> = required_flags
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(p, _)| PhotoId(p as u32))
            .collect();
        let required_cost: u64 = required_ids.iter().map(|&r| photos[r.index()].cost).sum();
        let budget = self.set_budget.unwrap_or(inst.budget());
        if required_cost > budget {
            return Err(ModelError::RequiredSetOverBudget {
                required_cost,
                budget,
            });
        }

        // ---- surviving queries: compact members, keep relevance bits ----
        let mut subsets: Vec<Subset> = Vec::new();
        let mut sims: Vec<Arc<ContextSim>> = Vec::new();
        for q in inst.subsets() {
            if retired[q.id.index()] {
                continue;
            }
            let kept: Vec<u32> = q
                .members
                .iter()
                .enumerate()
                .filter(|(_, m)| remap[m.index()].is_some())
                .map(|(pos, _)| pos as u32)
                .collect();
            if kept.is_empty() {
                continue; // every member purged: the query auto-retires
            }
            // phocus-lint: allow(cast-bounds) — surviving queries ≤ old m, and SubsetId is u32
            let id = SubsetId(subsets.len() as u32);
            let map_member = |pos: u32| match remap[q.members[pos as usize].index()] {
                Some(new_id) => new_id,
                None => unreachable!("kept positions survive by construction"),
            };
            if kept.len() == q.members.len() {
                subsets.push(Subset {
                    id,
                    label: q.label.clone(),
                    weight: q.weight,
                    // phocus-lint: allow(cast-bounds) — kept ≤ member count, itself u32-indexed
                    members: (0..kept.len() as u32).map(map_member).collect(),
                    relevance: q.relevance.clone(),
                });
                sims.push(Arc::clone(inst.sim_arc(q.id)));
            } else {
                let members: Vec<PhotoId> = kept.iter().map(|&pos| map_member(pos)).collect();
                let relevance: Arc<[f64]> =
                    kept.iter().map(|&pos| q.relevance[pos as usize]).collect();
                let store = match inst.sim(q.id) {
                    // `kept` is ascending, so the restriction preserves row
                    // order — the bit-identity prerequisite.
                    ContextSim::Sparse(sp) => ContextSim::Sparse(sp.restrict(&kept)),
                    ContextSim::Dense(d) => {
                        ContextSim::Dense(DenseSim::from_local_fn(id, kept.len(), |i, j| {
                            d.sim(kept[i] as usize, kept[j] as usize)
                        })?)
                    }
                    ContextSim::Unit(_) => ContextSim::Unit(kept.len()),
                };
                subsets.push(Subset {
                    id,
                    label: q.label.clone(),
                    weight: q.weight,
                    members,
                    relevance,
                });
                sims.push(Arc::new(store));
            }
        }

        // ---- added queries: builder-style validation and normalization ----
        for qa in &self.add_queries {
            // phocus-lint: allow(cast-bounds) — total query count validated ≤ u32 in pack/build
            let id = SubsetId(subsets.len() as u32);
            if qa.members.is_empty() {
                return Err(ModelError::EmptySubset(id));
            }
            if !qa.weight.is_finite() || qa.weight <= 0.0 {
                return Err(ModelError::InvalidWeight {
                    subset: id,
                    value: qa.weight,
                });
            }
            let mut members = Vec::with_capacity(qa.members.len());
            let mut seen = vec![false; n_new];
            for &m in &qa.members {
                let new_id = match m {
                    MemberRef::Existing(p) => {
                        if p.index() >= n {
                            return Err(ModelError::UnknownPhoto(p));
                        }
                        match remap[p.index()] {
                            Some(new_id) => new_id,
                            None => return Err(ModelError::UnknownPhoto(p)),
                        }
                    }
                    MemberRef::New(k) => {
                        if k >= self.add_photos.len() {
                            return Err(ModelError::UnknownPhoto(PhotoId(
                                first_new.saturating_add(k as u32),
                            )));
                        }
                        PhotoId(first_new + k as u32)
                    }
                };
                if seen[new_id.index()] {
                    return Err(ModelError::DuplicateMember {
                        subset: id,
                        photo: new_id,
                    });
                }
                seen[new_id.index()] = true;
                members.push(new_id);
            }
            let mut relevance = if qa.relevance.is_empty() {
                vec![1.0; members.len()]
            } else {
                qa.relevance.clone()
            };
            if relevance.len() != members.len() {
                return Err(ModelError::RelevanceLengthMismatch {
                    subset: id,
                    members: members.len(),
                    relevances: relevance.len(),
                });
            }
            let mut sum = 0.0;
            for &r in &relevance {
                if !r.is_finite() || r <= 0.0 {
                    return Err(ModelError::InvalidRelevance {
                        subset: id,
                        value: r,
                    });
                }
                sum += r;
            }
            for r in &mut relevance {
                *r /= sum;
            }
            let store = SparseSim::from_pairs(id, members.len(), qa.pairs.iter().copied())?;
            subsets.push(Subset {
                id,
                label: qa.label.as_str().into(),
                weight: qa.weight,
                members,
                relevance: relevance.into(),
            });
            sims.push(Arc::new(ContextSim::Sparse(store)));
        }

        let instance = Instance::assemble(photos, required_ids, subsets, budget, sims);

        // ---- dirty marks on the pre-delta instance ----
        // Component granularity: whole shard for regular shards, single
        // photo for members of the singleton pool.
        let mut dirty_shard_old = vec![false; labels.num_shards()];
        let mut dirty_pool_old = vec![false; n];
        let pool_old = labels.singleton_pool();
        let mark = |p: PhotoId, dirty_shard_old: &mut [bool], dirty_pool_old: &mut [bool]| {
            let s = labels.shard_of(p);
            if pool_old == Some(s) {
                dirty_pool_old[p.index()] = true;
            } else {
                dirty_shard_old[s] = true;
            }
        };
        for &p in &self.remove_photos {
            mark(p, &mut dirty_shard_old, &mut dirty_pool_old);
        }
        for &q in &self.retire_queries {
            for &m in &inst.subset(q).members {
                mark(m, &mut dirty_shard_old, &mut dirty_pool_old);
            }
        }
        for qa in &self.add_queries {
            for &m in &qa.members {
                if let MemberRef::Existing(p) = m {
                    mark(p, &mut dirty_shard_old, &mut dirty_pool_old);
                }
            }
        }
        for &p in self.require.iter().chain(&self.unrequire) {
            mark(p, &mut dirty_shard_old, &mut dirty_pool_old);
        }

        let mut dirty_photos = vec![false; n_new];
        for (p, &o) in origin.iter().enumerate() {
            dirty_photos[p] = match o {
                Some(old) => {
                    let s = labels.shard_of(old);
                    dirty_pool_old[old.index()] || (pool_old != Some(s) && dirty_shard_old[s])
                }
                None => true, // added this epoch
            };
        }

        // ---- incremental re-labeling ----
        let new_labels = relabel(labels, &instance, &origin, &dirty_photos);
        debug_assert_eq!(
            new_labels,
            shard_labels(&instance),
            "incremental relabel diverged from from-scratch shard_labels"
        );
        let mut dirty_shards = vec![false; new_labels.num_shards()];
        for (p, &d) in dirty_photos.iter().enumerate() {
            if d {
                dirty_shards[new_labels.shard_of(PhotoId(p as u32))] = true;
            }
        }

        Ok(AppliedDelta {
            instance,
            labels: new_labels,
            photo_remap: remap,
            photo_origin: origin,
            dirty_photos,
            dirty_shards,
        })
    }
}

/// Applies `delta` to `inst`, computing the labeling from scratch first.
/// Resident callers that hold the labels across epochs use
/// [`EpochDelta::apply`] directly.
pub fn apply_delta(inst: &Instance, delta: &EpochDelta) -> Result<AppliedDelta> {
    delta.apply(inst, &shard_labels(inst))
}

/// Incrementally re-labels the post-delta instance: clean components carry
/// their grouping through, dirty photos are re-clustered with union-find
/// over only the queries that contain a dirty member, and the shard
/// numbering pass reproduces [`shard_labels`]' first-seen-ascending order
/// (with singleton pooling) exactly.
fn relabel(
    old: &ShardLabels,
    new_inst: &Instance,
    origin: &[Option<PhotoId>],
    dirty: &[bool],
) -> ShardLabels {
    let n_new = new_inst.num_photos();
    let pool_old = old.singleton_pool();

    // Union pass restricted to dirty photos. No post-delta edge connects a
    // clean photo to a dirty one (see module docs), so this reconstructs
    // exactly the components that changed.
    let mut dsu = Dsu::new(n_new);
    let mut affected: Vec<bool> = vec![false; new_inst.num_subsets()];
    for (p, &d) in dirty.iter().enumerate() {
        if d {
            // phocus-lint: allow(cast-bounds) — p < n_new, and PhotoId is u32
            for m in new_inst.memberships(PhotoId(p as u32)) {
                affected[m.subset.index()] = true;
            }
        }
    }
    for q in new_inst.subsets() {
        if !affected[q.id.index()] {
            continue;
        }
        match new_inst.sim(q.id) {
            ContextSim::Sparse(sp) => {
                for (pos, &m) in q.members.iter().enumerate() {
                    for &j in sp.neighbors(pos).0 {
                        let other = q.members[j as usize];
                        debug_assert_eq!(
                            dirty[m.index()],
                            dirty[other.index()],
                            "interaction edge crosses the clean/dirty boundary"
                        );
                        if dirty[m.index()] && dirty[other.index()] {
                            dsu.union(m.0, other.0);
                        }
                    }
                }
            }
            _ => {
                // Dense/unit stores couple all members into one clique, so a
                // query with any dirty member has only dirty members.
                debug_assert!(q.members.iter().all(|&m| dirty[m.index()]));
                for w in q.members.windows(2) {
                    dsu.union(w[0].0, w[1].0);
                }
            }
        }
    }

    // Per-old-shard surviving-photo counts: clean shards keep all photos,
    // so the old count is the new component size.
    let mut old_shard_size = vec![0u32; old.num_shards()];
    for &s in old.photo_shards() {
        old_shard_size[s as usize] += 1;
    }

    // Component key of each new photo, plus the component size (needed for
    // singleton detection):
    //   clean, old pool member      → its own one-photo component;
    //   clean, regular old shard s  → the intact old component s;
    //   dirty                       → its DSU root.
    let component_size = |dsu: &mut Dsu, p: usize| -> u32 {
        if dirty[p] {
            // phocus-lint: allow(cast-bounds) — p < n_new, the DSU's own size
            let root = dsu.find(p as u32) as usize;
            dsu.size[root]
        } else {
            match origin[p] {
                Some(old_id) => {
                    let s = old.shard_of(old_id);
                    if pool_old == Some(s) {
                        1
                    } else {
                        old_shard_size[s]
                    }
                }
                None => unreachable!("clean photos always have an origin"),
            }
        }
    };
    let mut singletons = 0usize;
    for p in 0..n_new {
        if component_size(&mut dsu, p) == 1 {
            singletons += 1;
        }
    }
    let merge_singletons = singletons >= 2;

    // First-seen-ascending numbering, mirroring `shard_labels` exactly.
    let mut shard_for_old = vec![u32::MAX; old.num_shards()];
    let mut shard_for_root = vec![u32::MAX; n_new];
    let mut pool_shard = u32::MAX;
    let mut next = 0u32;
    let mut photo_shard = vec![0u32; n_new];
    for p in 0..n_new {
        let shard = if merge_singletons && component_size(&mut dsu, p) == 1 {
            if pool_shard == u32::MAX {
                pool_shard = next;
                next += 1;
            }
            pool_shard
        } else {
            let slot = if dirty[p] {
                // phocus-lint: allow(cast-bounds) — p < n_new, the DSU's own size
                let root = dsu.find(p as u32) as usize;
                &mut shard_for_root[root]
            } else {
                match origin[p] {
                    Some(old_id) => &mut shard_for_old[old.shard_of(old_id)],
                    None => unreachable!("clean photos always have an origin"),
                }
            };
            if *slot == u32::MAX {
                *slot = next;
                next += 1;
            }
            *slot
        };
        photo_shard[p] = shard;
    }

    ShardLabels::from_parts(
        photo_shard,
        next as usize,
        (pool_shard != u32::MAX).then_some(pool_shard as usize),
    )
}

/// The result of applying an [`EpochDelta`]: the post-delta instance, the
/// incrementally maintained labeling, the id maps, and the dirty marks the
/// incremental solver keys its transcript cache on.
#[derive(Debug)]
pub struct AppliedDelta {
    /// The post-delta instance.
    pub instance: Instance,
    /// Post-delta shard labeling, equal to `shard_labels(&instance)`.
    pub labels: ShardLabels,
    /// Pre-delta photo id → post-delta id (`None` = removed).
    pub photo_remap: Vec<Option<PhotoId>>,
    /// Post-delta photo id → pre-delta id (`None` = added this epoch).
    pub photo_origin: Vec<Option<PhotoId>>,
    /// Per post-delta photo: whether its component was touched by the delta.
    pub dirty_photos: Vec<bool>,
    /// Per post-delta shard: whether it contains any dirty photo. The
    /// singleton pool is marked dirty if *any* pooled photo is dirty; the
    /// solver refines pool handling to per-photo granularity.
    pub dirty_shards: Vec<bool>,
}

impl AppliedDelta {
    /// Number of dirty photos in the post-delta instance.
    pub fn num_dirty_photos(&self) -> usize {
        self.dirty_photos.iter().filter(|&&d| d).count()
    }

    /// Number of dirty shards in the post-delta labeling.
    pub fn num_dirty_shards(&self) -> usize {
        self.dirty_shards.iter().filter(|&&d| d).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{random_instance, RandomInstanceConfig};
    use crate::InstanceBuilder;

    fn sparse_fixture(seed: u64) -> Instance {
        random_instance(seed, &RandomInstanceConfig::default()).sparsify(0.8)
    }

    /// Structural ground truth: labels from the incremental path must equal
    /// the from-scratch labeling of the post-delta instance.
    fn check(inst: &Instance, delta: &EpochDelta) -> AppliedDelta {
        let applied = apply_delta(inst, delta).unwrap();
        assert_eq!(applied.labels, shard_labels(&applied.instance));
        assert_eq!(applied.photo_remap.len(), inst.num_photos());
        assert_eq!(applied.photo_origin.len(), applied.instance.num_photos());
        applied
    }

    #[test]
    fn budget_only_delta_is_all_clean() {
        let inst = sparse_fixture(0xD1CE_0001);
        let delta = EpochDelta {
            set_budget: Some(inst.budget() / 2),
            ..Default::default()
        };
        let applied = check(&inst, &delta);
        assert_eq!(applied.num_dirty_photos(), 0);
        assert_eq!(applied.num_dirty_shards(), 0);
        assert_eq!(applied.instance.budget(), inst.budget() / 2);
        assert_eq!(&applied.labels, &shard_labels(&inst));
    }

    #[test]
    fn remove_photo_dirties_exactly_its_component() {
        let inst = sparse_fixture(0xD1CE_0002);
        let labels = shard_labels(&inst);
        let victim = PhotoId(3);
        let delta = EpochDelta {
            remove_photos: vec![victim],
            ..Default::default()
        };
        let applied = check(&inst, &delta);
        assert_eq!(applied.instance.num_photos(), inst.num_photos() - 1);
        assert!(applied.photo_remap[victim.index()].is_none());
        // Every dirty survivor came from the victim's old component (or the
        // victim was pooled, in which case nothing survives dirty).
        let s = labels.shard_of(victim);
        for (p, &d) in applied.dirty_photos.iter().enumerate() {
            if d {
                let old = applied.photo_origin[p].unwrap();
                assert_eq!(labels.shard_of(old), s);
                assert_ne!(labels.singleton_pool(), Some(s));
            }
        }
    }

    #[test]
    fn removal_does_not_renormalize_relevance() {
        let mut b = InstanceBuilder::new(100);
        let p0 = b.add_photo("a", 10);
        let p1 = b.add_photo("b", 10);
        let p2 = b.add_photo("c", 10);
        b.add_subset("q", 1.0, vec![p0, p1, p2], vec![1.0, 2.0, 5.0]);
        let inst = b.build_with_provider(&crate::UnitSimilarity).unwrap();
        let before = inst.subset(SubsetId(0)).relevance.clone();
        let delta = EpochDelta {
            remove_photos: vec![p1],
            ..Default::default()
        };
        let applied = check(&inst, &delta);
        let after = &applied.instance.subset(SubsetId(0)).relevance;
        assert_eq!(after.len(), 2);
        assert_eq!(after[0].to_bits(), before[0].to_bits());
        assert_eq!(after[1].to_bits(), before[2].to_bits());
        let sum: f64 = after.iter().sum();
        assert!(sum < 1.0, "removal must not renormalize");
    }

    #[test]
    fn added_query_merges_components_and_dirties_both() {
        let mut b = InstanceBuilder::new(100);
        let p0 = b.add_photo("a", 10);
        let p1 = b.add_photo("b", 10);
        let p2 = b.add_photo("c", 10);
        let p3 = b.add_photo("d", 10);
        b.add_subset("q0", 1.0, vec![p0, p1], vec![]);
        b.add_subset("q1", 1.0, vec![p2, p3], vec![]);
        let inst = b.build_with_provider(&crate::FnSimilarity(|_, _, _| 0.5)).unwrap();
        assert_eq!(shard_labels(&inst).num_shards(), 2);
        let delta = EpochDelta {
            add_queries: vec![QueryAdd {
                label: "bridge".into(),
                weight: 1.0,
                members: vec![MemberRef::Existing(p1), MemberRef::Existing(p2)],
                relevance: vec![],
                pairs: vec![(0, 1, 0.7)],
            }],
            ..Default::default()
        };
        let applied = check(&inst, &delta);
        assert_eq!(applied.labels.num_shards(), 1);
        assert_eq!(applied.num_dirty_photos(), 4);
    }

    #[test]
    fn retire_query_splits_and_dirties_members() {
        let mut b = InstanceBuilder::new(100);
        let p0 = b.add_photo("a", 10);
        let p1 = b.add_photo("b", 10);
        let p2 = b.add_photo("c", 10);
        b.add_subset("pair", 1.0, vec![p0, p1], vec![]);
        b.add_subset("bridge", 1.0, vec![p1, p2], vec![]);
        let inst = b.build_with_provider(&crate::FnSimilarity(|_, _, _| 0.5)).unwrap();
        assert_eq!(shard_labels(&inst).num_shards(), 1);
        let delta = EpochDelta {
            retire_queries: vec![SubsetId(1)],
            ..Default::default()
        };
        let applied = check(&inst, &delta);
        assert_eq!(applied.instance.num_subsets(), 1);
        // p2 is now an isolated singleton; {p0, p1} stay connected.
        assert_eq!(applied.labels.num_shards(), 2);
        assert!(applied.dirty_photos.iter().all(|&d| d));
    }

    #[test]
    fn added_photos_and_new_queries_join_and_compose() {
        let inst = sparse_fixture(0xD1CE_0003);
        let delta = EpochDelta {
            add_photos: vec![
                PhotoAdd {
                    name: "new0".into(),
                    cost: 123,
                    required: false,
                },
                PhotoAdd {
                    name: "new1".into(),
                    cost: 456,
                    required: true,
                },
            ],
            add_queries: vec![QueryAdd {
                label: "fresh".into(),
                weight: 2.0,
                members: vec![
                    MemberRef::New(0),
                    MemberRef::New(1),
                    MemberRef::Existing(PhotoId(0)),
                ],
                relevance: vec![1.0, 1.0, 2.0],
                pairs: vec![(0, 1, 0.9), (1, 2, 0.4)],
            }],
            ..Default::default()
        };
        let applied = check(&inst, &delta);
        let ni = &applied.instance;
        assert_eq!(ni.num_photos(), inst.num_photos() + 2);
        let new1 = PhotoId(inst.num_photos() as u32 + 1);
        assert!(ni.is_required(new1));
        let q = ni.subset(SubsetId(ni.num_subsets() as u32 - 1));
        assert_eq!(q.members.len(), 3);
        let sum: f64 = q.relevance.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "added queries are normalized");
        // Chained deltas compose: remove one of the new photos next epoch.
        let delta2 = EpochDelta {
            remove_photos: vec![new1],
            require: vec![PhotoId(0)],
            ..Default::default()
        };
        let applied2 = delta2.apply(ni, &applied.labels).unwrap();
        assert_eq!(applied2.labels, shard_labels(&applied2.instance));
        assert!(applied2.instance.is_required(
            applied2.photo_remap[0].unwrap()
        ));
    }

    #[test]
    fn require_unrequire_flip_flags_and_dirty_components() {
        let inst = sparse_fixture(0xD1CE_0001);
        let target = PhotoId(5);
        let delta = EpochDelta {
            require: vec![target],
            ..Default::default()
        };
        let applied = check(&inst, &delta);
        assert!(applied.instance.is_required(PhotoId(5)));
        assert!(applied.dirty_photos[5]);
        let back = EpochDelta {
            unrequire: vec![target],
            ..Default::default()
        };
        let applied2 = back.apply(&applied.instance, &applied.labels).unwrap();
        assert!(!applied2.instance.is_required(PhotoId(5)));
    }

    #[test]
    fn emptied_query_auto_retires() {
        let mut b = InstanceBuilder::new(100);
        let p0 = b.add_photo("a", 10);
        let p1 = b.add_photo("b", 10);
        b.add_subset("lone", 1.0, vec![p0], vec![]);
        b.add_subset("keep", 1.0, vec![p1], vec![]);
        let inst = b.build_with_provider(&crate::UnitSimilarity).unwrap();
        let delta = EpochDelta {
            remove_photos: vec![p0],
            ..Default::default()
        };
        let applied = check(&inst, &delta);
        assert_eq!(applied.instance.num_subsets(), 1);
        assert_eq!(&*applied.instance.subset(SubsetId(0)).label, "keep");
    }

    #[test]
    fn validation_errors() {
        let inst = sparse_fixture(0xD1CE_0002);
        let n = inst.num_photos() as u32;
        let bad_remove = EpochDelta {
            remove_photos: vec![PhotoId(n)],
            ..Default::default()
        };
        assert!(matches!(
            apply_delta(&inst, &bad_remove),
            Err(ModelError::UnknownPhoto(_))
        ));
        let require_removed = EpochDelta {
            remove_photos: vec![PhotoId(0)],
            require: vec![PhotoId(0)],
            ..Default::default()
        };
        assert!(matches!(
            apply_delta(&inst, &require_removed),
            Err(ModelError::UnknownPhoto(_))
        ));
        let zero_cost = EpochDelta {
            add_photos: vec![PhotoAdd {
                name: "z".into(),
                cost: 0,
                required: false,
            }],
            ..Default::default()
        };
        assert!(matches!(
            apply_delta(&inst, &zero_cost),
            Err(ModelError::ZeroCostPhoto(_))
        ));
        let over_budget = EpochDelta {
            set_budget: Some(0),
            require: vec![PhotoId(0)],
            ..Default::default()
        };
        assert!(matches!(
            apply_delta(&inst, &over_budget),
            Err(ModelError::RequiredSetOverBudget { .. })
        ));
        let dup_member = EpochDelta {
            add_queries: vec![QueryAdd {
                label: "dup".into(),
                weight: 1.0,
                members: vec![
                    MemberRef::Existing(PhotoId(1)),
                    MemberRef::Existing(PhotoId(1)),
                ],
                relevance: vec![],
                pairs: vec![],
            }],
            ..Default::default()
        };
        assert!(matches!(
            apply_delta(&inst, &dup_member),
            Err(ModelError::DuplicateMember { .. })
        ));
    }

    #[test]
    fn pool_membership_changes_track_from_scratch() {
        // Build an instance with a singleton pool, then churn pool photos.
        let mut b = InstanceBuilder::new(1000);
        for k in 0..6 {
            let p = b.add_photo(format!("s{k}"), 10);
            b.add_subset(format!("q{k}"), 1.0, vec![p], vec![]);
        }
        let inst = b.build_with_provider(&crate::UnitSimilarity).unwrap();
        let labels = shard_labels(&inst);
        assert_eq!(labels.singleton_pool(), Some(0));
        let delta = EpochDelta {
            remove_photos: vec![PhotoId(2)],
            require: vec![PhotoId(4)],
            add_photos: vec![PhotoAdd {
                name: "s6".into(),
                cost: 10,
                required: false,
            }],
            ..Default::default()
        };
        let applied = check(&inst, &delta);
        // Clean pool photos stay clean — per-photo granularity.
        assert!(!applied.dirty_photos[0]);
        assert!(applied.dirty_photos[applied.photo_remap[4].unwrap().index()]);
        assert_eq!(applied.labels.singleton_pool(), Some(0));
    }

    #[test]
    fn random_churn_matches_from_scratch_labels() {
        // Randomized end-to-end: a chain of mixed deltas over a sparsified
        // instance, checking the incremental labels against from-scratch at
        // every step (the debug_assert inside apply double-checks too).
        let mut inst = sparse_fixture(0xFEED_0001);
        let mut labels = shard_labels(&inst);
        let mut rng = crate::fixtures::SplitMix64::new(0xFEED_0002);
        for round in 0..8 {
            let n = inst.num_photos();
            let mut delta = EpochDelta::default();
            match round % 4 {
                0 => {
                    delta.remove_photos = vec![PhotoId(rng.next_below(n) as u32)];
                }
                1 => {
                    let a = rng.next_below(n) as u32;
                    let b = rng.next_below(n) as u32;
                    if a != b {
                        delta.add_queries = vec![QueryAdd {
                            label: format!("drift{round}"),
                            weight: 0.5,
                            members: vec![
                                MemberRef::Existing(PhotoId(a)),
                                MemberRef::Existing(PhotoId(b)),
                            ],
                            relevance: vec![],
                            pairs: vec![(0, 1, 0.6)],
                        }];
                    }
                }
                2 => {
                    delta.add_photos = vec![PhotoAdd {
                        name: format!("arr{round}"),
                        cost: 100 + round as u64,
                        required: false,
                    }];
                }
                _ => {
                    if inst.num_subsets() > 1 {
                        delta.retire_queries =
                            vec![SubsetId(rng.next_below(inst.num_subsets()) as u32)];
                    }
                }
            }
            let applied = delta.apply(&inst, &labels).unwrap();
            assert_eq!(applied.labels, shard_labels(&applied.instance));
            inst = applied.instance;
            labels = applied.labels;
        }
    }
}
