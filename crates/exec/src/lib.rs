//! # par-exec — deterministic data-parallel kernels for the PHOcus workspace
//!
//! The paper's hot loops — CELF gain seeding, eager per-round argmaxes,
//! SimHash signing, banded bucketing, and ≥τ candidate-pair verification —
//! are all *embarrassingly parallel over an indexed collection*. This crate
//! provides the one primitive they need: an order-preserving parallel map
//! ([`par_map`] / [`par_map_slice`]) built on `std::thread::scope`, plus a
//! process-wide [`Parallelism`] knob.
//!
//! The build environment has no access to crates.io, so `rayon` is not
//! available; scoped threads give the same fork/join semantics for the
//! chunked, uniform workloads here without a work-stealing pool.
//!
//! ## Determinism contract
//!
//! Every kernel in this crate is **bit-deterministic**: outputs are written
//! into a pre-sized buffer at each item's own index, so the result is
//! byte-identical to a serial `map` regardless of thread count, scheduling,
//! or whether the `parallel` feature is enabled at all. Floating-point
//! reductions ([`par_sum_f64`]) first materialize per-item terms in input
//! order, then reduce sequentially — fixed order, identical rounding.
//! Downstream, this is what makes `--features parallel` and
//! `--no-default-features` builds select identical photo sets.
//!
//! ## Thread-count resolution
//!
//! Effective worker count = explicit argument (when using the `*_with`
//! variants) → process-wide override ([`set_global_threads`]) → available
//! hardware parallelism. A count of 1 short-circuits to the serial path;
//! without the `parallel` feature everything is serial regardless.

#![forbid(unsafe_code)]

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker-thread configuration for a solver or experiment run.
///
/// `threads: None` means "use the process default" (the global override if
/// set, else all available cores); `Some(1)` forces strictly serial
/// execution; `Some(n)` uses `n` workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker threads to use, `None` = process default.
    pub threads: Option<usize>,
}

impl Parallelism {
    /// Strictly serial execution.
    pub fn serial() -> Self {
        Parallelism { threads: Some(1) }
    }

    /// Explicit worker count (0 is treated as "all cores").
    pub fn with_threads(threads: usize) -> Self {
        Parallelism {
            threads: if threads == 0 { None } else { Some(threads) },
        }
    }

    /// Resolves to a concrete worker count.
    pub fn resolve(self) -> usize {
        resolve_threads(self.threads)
    }

    /// Installs this configuration as the process-wide default and returns
    /// the previous configuration.
    pub fn install_global(self) -> Parallelism {
        let prev = GLOBAL_THREADS.swap(encode(self.threads), Ordering::Relaxed);
        Parallelism {
            threads: decode(prev),
        }
    }
}

/// `0` = unset, `n+1` = override of `n` threads.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

fn encode(threads: Option<usize>) -> usize {
    threads.map_or(0, |t| t.max(1) + 1)
}

fn decode(raw: usize) -> Option<usize> {
    raw.checked_sub(1)
}

/// Sets the process-wide default worker count (`None` clears the override).
pub fn set_global_threads(threads: Option<usize>) {
    GLOBAL_THREADS.store(encode(threads), Ordering::Relaxed);
}

/// The process-wide default worker count override, if any.
pub fn global_threads() -> Option<usize> {
    decode(GLOBAL_THREADS.load(Ordering::Relaxed))
}

/// Resolves an optional explicit thread count to a concrete worker count:
/// explicit value → global override → available parallelism.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    match explicit.or_else(global_threads) {
        Some(n) => n.max(1),
        None => available_threads(),
    }
}

/// Hardware parallelism (1 when it cannot be determined).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Whether this build includes the parallel backend.
pub const fn parallel_enabled() -> bool {
    cfg!(feature = "parallel")
}

/// Order-preserving parallel map over `0..len`, using the process-default
/// worker count: `out[i] = f(i)`.
pub fn par_map_indexed<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_indexed_with(None, len, f)
}

/// [`par_map_indexed`] with an explicit worker count (`None` = default).
pub fn par_map_indexed_with<T, F>(threads: Option<usize>, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = resolve_threads(threads).min(len.max(1));
    if !parallel_enabled() || workers <= 1 || len < 2 {
        return (0..len).map(f).collect();
    }
    parallel_fill(workers, len, &f)
}

/// Order-preserving parallel map over a slice, using the process-default
/// worker count: `out[i] = f(&items[i])`.
pub fn par_map_slice<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_slice_with(None, items, f)
}

/// [`par_map_slice`] with an explicit worker count (`None` = default).
pub fn par_map_slice_with<T, U, F>(threads: Option<usize>, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed_with(threads, items.len(), |i| f(&items[i]))
}

/// Deterministic parallel sum: computes `f(i)` for `i in 0..len` in
/// parallel, then reduces the terms **sequentially in index order**, so the
/// floating-point rounding matches the serial loop bit for bit.
pub fn par_sum_f64<F>(len: usize, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    par_map_indexed(len, f).into_iter().sum()
}

/// Chunked fork/join over scoped threads writing into a pre-sized buffer.
fn parallel_fill<T, F>(workers: usize, len: usize, f: &F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<Option<T>> = Vec::with_capacity(len);
    out.resize_with(len, || None);
    let chunk = len.div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, slot_chunk) in out.chunks_mut(chunk).enumerate() {
            let start = w * chunk;
            scope.spawn(move || {
                for (k, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(f(start + k));
                }
            });
        }
    });
    out.into_iter()
        .map(|s| s.unwrap_or_else(|| unreachable!("parallel_fill covers every slot exactly once")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u64> = (0..997).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [None, Some(1), Some(2), Some(4), Some(16)] {
            let parallel = par_map_slice_with(threads, &items, |&x| x * x + 1);
            assert_eq!(parallel, serial, "threads={threads:?}");
        }
    }

    #[test]
    fn par_map_indexed_preserves_order() {
        let out = par_map_indexed_with(Some(8), 100, |i| i as u64 * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        assert!(par_map_indexed_with(Some(4), 0, |i| i).is_empty());
        assert_eq!(par_map_indexed_with(Some(4), 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn par_sum_is_bit_identical_to_serial_sum() {
        // Terms with wildly different magnitudes make the summation order
        // observable; the kernel must reduce in index order.
        let terms: Vec<f64> = (0..2048)
            .map(|i| (i as f64 * 0.7311).sin() * 10f64.powi((i % 17) - 8))
            .collect();
        let serial: f64 = terms.iter().sum();
        let parallel = par_sum_f64(terms.len(), |i| terms[i]);
        assert_eq!(serial.to_bits(), parallel.to_bits());
    }

    #[test]
    fn global_override_round_trips() {
        assert_eq!(global_threads(), None);
        set_global_threads(Some(3));
        assert_eq!(global_threads(), Some(3));
        assert_eq!(resolve_threads(None), 3);
        assert_eq!(resolve_threads(Some(2)), 2);
        let prev = Parallelism::serial().install_global();
        assert_eq!(prev.threads, Some(3));
        assert_eq!(resolve_threads(None), 1);
        set_global_threads(None);
        assert_eq!(global_threads(), None);
    }

    #[test]
    fn parallelism_resolution() {
        assert_eq!(Parallelism::serial().resolve(), 1);
        assert_eq!(Parallelism::with_threads(5).resolve(), 5);
        assert_eq!(Parallelism::with_threads(0).threads, None);
        assert!(Parallelism::default().resolve() >= 1);
    }
}
