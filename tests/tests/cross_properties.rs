//! Cross-crate property tests: representation equivalences and solver
//! invariants on randomized universes.

use par_core::{exact_score, PhotoId, Solution};
use par_datasets::{generate_openimages, OpenImagesConfig};
use phocus::{represent, RepresentationConfig, Sparsification};
use proptest::prelude::*;

fn universe_strategy() -> impl Strategy<Value = par_datasets::Universe> {
    (any::<u64>(), 40usize..150, 8usize..30).prop_map(|(seed, photos, subsets)| {
        generate_openimages(&OpenImagesConfig {
            name: "prop".into(),
            photos,
            target_subsets: subsets,
            seed,
            ..Default::default()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn threshold_and_lsh_never_invent_similarity(u in universe_strategy()) {
        // Every pair stored by the LSH representation must also exist (with
        // the same value) in the threshold representation at the same τ —
        // LSH may only miss pairs, never add or inflate them.
        let budget = u.total_cost() / 3;
        let tau = 0.6;
        let thresh = represent(&u, budget, &RepresentationConfig {
            sparsification: Sparsification::Threshold { tau },
            ..Default::default()
        }).unwrap();
        let lsh = represent(&u, budget, &RepresentationConfig {
            sparsification: Sparsification::Lsh { tau, target_recall: 0.95, seed: 5 },
            ..Default::default()
        }).unwrap();
        let mut violations: Vec<String> = Vec::new();
        for q in thresh.subsets() {
            let t = thresh.sim(q.id);
            let l = lsh.sim(q.id);
            for i in 0..q.members.len() {
                l.for_neighbors(i, |j, s| {
                    let ts = t.sim(i, j);
                    if (ts - s).abs() >= 1e-5 {
                        violations.push(format!(
                            "LSH stored ({i},{j})={s} but threshold has {ts} in {}",
                            q.id
                        ));
                    }
                });
            }
        }
        prop_assert!(violations.is_empty(), "{}", violations.join("; "));
        prop_assert!(lsh.stored_pairs() <= thresh.stored_pairs());
    }

    #[test]
    fn greedy_solution_dominates_random_on_true_objective(u in universe_strategy()) {
        let budget = u.total_cost() / 4;
        let inst = represent(&u, budget, &RepresentationConfig::default()).unwrap();
        let greedy = par_algo::main_algorithm(&inst).best;
        // Compare against the random baseline (same budget).
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut rand_total = 0.0;
        for _ in 0..3 {
            let ids = par_algo::rand_a(&inst, &mut rng);
            rand_total += exact_score(&inst, &ids);
        }
        prop_assert!(greedy.score + 1e-9 >= rand_total / 3.0,
            "greedy {} below mean random {}", greedy.score, rand_total / 3.0);
    }

    #[test]
    fn solution_scores_are_representation_consistent(u in universe_strategy()) {
        // A fixed set's score on the τ-sparsified instance never exceeds its
        // score on the dense instance, and both are ≤ max_score.
        let budget = u.total_cost() / 3;
        let dense = represent(&u, budget, &RepresentationConfig::default()).unwrap();
        let sparse = represent(&u, budget, &RepresentationConfig {
            sparsification: Sparsification::Threshold { tau: 0.5 },
            ..Default::default()
        }).unwrap();
        let set: Vec<PhotoId> = (0..u.num_photos() as u32).step_by(3).map(PhotoId).collect();
        let d = exact_score(&dense, &set);
        let s = exact_score(&sparse, &set);
        prop_assert!(s <= d + 1e-9, "sparse {s} > dense {d}");
        prop_assert!(d <= dense.max_score() + 1e-9);
    }

    #[test]
    fn suite_solutions_are_feasible(u in universe_strategy()) {
        let budget = u.total_cost() / 5;
        let inst = represent(&u, budget, &RepresentationConfig::default()).unwrap();
        let out = par_algo::main_algorithm(&inst);
        let sol = Solution::new(&inst, out.best.selected).unwrap();
        prop_assert!(sol.cost() <= budget);
        prop_assert!((sol.score() - out.best.score).abs() < 1e-6);
    }
}
