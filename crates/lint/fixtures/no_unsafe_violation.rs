//! Fixture: an `unsafe` block outside crates/vendor.

pub fn peek(p: *const u32) -> u32 {
    unsafe { *p }
}
