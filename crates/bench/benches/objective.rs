//! Objective-evaluator microbenchmarks: marginal-gain queries and solution
//! updates — the inner loop every solver amplifies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use par_bench::{dataset, DatasetId, Scale};
use par_core::{exact_score, Evaluator, PhotoId};
use phocus::{represent, RepresentationConfig, Sparsification};

fn bench_gain(c: &mut Criterion) {
    let u = dataset(DatasetId::P1K, Scale::Scaled);
    let budget = u.total_cost() / 5;
    let dense = represent(&u, budget, &RepresentationConfig::default()).unwrap();
    let sparse = represent(
        &u,
        budget,
        &RepresentationConfig {
            sparsification: Sparsification::Threshold { tau: 0.7 },
            ..Default::default()
        },
    )
    .unwrap();

    let mut group = c.benchmark_group("gain_eval");
    for (name, inst) in [("dense", &dense), ("sparse", &sparse)] {
        let mut ev = Evaluator::new(inst);
        // Half-full solution: realistic mid-run state.
        for p in (0..inst.num_photos() as u32).step_by(2) {
            ev.add(PhotoId(p));
        }
        group.bench_with_input(BenchmarkId::new("all_photos", name), &ev, |b, ev| {
            b.iter(|| {
                let mut total = 0.0;
                for p in 0..ev.instance().num_photos() as u32 {
                    total += ev.gain(PhotoId(p));
                }
                std::hint::black_box(total)
            })
        });
    }
    group.finish();
}

fn bench_incremental_vs_exact(c: &mut Criterion) {
    let u = dataset(DatasetId::P1K, Scale::Scaled);
    let inst = represent(&u, u.total_cost() / 5, &RepresentationConfig::default()).unwrap();
    let set: Vec<PhotoId> = (0..inst.num_photos() as u32 / 3).map(PhotoId).collect();
    let mut group = c.benchmark_group("score");
    group.bench_function("incremental_build", |b| {
        b.iter(|| {
            let mut ev = Evaluator::new(&inst);
            for &p in &set {
                ev.add(p);
            }
            std::hint::black_box(ev.score())
        })
    });
    group.bench_function("exact_from_scratch", |b| {
        b.iter(|| std::hint::black_box(exact_score(&inst, &set)))
    });
    group.finish();
}

criterion_group!(benches, bench_gain, bench_incremental_vs_exact);
criterion_main!(benches);
