//! Fixture: a `cfg(feature = "parallel")` gate outside par-exec.

#[cfg(feature = "parallel")]
pub fn fan_out(chunks: usize) -> usize {
    chunks
}
