//! Smoke tests for the `phocus` CLI binary.

use std::process::Command;

fn phocus(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_phocus"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn demo_prints_figure1_report() {
    let out = phocus(&["demo"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Figure 1"));
    assert!(text.contains("PHOcus run report"));
    assert!(text.contains("selection order"));
}

#[test]
fn table2_lists_eight_datasets() {
    let out = phocus(&["table2"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["P-1K", "P-100K", "EC-Fashion", "EC-Home & Garden"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn solve_tiny_dataset() {
    let out = phocus(&[
        "solve",
        "--dataset",
        "tiny",
        "--budget-mb",
        "3",
        "--tau",
        "0.6",
        "--seed",
        "7",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("retained"));
    assert!(text.contains("online bound"));
    assert!(text.contains("sparsification"));
}

#[test]
fn suite_tiny_dataset() {
    let out = phocus(&[
        "suite",
        "--dataset",
        "tiny",
        "--budget-mb",
        "2",
        "--seed",
        "3",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("PHOcus"));
    assert!(text.contains("RAND-A"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = phocus(&["frobnicate"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("USAGE"));
}

#[test]
fn help_prints_usage() {
    let out = phocus(&["--help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn missing_dataset_argument_errors() {
    let out = phocus(&["solve", "--budget-mb", "5"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--dataset"));
}

#[test]
fn compress_compares_remove_vs_compress() {
    let out = phocus(&[
        "compress",
        "--dataset",
        "tiny",
        "--budget-mb",
        "1.5",
        "--seed",
        "4",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("remove-only quality"));
    assert!(text.contains("compressed renditions"));
}

#[test]
fn solve_writes_retained_list() {
    let out_path = std::env::temp_dir().join("phocus_cli_retained.tsv");
    let out = phocus(&[
        "solve",
        "--dataset",
        "tiny",
        "--budget-mb",
        "2",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let content = std::fs::read_to_string(&out_path).unwrap();
    assert!(!content.is_empty());
    // Each line: id \t cost \t name.
    let first = content.lines().next().unwrap();
    assert_eq!(first.split('\t').count(), 3);
    std::fs::remove_file(&out_path).ok();
}

#[test]
fn export_then_solve_from_file() {
    let path = std::env::temp_dir().join("phocus_cli_export.universe");
    let out = phocus(&[
        "export",
        "--dataset",
        "tiny",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = phocus(&[
        "solve",
        "--dataset",
        &format!("file:{}", path.display()),
        "--budget-mb",
        "2",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(&path).ok();
}
