//! Fixture: a suppressed `partial_cmp` site plus the canonical delegation,
//! which is recognized structurally and needs no pragma at all.

#[derive(PartialEq, Eq, Ord)]
pub struct Score(pub u64);

impl PartialOrd for Score {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

pub fn comparable(a: f64, b: f64) -> bool {
    a.partial_cmp(&b).is_some() // phocus-lint: allow(float-ord) — fixture: audited NaN-free site
}
