//! The user-study command-line runner.
//!
//! ```text
//! study domains   [--seed N]                      # Figures 5g/5h rows
//! study preference [--rounds N] [--seed N]        # the 50-round test
//! study insights  --domain <fashion|electronics|home> [--budget-mb MB]
//! ```

use par_datasets::{generate_ecommerce, EcConfig, EcDomain};
use par_study::{domain_study, insights, preference_study, ManualAnalyst, PreferenceConfig};
use phocus::{represent, RepresentationConfig};
use std::process::ExitCode;

const USAGE: &str = "\
study — the PHOcus user-study simulation

USAGE:
  study domains   [--seed N]
  study preference [--rounds N] [--seed N]
  study insights  --domain <fashion|electronics|home> [--budget-mb MB] [--seed N]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "domains" => cmd_domains(rest),
        "preference" => cmd_preference(rest),
        "insights" => cmd_insights(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn opt(rest: &[String], name: &str) -> Option<String> {
    rest.iter()
        .position(|a| a == name)
        .and_then(|i| rest.get(i + 1).cloned())
}

fn parse<T: std::str::FromStr>(rest: &[String], name: &str, default: T) -> Result<T, String> {
    match opt(rest, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for {name}: {v}")),
    }
}

fn domain_of(name: &str) -> Result<EcDomain, String> {
    match name {
        "fashion" => Ok(EcDomain::Fashion),
        "electronics" => Ok(EcDomain::Electronics),
        "home" => Ok(EcDomain::HomeGarden),
        other => Err(format!("unknown domain `{other}`")),
    }
}

fn cmd_domains(rest: &[String]) -> Result<(), String> {
    let seed: u64 = parse(rest, "--seed", 42)?;
    println!(
        "{:<18} {:>12} {:>12} {:>14} {:>14}",
        "domain", "PHOcus qual", "manual qual", "PHOcus (min)", "manual (min)"
    );
    for domain in [
        EcDomain::Electronics,
        EcDomain::Fashion,
        EcDomain::HomeGarden,
    ] {
        let u = generate_ecommerce(&EcConfig::small(domain, seed));
        let budget = u.total_cost() / 10;
        let row = domain_study(&u, budget, &ManualAnalyst::default()).map_err(|e| e.to_string())?;
        println!(
            "{:<18} {:>12.1} {:>12.1} {:>14.1} {:>14.1}",
            row.domain,
            row.phocus_quality,
            row.manual_quality,
            row.phocus_time.as_secs_f64() / 60.0,
            row.manual_time.as_secs_f64() / 60.0
        );
    }
    Ok(())
}

fn cmd_preference(rest: &[String]) -> Result<(), String> {
    let seed: u64 = parse(rest, "--seed", 42)?;
    let rounds: usize = parse(rest, "--rounds", 50)?;
    println!(
        "{:<18} {:>8} {:>12} {:>14}",
        "domain", "PHOcus", "Greedy-NCS", "cannot decide"
    );
    for domain in [
        EcDomain::Fashion,
        EcDomain::Electronics,
        EcDomain::HomeGarden,
    ] {
        let u = generate_ecommerce(&EcConfig::small(domain, seed));
        let counts = preference_study(
            &u,
            &PreferenceConfig {
                rounds,
                seed,
                ..Default::default()
            },
        );
        println!(
            "{:<18} {:>8} {:>12} {:>14}",
            domain.name(),
            counts.phocus,
            counts.baseline,
            counts.undecided
        );
    }
    Ok(())
}

fn cmd_insights(rest: &[String]) -> Result<(), String> {
    let domain = domain_of(&opt(rest, "--domain").ok_or("missing --domain")?)?;
    let seed: u64 = parse(rest, "--seed", 42)?;
    let budget_mb: f64 = parse(rest, "--budget-mb", 5.0)?;
    let u = generate_ecommerce(&EcConfig::small(domain, seed));
    let budget = (budget_mb * 1e6) as u64;
    let inst =
        represent(&u, budget, &RepresentationConfig::default()).map_err(|e| e.to_string())?;
    println!("{}\n", par_core::InstanceStats::compute(&inst).render());
    let solver_sel = par_algo::main_algorithm(&inst).best.selected;
    let manual_sel = ManualAnalyst::default().select(&inst).selected;
    let report = insights::analyze(&inst, &solver_sel, &manual_sel);
    print!("{}", insights::render(&inst, &report, 8));
    Ok(())
}
