//! Fixture: `partial_cmp` outside the canonical `PartialOrd` delegation.

pub fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, x) in xs.iter().enumerate() {
        if x.partial_cmp(&xs[best]) == Some(std::cmp::Ordering::Greater) {
            best = i;
        }
    }
    best
}
