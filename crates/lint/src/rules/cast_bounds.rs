//! `cast-bounds`: narrowing `as` casts in library code must carry local
//! evidence that the value fits.
//!
//! The pack reader's no-OOM-on-corrupt-counts guarantee (PR 8) and the
//! writer's canonical-image guarantee both hang on narrowing conversions
//! (`usize→u32` section offsets, `u64→usize` counts) being *provably*
//! in-range. This rule flags a narrowing cast unless the same function
//! shows one of:
//!
//! * a checked conversion of the same base identifier
//!   (`u32::try_from(n)` / `n.try_into()`),
//! * an explicit range comparison of the base identifier against a
//!   `::MAX` bound — directly or through a local bound to one
//!   (`let cap = u32::MAX as u64; if n > cap { … }`), including
//!   `.min(…MAX…)` clamps,
//! * a suppression with rationale:
//!   `// phocus-lint: allow(cast-bounds) — proof`.
//!
//! The *source* width comes from lexical hints ([`crate::scope`]): a
//! `.len()`/`.count()` chain is `usize`, `let n: u64` and `r.u64()?` are
//! `u64`, float literals are `f64`, parameter types count. A cast whose
//! source width is lexically unknown is **skipped** — that is the
//! documented false-negative envelope, chosen so the rule's findings stay
//! reviewable (flagging all ~270 `as` casts in the workspace would bury
//! the dozen that matter). `usize`/`isize` are 64-bit as sources and
//! 32-bit as targets (portability-conservative in both directions).
//! Float→int casts are always narrowing; int→float precision loss is out
//! of scope. Library `src/` files only; `#[cfg(test)]` regions and
//! module-level consts are exempt (compile-time checkable).

use crate::context::{CrateCategory, FileContext, FileKind};
use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::scope::{literal_hint, FileScopes, FnItem};

/// Source width in bits, with a float marker.
fn src_bits(ty: &str) -> Option<(u32, bool)> {
    Some(match ty {
        "u8" | "i8" => (8, false),
        "u16" | "i16" => (16, false),
        "u32" | "i32" => (32, false),
        "u64" | "i64" | "usize" | "isize" => (64, false),
        "u128" | "i128" => (128, false),
        "f32" => (32, true),
        "f64" => (64, true),
        _ => return None,
    })
}

/// Guaranteed capacity of the target in bits (usize/isize: 32, the
/// smallest supported platform), with a float marker.
fn tgt_cap(ty: &str) -> Option<(u32, bool)> {
    Some(match ty {
        "u8" | "i8" => (8, false),
        "u16" | "i16" => (16, false),
        "u32" | "i32" => (32, false),
        "usize" | "isize" => (32, false),
        "u64" | "i64" => (64, false),
        "u128" | "i128" => (128, false),
        "f32" => (32, true),
        "f64" => (64, true),
        _ => return None,
    })
}

/// Whether `src → tgt` can lose range.
fn is_narrowing(src: &str, tgt: &str) -> bool {
    if src == tgt {
        return false;
    }
    let Some((sb, sf)) = src_bits(src) else {
        return false;
    };
    let Some((tb, tf)) = tgt_cap(tgt) else {
        return false;
    };
    match (sf, tf) {
        (true, false) => true,       // float → int truncates
        (true, true) => sb > tb,     // f64 → f32
        (false, true) => false,      // int → float: precision, not range
        (false, false) => sb > tb,
    }
}

/// Resolved source of a cast: its lexical width hint and, when the source
/// is rooted in a named binding, that base identifier.
struct CastSrc {
    ty: &'static str,
    base: Option<String>,
}

/// Walks backwards from the `as` token to classify the source expression.
fn resolve_src(code: &[Tok], as_idx: usize, item: &FnItem) -> Option<CastSrc> {
    let mut p = as_idx.checked_sub(1)?;
    while code[p].is_punct('?') {
        p = p.checked_sub(1)?;
    }
    let t = &code[p];
    if t.is_punct(')') {
        // Call shape: match back to the opening paren, read the callee.
        let mut depth = 0i32;
        let mut q = p;
        loop {
            if code[q].is_punct(')') {
                depth += 1;
            } else if code[q].is_punct('(') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            q = q.checked_sub(1)?;
        }
        let callee = q.checked_sub(1).map(|c| &code[c])?;
        if callee.kind != TokKind::Ident {
            return None;
        }
        let ty: &'static str = match callee.text.as_str() {
            "len" | "count" | "capacity" => "usize",
            "from_le_bytes" | "from_be_bytes" | "from_ne_bytes" => {
                let qual = q.checked_sub(4).map(|c| &code[c])?;
                crate::scope::PRIMITIVES.iter().find(|pr| **pr == qual.text)?
            }
            other => crate::scope::PRIMITIVES.iter().find(|pr| **pr == other)?,
        };
        // Receiver root: `names.len()` → `names`; `r.u64()` → `r`.
        let mut base = None;
        if let Some(dot) = q.checked_sub(2) {
            if code[dot].is_punct('.') {
                let mut r = dot.checked_sub(1);
                while let Some(ri) = r {
                    if code[ri].kind == TokKind::Ident
                        && !(ri >= 1 && code[ri - 1].is_punct('.'))
                    {
                        base = Some(code[ri].text.clone());
                        break;
                    }
                    if code[ri].kind == TokKind::Ident && ri >= 1 && code[ri - 1].is_punct('.') {
                        r = ri.checked_sub(2);
                        continue;
                    }
                    break;
                }
            }
        }
        return Some(CastSrc { ty, base });
    }
    if t.kind == TokKind::Ident {
        // `T::MAX as …` / `T::MIN as …`: width of the qualifier.
        if (t.text == "MAX" || t.text == "MIN")
            && p >= 3
            && code[p - 1].is_punct(':')
            && code[p - 2].is_punct(':')
        {
            if let Some(pr) = crate::scope::PRIMITIVES
                .iter()
                .find(|pr| **pr == code[p - 3].text)
            {
                return Some(CastSrc { ty: pr, base: None });
            }
        }
        // A field access (`m.local as …`) is not the binding of the same
        // name; its width is unknown here.
        if p >= 1 && code[p - 1].is_punct('.') {
            return None;
        }
        // A plain binding: look up its lexical hint.
        let hinted = item.hints.get(&t.text).copied()?;
        return Some(CastSrc {
            ty: hinted,
            base: Some(t.text.clone()),
        });
    }
    if t.kind == TokKind::Num {
        return literal_hint(&t.text).map(|ty| CastSrc { ty, base: None });
    }
    None
}

/// Same-function evidence that the cast's value fits the target.
fn has_evidence(code: &[Tok], item: &FnItem, base: Option<&str>) -> bool {
    let (open, close) = item.body;
    let end = close.min(code.len());
    let window = 6usize;
    let is_guard_ident =
        |t: &Tok| t.is_ident("MAX") || (t.kind == TokKind::Ident && item.max_bound.contains(&t.text));
    for j in open + 1..end {
        let t = &code[j];
        // Checked conversion of the base: `base.try_into()` or
        // `T::try_from(… base …)`.
        if t.is_ident("try_into") {
            match base {
                None => return true,
                Some(b) => {
                    if j >= 2 && code[j - 1].is_punct('.') && code[j - 2].is_ident(b) {
                        return true;
                    }
                }
            }
        }
        if t.is_ident("try_from") {
            match base {
                None => return true,
                Some(b) => {
                    let lo = j + 1;
                    let hi = (j + 2 + window).min(end);
                    if code[lo..hi].iter().any(|w| w.is_ident(b)) {
                        return true;
                    }
                }
            }
        }
        // Range comparison or clamp against a MAX-derived bound.
        let is_cmp = t.is_punct('<') || t.is_punct('>');
        let is_clamp = (t.is_ident("min") || t.is_ident("clamp"))
            && j >= 1
            && code[j - 1].is_punct('.');
        if is_cmp || is_clamp {
            let lo = j.saturating_sub(window);
            let hi = (j + 1 + window).min(end);
            let win = &code[lo..hi];
            let has_bound = win.iter().any(is_guard_ident);
            let has_base = match base {
                Some(b) => win.iter().any(|w| w.is_ident(b)),
                None => true,
            };
            if has_bound && has_base {
                return true;
            }
        }
    }
    false
}

/// Runs the rule over one file.
pub fn check(ctx: &FileContext<'_>, scopes: &FileScopes, out: &mut Vec<Diagnostic>) {
    if ctx.spec.category != CrateCategory::Library || ctx.spec.kind != FileKind::Lib {
        return;
    }
    for item in &scopes.fns {
        if ctx.in_test_region(item.fn_line) {
            continue;
        }
        let (open, close) = item.body;
        let end = close.min(ctx.code.len());
        for j in open + 1..end {
            let t = &ctx.code[j];
            if !t.is_ident("as") {
                continue;
            }
            if ctx.in_test_region(t.line) {
                continue;
            }
            // Innermost-fn attribution: skip tokens owned by a nested item.
            if scopes.fn_of(j).is_some_and(|f| f.body != item.body) {
                continue;
            }
            let Some(tgt_tok) = ctx.code.get(j + 1) else {
                continue;
            };
            let Some(tgt) = crate::scope::PRIMITIVES
                .iter()
                .find(|p| tgt_tok.is_ident(p))
            else {
                continue;
            };
            let Some(src) = resolve_src(&ctx.code, j, item) else {
                continue;
            };
            if !is_narrowing(src.ty, tgt) {
                continue;
            }
            if has_evidence(&ctx.code, item, src.base.as_deref()) {
                continue;
            }
            let subject = match &src.base {
                Some(b) => format!("`{b}` ({})", src.ty),
                None => format!("a {} value", src.ty),
            };
            let remedy = if matches!(*tgt, "f32" | "f64") {
                "clamp the value or compare against the target's `::MAX` in this \
                 function, or `allow(cast-bounds)` with a rationale"
                    .to_string()
            } else {
                format!(
                    "use `{tgt}::try_from` with a typed error, compare against the \
                     target's `::MAX` in this function, or `allow(cast-bounds)` with a \
                     rationale"
                )
            };
            ctx.emit(
                out,
                "cast-bounds",
                t.line,
                t.col,
                format!("narrowing cast of {subject} to {tgt} without local evidence; {remedy}"),
            );
        }
    }
}
