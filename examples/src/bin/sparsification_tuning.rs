//! Sweeping the sparsification threshold τ: quality vs stored pairs vs the
//! Theorem 4.8 certificate — the tuning loop a deployment would run before
//! fixing τ (Section 4.3).
//!
//! ```text
//! cargo run -p par-examples --release --bin sparsification_tuning
//! ```

use par_core::Solution;
use par_datasets::{generate_openimages, OpenImagesConfig};
use par_sparse::sparsification_bound;
use phocus::{represent, RepresentationConfig, Sparsification};

fn main() {
    let universe = generate_openimages(&OpenImagesConfig {
        name: "tuning".into(),
        photos: 800,
        target_subsets: 160,
        seed: 99,
        ..Default::default()
    });
    let budget = universe.total_cost() / 5;
    println!(
        "{} photos, {} subsets, budget {:.1} MB ({}% of archive)\n",
        universe.num_photos(),
        universe.num_subsets(),
        budget as f64 / 1e6,
        100 * budget / universe.total_cost()
    );

    // Dense reference (PHOcus-NS).
    let dense = represent(&universe, budget, &RepresentationConfig::default()).unwrap();
    let t0 = std::time::Instant::now();
    let dense_sel = par_algo::main_algorithm(&dense).best.selected;
    let dense_time = t0.elapsed();
    let dense_quality = Solution::new_unchecked(&dense, dense_sel).score();
    println!(
        "dense (τ=0): quality {dense_quality:.2}, {} stored pairs, solve {dense_time:.1?}\n",
        dense.stored_pairs()
    );

    println!(
        "{:>5} {:>12} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "τ", "pairs", "pairs%", "quality", "qual%", "thm4.8 α", "solve"
    );
    for tau in [0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9] {
        let repr = RepresentationConfig {
            sparsification: Sparsification::Lsh {
                tau,
                target_recall: 0.95,
                seed: 5,
            },
            ..Default::default()
        };
        let sparse = represent(&universe, budget, &repr).unwrap();
        let t = std::time::Instant::now();
        let sel = par_algo::main_algorithm(&sparse).best.selected;
        let solve = t.elapsed();
        // Evaluate under the TRUE (dense) objective.
        let quality = Solution::new_unchecked(&dense, sel).score();
        let cert = sparsification_bound(&dense, tau);
        println!(
            "{tau:>5.2} {:>12} {:>9.1}% {quality:>10.2} {:>9.1}% {:>12.3} {solve:>10.1?}",
            sparse.stored_pairs(),
            100.0 * sparse.stored_pairs() as f64 / dense.stored_pairs().max(1) as f64,
            100.0 * quality / dense_quality,
            cert.alpha,
        );
    }
    println!(
        "\nReading the table: raising τ drops stored pairs (and solve time)
steeply while quality degrades only a few percent — the Figure 5e/5f
trade-off. The α column is the Theorem 4.8 data-dependent certificate:
the sparsified optimum keeps at least α/(1+α) of the true optimum."
    );
}
