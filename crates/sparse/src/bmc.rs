//! Budgeted Maximum Coverage (Khuller, Moss & Naor) — the sub-problem used
//! by Theorem 4.8's data-dependent certificate.
//!
//! Given weighted elements, sets with byte costs, and a budget, select sets
//! maximizing the total weight of covered elements. As the paper notes, this
//! is "schematically the same algorithm" as the PAR solver — a lazy greedy
//! run under both the unit-cost and cost-benefit rules, keeping the better
//! solution — but each evaluation only sums covered weight, with no
//! nearest-neighbor computation, so it is much faster and is run offline to
//! obtain a-posteriori sparsification bounds.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A Budgeted-Max-Coverage instance.
#[derive(Debug, Clone)]
pub struct CoverageInstance {
    /// Weight of each element.
    pub element_weights: Vec<f64>,
    /// Cost of each set (bytes).
    pub set_costs: Vec<u64>,
    /// `covers[s]` lists the element indices covered by set `s`.
    pub covers: Vec<Vec<u32>>,
    /// Budget on the total cost of selected sets.
    pub budget: u64,
}

/// The output of [`budgeted_max_coverage`].
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageOutcome {
    /// Indices of the selected sets.
    pub selected: Vec<usize>,
    /// Total weight of covered elements.
    pub covered_weight: f64,
    /// Total cost of the selected sets.
    pub cost: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rule {
    UnitCost,
    CostBenefit,
}

struct Entry {
    key: f64,
    set: usize,
    epoch: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.set == other.set
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key
            .total_cmp(&other.key)
            .then_with(|| other.set.cmp(&self.set))
    }
}

fn greedy(ci: &CoverageInstance, rule: Rule) -> CoverageOutcome {
    let num_sets = ci.covers.len();
    let mut covered = vec![false; ci.element_weights.len()];
    let mut selected = Vec::new();
    let mut cost = 0u64;
    let mut weight = 0.0f64;

    let gain = |covered: &[bool], s: usize| -> f64 {
        ci.covers[s]
            .iter()
            .filter(|&&e| !covered[e as usize])
            .map(|&e| ci.element_weights[e as usize])
            .sum()
    };
    let key = |g: f64, s: usize| match rule {
        Rule::UnitCost => g,
        Rule::CostBenefit => g / ci.set_costs[s] as f64,
    };

    let mut heap: BinaryHeap<Entry> = (0..num_sets)
        .map(|s| Entry {
            key: f64::INFINITY,
            set: s,
            epoch: u32::MAX,
        })
        .collect();
    let mut epoch = 0u32;
    let mut in_solution = vec![false; num_sets];
    while let Some(top) = heap.pop() {
        let s = top.set;
        if in_solution[s] || cost + ci.set_costs[s] > ci.budget {
            continue;
        }
        if top.epoch == epoch {
            in_solution[s] = true;
            selected.push(s);
            cost += ci.set_costs[s];
            for &e in &ci.covers[s] {
                if !covered[e as usize] {
                    covered[e as usize] = true;
                    weight += ci.element_weights[e as usize];
                }
            }
            epoch += 1;
            continue;
        }
        let g = gain(&covered, s);
        if g <= 0.0 {
            continue;
        }
        heap.push(Entry {
            key: key(g, s),
            set: s,
            epoch,
        });
    }
    CoverageOutcome {
        selected,
        covered_weight: weight,
        cost,
    }
}

/// Runs the two-rule lazy greedy and returns the better solution
/// (`(1 − 1/e)/2` worst-case guarantee).
pub fn budgeted_max_coverage(ci: &CoverageInstance) -> CoverageOutcome {
    let uc = greedy(ci, Rule::UnitCost);
    let cb = greedy(ci, Rule::CostBenefit);
    if uc.covered_weight > cb.covered_weight {
        uc
    } else {
        cb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> CoverageInstance {
        CoverageInstance {
            element_weights: vec![1.0, 2.0, 3.0, 4.0],
            set_costs: vec![1, 1, 2],
            covers: vec![vec![0, 1], vec![2], vec![1, 2, 3]],
            budget: 2,
        }
    }

    #[test]
    fn picks_high_weight_cover() {
        let out = budgeted_max_coverage(&simple());
        // Best with budget 2: set 2 alone covers {1,2,3} = 9, or sets {0,1}
        // cover {0,1,2} = 6. Expect set 2.
        assert_eq!(out.selected, vec![2]);
        assert!((out.covered_weight - 9.0).abs() < 1e-12);
        assert_eq!(out.cost, 2);
    }

    #[test]
    fn respects_budget() {
        let mut ci = simple();
        ci.budget = 1;
        let out = budgeted_max_coverage(&ci);
        assert!(out.cost <= 1);
        // Budget 1: best single set is set 0 (weight 3) vs set 1 (weight 3);
        // ties broken by id → set 0.
        assert!((out.covered_weight - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_budget_selects_nothing() {
        let mut ci = simple();
        ci.budget = 0;
        let out = budgeted_max_coverage(&ci);
        assert!(out.selected.is_empty());
        assert_eq!(out.covered_weight, 0.0);
    }

    #[test]
    fn overlapping_sets_count_elements_once() {
        let ci = CoverageInstance {
            element_weights: vec![5.0, 5.0],
            set_costs: vec![1, 1],
            covers: vec![vec![0, 1], vec![0, 1]],
            budget: 2,
        };
        let out = budgeted_max_coverage(&ci);
        // Second set adds nothing; covered weight stays 10.
        assert!((out.covered_weight - 10.0).abs() < 1e-12);
        assert_eq!(out.selected.len(), 1);
    }

    #[test]
    fn cb_rule_wins_when_cheap_sets_dominate() {
        // One expensive set covering a lot vs several cheap sets covering
        // slightly less each but more in total.
        let ci = CoverageInstance {
            element_weights: vec![10.0, 4.0, 4.0, 4.0],
            set_costs: vec![10, 3, 3, 3],
            covers: vec![vec![0], vec![1], vec![2], vec![3]],
            budget: 10,
        };
        let out = budgeted_max_coverage(&ci);
        // UC picks the 10-weight set (10). CB picks the three cheap ones (12).
        assert!((out.covered_weight - 12.0).abs() < 1e-12);
        assert_eq!(out.selected.len(), 3);
    }

    #[test]
    fn greedy_matches_bruteforce_guarantee_on_random() {
        use par_core::fixtures::SplitMix64;
        let mut rng = SplitMix64::new(9);
        for _ in 0..10 {
            let elements = 8;
            let sets = 6;
            let ci = CoverageInstance {
                element_weights: (0..elements).map(|_| 1.0 + rng.next_f64() * 4.0).collect(),
                set_costs: (0..sets).map(|_| 1 + rng.next_u64() % 5).collect(),
                covers: (0..sets)
                    .map(|_| {
                        (0..elements as u32)
                            .filter(|_| rng.next_f64() < 0.4)
                            .collect()
                    })
                    .collect(),
                budget: 6,
            };
            // Brute force over all set subsets.
            let mut opt = 0.0f64;
            for mask in 0u32..(1 << sets) {
                let cost: u64 = (0..sets)
                    .filter(|&s| mask & (1 << s) != 0)
                    .map(|s| ci.set_costs[s])
                    .sum();
                if cost > ci.budget {
                    continue;
                }
                let mut cov = vec![false; elements];
                for s in 0..sets {
                    if mask & (1 << s) != 0 {
                        for &e in &ci.covers[s] {
                            cov[e as usize] = true;
                        }
                    }
                }
                let w: f64 = cov
                    .iter()
                    .zip(&ci.element_weights)
                    .filter(|(c, _)| **c)
                    .map(|(_, w)| w)
                    .sum();
                opt = opt.max(w);
            }
            let out = budgeted_max_coverage(&ci);
            let guarantee = (1.0 - 1.0 / std::f64::consts::E) / 2.0;
            assert!(
                out.covered_weight + 1e-9 >= guarantee * opt,
                "greedy {} below guarantee of {opt}",
                out.covered_weight
            );
        }
    }
}
