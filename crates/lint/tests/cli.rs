//! End-to-end CLI tests: exit codes and the `--json` schema, exercised
//! through the real `phocus-lint` binary.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn phocus_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_phocus-lint"))
        .args(args)
        .output()
        .expect("binary must run")
}

#[test]
fn clean_workspace_exits_zero() {
    let root = workspace_root();
    let out = phocus_lint(&["--root", root.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("clean"), "{stdout}");
}

#[test]
fn gate_crates_prints_the_sorted_list() {
    let root = workspace_root();
    let out = phocus_lint(&["gate-crates", "--root", root.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let names: Vec<&str> = std::str::from_utf8(&out.stdout)
        .expect("utf-8 output")
        .lines()
        .collect();
    assert!(names.contains(&"par-core"), "{names:?}");
    assert!(names.contains(&"par-lint"), "{names:?}");
    assert!(!names.contains(&"par-bench"), "{names:?}");
}

#[test]
fn usage_error_exits_two() {
    let out = phocus_lint(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("USAGE"), "{stderr}");
}

#[test]
fn help_exits_zero() {
    let out = phocus_lint(&["--help"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn unreadable_root_exits_three() {
    let out = phocus_lint(&["--root", "/no/such/workspace/anywhere"]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
}

/// A deliberately violating single-crate workspace, written under the
/// build's target directory so nothing outside the repo is touched.
fn violating_workspace() -> PathBuf {
    let dir = workspace_root().join("target/lint-cli-fixture-ws");
    let crate_dir = dir.join("crates/badcrate/src");
    fs::create_dir_all(&crate_dir).expect("create fixture workspace");
    fs::write(
        dir.join("Cargo.toml"),
        "[workspace]\nmembers = [\n    \"crates/badcrate\",\n]\n",
    )
    .expect("write root manifest");
    fs::write(
        dir.join("crates/badcrate/Cargo.toml"),
        "[package]\nname = \"par-badcrate\"\nversion = \"0.1.0\"\nedition = \"2021\"\n",
    )
    .expect("write crate manifest");
    fs::write(
        crate_dir.join("lib.rs"),
        "#![forbid(unsafe_code)]\npub fn close(a: f64, b: f64) -> bool {\n    \
         a.partial_cmp(&b).is_some()\n}\n",
    )
    .expect("write crate source");
    dir
}

#[test]
fn violations_exit_one_with_spanned_human_output() {
    let dir = violating_workspace();
    let out = phocus_lint(&["--root", dir.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/badcrate/src/lib.rs:3:") && stdout.contains("[float-ord]"),
        "expected a spanned float-ord diagnostic:\n{stdout}"
    );
}

#[test]
fn json_output_follows_the_stable_schema() {
    let dir = violating_workspace();
    let out = phocus_lint(&["--json", "--root", dir.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("{\"version\":2,\"rules\":["), "{stdout}");
    assert!(stdout.contains("\"cast-bounds\""), "{stdout}");
    assert!(stdout.contains("\"rule\":\"float-ord\""), "{stdout}");
    assert!(stdout.contains("\"line\":3"), "{stdout}");
    // ci.sh is absent from the fixture workspace, so the gate rule fires too.
    assert!(stdout.contains("\"rule\":\"ci-gate\""), "{stdout}");
}
