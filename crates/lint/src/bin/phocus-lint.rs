//! The `phocus-lint` CLI.
//!
//! ```text
//! phocus-lint [--json] [--root <dir>]    lint the workspace
//! phocus-lint rules                      print the rule registry, one per line
//! phocus-lint gate-crates [--root <dir>] print the panic-gate crate list
//! phocus-lint --help                     usage and rule list
//! ```
//!
//! Exit codes: `0` clean · `1` violations found · `2` usage error ·
//! `3` workspace I/O or parse failure.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
phocus-lint — workspace static analysis for determinism, layering, and panic-freedom

USAGE:
  phocus-lint [--json] [--root <dir>]     lint every non-vendor crate
  phocus-lint rules                       print the rule registry, one id per line
  phocus-lint gate-crates [--root <dir>]  print panic-freedom gate crate list
  phocus-lint --help

OPTIONS:
  --json        machine-readable diagnostics (stable schema, version 2)
  --root <dir>  workspace root (default: nearest ancestor with [workspace])

EXIT CODES:
  0  clean        1  violations found
  2  usage error  3  workspace I/O or parse failure

Suppressions: `// phocus-lint: allow(<rules>) — reason` (site, reason required)
and `// phocus-lint: allow-file(<rules>) — reason` (file); trailing same-line
form accepted. Hot-path functions are annotated `// phocus-lint: hot-kernel`.
See DESIGN.md §12 and §17.";

struct Args {
    json: bool,
    root: Option<PathBuf>,
    gate_crates: bool,
    rules: bool,
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        json: false,
        root: None,
        gate_crates: false,
        rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => return Ok(None),
            "--json" => args.json = true,
            "--root" => match it.next() {
                Some(dir) => args.root = Some(PathBuf::from(dir)),
                None => return Err("--root requires a directory argument".to_string()),
            },
            "gate-crates" => args.gate_crates = true,
            "rules" => args.rules = true,
            other => return Err(format!("unrecognized argument `{other}`")),
        }
    }
    Ok(Some(args))
}

/// Nearest ancestor of the current directory whose `Cargo.toml` declares a
/// `[workspace]` — so the tool works from any crate directory.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(src) = std::fs::read_to_string(&manifest) {
            if src.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::from(0);
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.rules {
        for r in par_lint::rules::RULES {
            println!("{r}");
        }
        return ExitCode::from(0);
    }
    let Some(root) = args.root.clone().or_else(find_root) else {
        eprintln!("error: no workspace root found (pass --root <dir>)");
        return ExitCode::from(3);
    };

    if args.gate_crates {
        return match par_lint::gate_crates(&root) {
            Ok(names) => {
                for n in names {
                    println!("{n}");
                }
                ExitCode::from(0)
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(3)
            }
        };
    }

    match par_lint::run(&root) {
        Ok(report) => {
            if args.json {
                println!("{}", par_lint::diag::to_json(&report.diagnostics));
            } else {
                for d in &report.diagnostics {
                    println!("{d}");
                }
                if report.diagnostics.is_empty() {
                    println!(
                        "phocus-lint: clean — {} files across {} crates",
                        report.files_scanned, report.crates
                    );
                } else {
                    println!(
                        "phocus-lint: {} violation(s) in {} files across {} crates",
                        report.diagnostics.len(),
                        report.files_scanned,
                        report.crates
                    );
                }
            }
            if report.diagnostics.is_empty() {
                ExitCode::from(0)
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(3)
        }
    }
}
