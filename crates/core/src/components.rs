//! Connected-component decomposition of a PAR instance.
//!
//! The PAR objective is a sum over queries, and within a query a photo's
//! contribution depends only on its most similar *selected* co-member — so
//! two photos interact (one's presence can change the other's marginal gain)
//! only if some query contains both **and** stores a nonzero similarity
//! between them. The graph over photos with exactly those edges splits the
//! instance into independent sub-problems coupled solely through the shared
//! budget `B`. τ-sparsification (Section 4.3) makes these components
//! numerous and small on realistic archives.
//!
//! [`decompose`] computes the components from the similarity stores:
//!
//! * [`ContextSim::Sparse`] queries contribute one edge per stored CSR pair;
//! * [`ContextSim::Dense`] and [`ContextSim::Unit`] queries couple all their
//!   members (the dense gain kernel visits every co-member, so a dense query
//!   is never split);
//! * queries whose members span several components are split into
//!   per-component *fragments* — the member sub-list in original order, with
//!   the weight and the relevance sub-slice copied bit-exactly and **no**
//!   re-normalization, so fragment `W·R` products equal the parent's.
//!
//! Components with a single photo (photos with no memberships, or members
//! with no stored similarity edges at all) are merged into one residual
//! shard: they never interact with anything, and pooling them avoids
//! thousands of one-photo evaluators.
//!
//! Each resulting [`ComponentView`] materializes a self-contained
//! [`Instance`] over remapped photo/query ids (sharing unsplit similarity
//! stores with the parent via `Arc`), so the per-shard
//! [`Evaluator`](crate::Evaluator) arenas reuse the offset-addressed layout
//! unchanged — just sized to the shard.

use crate::instance::Instance;
use crate::sim::ContextSim;
use crate::{Photo, PhotoId, Subset, SubsetId};
use std::sync::Arc;

/// One connected component of the photo-interaction graph, materialized as a
/// self-contained sub-instance with local photo and subset ids.
#[derive(Debug)]
pub struct ComponentView {
    /// The shard as a standalone instance: photos, query fragments,
    /// memberships and similarity stores all remapped to local ids. The
    /// budget is the parent's full `B` (the coordinator, not the shard,
    /// tracks global spend).
    pub instance: Instance,
    /// Local photo index → global [`PhotoId`], strictly ascending. Local
    /// photo order therefore equals global order, which preserves the
    /// solver's smaller-id tie-break inside a shard.
    pub photos: Vec<PhotoId>,
    /// Local subset index → global [`SubsetId`] of the query this fragment
    /// came from. A split query appears in several shards under the same
    /// global id.
    pub subsets: Vec<SubsetId>,
}

/// The labeling part of a component decomposition: which shard every photo
/// belongs to, without the materialized per-shard sub-instances.
///
/// This is the state the epoch-delta layer ([`crate::delta`]) maintains
/// incrementally: applying a delta re-labels only the *dirty* components and
/// copies clean labels through, and the result must equal a from-scratch
/// [`shard_labels`] of the post-delta instance exactly — same partition,
/// same shard numbers (pinned by proptests in the integration suite).
/// Derives `PartialEq`/`Eq` so that equality check is a one-liner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLabels {
    /// `photo_shard[p]` = shard index of photo `p`'s component.
    photo_shard: Vec<u32>,
    /// Number of shards (≥ 1 for any non-empty instance).
    num_shards: usize,
    /// Index of the merged singleton shard, if one was formed.
    singleton_pool: Option<usize>,
}

impl ShardLabels {
    /// Number of shards (≥ 1 for any non-empty instance).
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The shard index of a global photo.
    #[inline]
    pub fn shard_of(&self, p: PhotoId) -> usize {
        self.photo_shard[p.index()] as usize
    }

    /// Per-photo shard indices, indexed by [`PhotoId`].
    #[inline]
    pub fn photo_shards(&self) -> &[u32] {
        &self.photo_shard
    }

    /// The shard holding all merged single-photo components, if any.
    #[inline]
    pub fn singleton_pool(&self) -> Option<usize> {
        self.singleton_pool
    }

    /// Assembles labels from raw parts (used by the incremental maintenance
    /// in [`crate::delta`]).
    pub(crate) fn from_parts(
        photo_shard: Vec<u32>,
        num_shards: usize,
        singleton_pool: Option<usize>,
    ) -> Self {
        ShardLabels {
            photo_shard,
            num_shards,
            singleton_pool,
        }
    }
}

/// The full component decomposition of an instance: a true partition of the
/// photos plus per-photo shard/local lookup tables.
#[derive(Debug)]
pub struct Decomposition {
    /// The component sub-views, ordered by their smallest global photo id.
    pub shards: Vec<ComponentView>,
    /// The shard labeling (shared with the lighter [`shard_labels`] path).
    labels: ShardLabels,
    /// `photo_local[p]` = photo `p`'s local index within its shard.
    photo_local: Vec<u32>,
}

impl Decomposition {
    /// Number of shards (≥ 1 for any non-empty instance).
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index of a global photo.
    #[inline]
    pub fn shard_of(&self, p: PhotoId) -> usize {
        self.labels.shard_of(p)
    }

    /// The shard-local id of a global photo.
    #[inline]
    pub fn local_of(&self, p: PhotoId) -> PhotoId {
        PhotoId(self.photo_local[p.index()])
    }

    /// The shard holding all merged single-photo components, if any.
    #[inline]
    pub fn singleton_pool(&self) -> Option<usize> {
        self.labels.singleton_pool()
    }

    /// The shard labeling underlying this decomposition.
    #[inline]
    pub fn labels(&self) -> &ShardLabels {
        &self.labels
    }
}

/// Union-find over photo ids with path halving and union by size.
///
/// Crate-visible so the epoch-delta layer ([`crate::delta`]) can reuse it to
/// re-cluster dirty photos with identical union semantics.
pub(crate) struct Dsu {
    parent: Vec<u32>,
    pub(crate) size: Vec<u32>,
}

impl Dsu {
    pub(crate) fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    pub(crate) fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    pub(crate) fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
    }
}

/// Runs the interaction-graph union pass for `inst` into `dsu`.
///
/// Shared by the full [`shard_labels`] pass and the delta layer (which runs
/// it over the post-delta instance restricted to dirty photos).
pub(crate) fn union_interactions(inst: &Instance, dsu: &mut Dsu) {
    for q in inst.subsets() {
        match inst.sim(q.id) {
            ContextSim::Sparse(sp) => {
                // One union per stored pair: photos without a stored edge in
                // any query never influence each other's gains.
                for (pos, &m) in q.members.iter().enumerate() {
                    for &j in sp.neighbors(pos).0 {
                        dsu.union(m.0, q.members[j as usize].0);
                    }
                }
            }
            // Dense and Unit stores couple every co-member pair; a chain
            // union over the member list merges the whole clique.
            _ => {
                for w in q.members.windows(2) {
                    dsu.union(w[0].0, w[1].0);
                }
            }
        }
    }
}

/// Computes the shard labeling of `inst` — the component partition plus the
/// deterministic shard numbering — without materializing sub-instances.
///
/// Numbering: components in first-seen order by ascending photo id, with all
/// single-photo components collapsed onto one pool shard (when there are at
/// least two of them). This is the cheap prefix of [`decompose`] and the
/// ground truth the incremental relabeling in [`crate::delta`] must
/// reproduce exactly.
pub fn shard_labels(inst: &Instance) -> ShardLabels {
    let n = inst.num_photos();
    let mut dsu = Dsu::new(n);
    union_interactions(inst, &mut dsu);

    let mut singletons = 0usize;
    for p in 0..n as u32 {
        let root = dsu.find(p) as usize;
        if dsu.size[root] == 1 {
            singletons += 1;
        }
    }
    let merge_singletons = singletons >= 2;
    let mut shard_of_root = vec![u32::MAX; n];
    let mut pool_shard = u32::MAX;
    let mut next = 0u32;
    let mut photo_shard = vec![0u32; n];
    for p in 0..n as u32 {
        let root = dsu.find(p) as usize;
        let shard = if merge_singletons && dsu.size[root] == 1 {
            if pool_shard == u32::MAX {
                pool_shard = next;
                next += 1;
            }
            pool_shard
        } else {
            if shard_of_root[root] == u32::MAX {
                shard_of_root[root] = next;
                next += 1;
            }
            shard_of_root[root]
        };
        photo_shard[p as usize] = shard;
    }

    ShardLabels::from_parts(
        photo_shard,
        next as usize,
        (pool_shard != u32::MAX).then_some(pool_shard as usize),
    )
}

/// Computes the connected components of `inst`'s photo-interaction graph and
/// materializes one [`ComponentView`] per component (singletons pooled).
///
/// The decomposition is a true partition: every photo lands in exactly one
/// shard, every query fragment lies wholly inside one shard, the fragments
/// of a query partition its members, and no stored similarity edge crosses
/// shards. Runs in `O(n + Σ_q E_q · α)` time.
pub fn decompose(inst: &Instance) -> Decomposition {
    decompose_with_labels(inst, shard_labels(inst))
}

/// [`decompose`] with the labeling precomputed: materializes the per-shard
/// sub-instances from `labels` without re-running the union-find. Callers
/// hand in resident labels — the epoch-delta layer's incrementally
/// maintained ones, or labels bulk-read from a `phocus-pack` file
/// ([`crate::pack`]) — which must equal `shard_labels(inst)` (the pack
/// writer derives them exactly so; the delta layer's are pinned equal by
/// proptest).
pub fn decompose_with_labels(inst: &Instance, labels: ShardLabels) -> Decomposition {
    let n = inst.num_photos();
    debug_assert_eq!(labels.photo_shards().len(), n);
    let photo_shard = labels.photo_shards();
    let num_shards = labels.num_shards();
    let mut photo_local = vec![0u32; n];
    let mut shard_globals: Vec<Vec<PhotoId>> = vec![Vec::new(); num_shards];
    for p in 0..n {
        let s = photo_shard[p] as usize;
        // phocus-lint: allow(cast-bounds) — per-shard count ≤ n, and PhotoId is u32
        photo_local[p] = shard_globals[s].len() as u32;
        shard_globals[s].push(PhotoId(p as u32));
    }

    // Materialize per-shard photos and the projected required set. Iterating
    // ascending global ids keeps both lists ascending in local ids.
    let mut shard_photos: Vec<Vec<Photo>> = vec![Vec::new(); num_shards];
    for (p, &s) in photo_shard.iter().enumerate() {
        let photo = inst.photo(PhotoId(p as u32));
        shard_photos[s as usize].push(Photo::new(
            PhotoId(photo_local[p]),
            photo.name.clone(),
            photo.cost,
        ));
    }
    let mut shard_required: Vec<Vec<PhotoId>> = vec![Vec::new(); num_shards];
    for &r in inst.required() {
        shard_required[photo_shard[r.index()] as usize].push(PhotoId(photo_local[r.index()]));
    }

    // Distribute queries, splitting cross-shard ones into fragments. Global
    // subset order is preserved within each shard so the sub-instance
    // membership lists keep the parent's ascending-subset iteration order —
    // a prerequisite for bit-identical gain sums.
    let mut shard_subsets: Vec<Vec<Subset>> = vec![Vec::new(); num_shards];
    let mut shard_sims: Vec<Vec<Arc<ContextSim>>> = vec![Vec::new(); num_shards];
    let mut shard_subset_globals: Vec<Vec<SubsetId>> = vec![Vec::new(); num_shards];
    let mut push_fragment =
        |s: usize, subset: Subset, store: Arc<ContextSim>, global: SubsetId| {
            let mut subset = subset;
            // phocus-lint: allow(cast-bounds) — per-shard subset count ≤ m, and SubsetId is u32
            subset.id = SubsetId(shard_subsets[s].len() as u32);
            shard_subsets[s].push(subset);
            shard_sims[s].push(store);
            shard_subset_globals[s].push(global);
        };
    for q in inst.subsets() {
        let first = photo_shard[q.members[0].index()];
        if q.members.iter().all(|&m| photo_shard[m.index()] == first) {
            // Whole query in one shard: remap members, share the store.
            let members = q.members.iter().map(|&m| PhotoId(photo_local[m.index()])).collect();
            push_fragment(
                first as usize,
                Subset {
                    id: q.id, // overwritten with the local id
                    label: q.label.clone(),
                    weight: q.weight,
                    members,
                    relevance: q.relevance.clone(),
                },
                Arc::clone(inst.sim_arc(q.id)),
                q.id,
            );
            continue;
        }
        // Cross-shard query: group member positions by shard in first-
        // appearance order. Only sparse stores can split — dense and unit
        // queries were clique-unioned above.
        let mut groups: Vec<(u32, Vec<u32>)> = Vec::new();
        for (pos, &m) in q.members.iter().enumerate() {
            let s = photo_shard[m.index()];
            match groups.iter_mut().find(|(gs, _)| *gs == s) {
                Some((_, positions)) => positions.push(pos as u32),
                None => groups.push((s, vec![pos as u32])),
            }
        }
        let Some(sp) = inst.sim(q.id).as_sparse() else {
            unreachable!("only sparse-similarity queries can span shards")
        };
        for (s, positions) in groups {
            let members = positions
                .iter()
                .map(|&pos| PhotoId(photo_local[q.members[pos as usize].index()]))
                .collect();
            let relevance = positions.iter().map(|&pos| q.relevance[pos as usize]).collect();
            push_fragment(
                s as usize,
                Subset {
                    id: q.id,
                    label: q.label.clone(),
                    weight: q.weight,
                    members,
                    relevance,
                },
                Arc::new(ContextSim::Sparse(sp.restrict(&positions))),
                q.id,
            );
        }
    }

    let shards = shard_photos
        .into_iter()
        .zip(shard_required)
        .zip(shard_subsets.into_iter().zip(shard_sims))
        .zip(shard_globals.into_iter().zip(shard_subset_globals))
        .map(|(((photos, required), (subsets, sims)), (globals, subset_globals))| {
            ComponentView {
                instance: Instance::assemble(photos, required, subsets, inst.budget(), sims),
                photos: globals,
                subsets: subset_globals,
            }
        })
        .collect();

    Decomposition {
        shards,
        labels,
        photo_local,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure1_instance, random_instance, RandomInstanceConfig, MB};
    use crate::Evaluator;

    /// Checks the structural partition invariants on any decomposition.
    fn assert_partition(inst: &Instance, dec: &Decomposition) {
        let mut seen = vec![false; inst.num_photos()];
        for (s, view) in dec.shards.iter().enumerate() {
            assert!(view.photos.windows(2).all(|w| w[0] < w[1]));
            for (local, &g) in view.photos.iter().enumerate() {
                assert!(!seen[g.index()], "photo {g:?} in two shards");
                seen[g.index()] = true;
                assert_eq!(dec.shard_of(g), s);
                assert_eq!(dec.local_of(g), PhotoId(local as u32));
                let sub = view.instance.photo(PhotoId(local as u32));
                assert_eq!(sub.cost, inst.cost(g));
            }
        }
        assert!(seen.iter().all(|&b| b), "photo missing from all shards");

        // Fragments of each query partition its members, bit-exact metadata.
        let mut covered: Vec<Vec<bool>> = inst
            .subsets()
            .iter()
            .map(|q| vec![false; q.members.len()])
            .collect();
        for view in &dec.shards {
            for (lq, &gq) in view.subsets.iter().enumerate() {
                let frag = view.instance.subset(SubsetId(lq as u32));
                let parent = inst.subset(gq);
                assert_eq!(frag.weight.to_bits(), parent.weight.to_bits());
                for (k, &lm) in frag.members.iter().enumerate() {
                    let g = view.photos[lm.index()];
                    let pos = parent.members.iter().position(|&m| m == g).unwrap();
                    assert!(!covered[gq.index()][pos]);
                    covered[gq.index()][pos] = true;
                    assert_eq!(
                        frag.relevance[k].to_bits(),
                        parent.relevance[pos].to_bits()
                    );
                }
            }
        }
        assert!(covered.iter().flatten().all(|&b| b), "member lost in split");
    }

    #[test]
    fn figure1_decomposes_to_valid_partition() {
        let inst = figure1_instance(4 * MB);
        let dec = decompose(&inst);
        assert_partition(&inst, &dec);
        assert!(dec.num_shards() >= 1);
    }

    #[test]
    fn dense_random_instance_partition() {
        let inst = random_instance(0xC0FFEE, &RandomInstanceConfig::default());
        let dec = decompose(&inst);
        assert_partition(&inst, &dec);
    }

    #[test]
    fn sparsified_instance_splits_and_scores_match() {
        let inst =
            random_instance(0xC0FFEE, &RandomInstanceConfig::default()).sparsify(0.8);
        let dec = decompose(&inst);
        assert_partition(&inst, &dec);
        // Per-shard scores of "select everything" must sum to the global
        // all-selected score: the decomposition loses no objective mass.
        let mut ev = Evaluator::new(&inst);
        for p in 0..inst.num_photos() as u32 {
            ev.add(PhotoId(p));
        }
        let mut sharded = 0.0;
        for view in &dec.shards {
            let mut sev = Evaluator::new(&view.instance);
            for p in 0..view.instance.num_photos() as u32 {
                sev.add(PhotoId(p));
            }
            sharded += sev.score();
        }
        assert!((sharded - ev.score()).abs() < 1e-9 * ev.score().abs().max(1.0));
    }

    #[test]
    fn unit_queries_are_clique_unioned() {
        let inst = random_instance(7, &RandomInstanceConfig::default()).with_unit_sims();
        let dec = decompose(&inst);
        assert_partition(&inst, &dec);
        for view in &dec.shards {
            for (lq, _) in view.subsets.iter().enumerate() {
                let frag = view.instance.subset(SubsetId(lq as u32));
                let parent_len = inst.subset(view.subsets[lq]).members.len();
                assert_eq!(frag.members.len(), parent_len, "unit query was split");
            }
        }
    }

    #[test]
    fn singletons_merge_into_pool() {
        // Unit queries of size 1: every photo is its own component.
        let mut b = crate::InstanceBuilder::new(100);
        for k in 0..5 {
            let p = b.add_photo(format!("p{k}"), 10);
            b.add_subset(format!("q{k}"), 1.0, vec![p], vec![]);
        }
        let inst = b.build_with_provider(&crate::UnitSimilarity).unwrap();
        let dec = decompose(&inst);
        assert_eq!(dec.num_shards(), 1);
        assert_eq!(dec.singleton_pool(), Some(0));
        assert_partition(&inst, &dec);
    }
}
