//! Embedding vectors and the two embedders.
//!
//! [`FeatureEmbedder`] is the honest pipeline: extracted features (color +
//! gradient descriptors, optionally BoW histograms) are randomly projected to
//! a compact L2-normalized vector — the classical random-projection sketch of
//! a learned embedding.
//!
//! [`SpecEmbedder`] is the fast path used for 100K-photo scalability runs:
//! it produces the embedding in closed form from the [`ImageSpec`]
//! (category prototype + attribute directions + per-photo noise), skipping
//! pixel rendering. Both embedders yield the same similarity *geometry* —
//! high intra-category cosine, low cross-category cosine, smoothly degrading
//! with attribute distance — which is the only property PAR consumes. The
//! substitution is documented in DESIGN.md and validated by tests comparing
//! the two embedders' similarity orderings.

use crate::features::full_features;
use crate::image::{Image, ImageSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An L2-normalized embedding vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding(pub Vec<f32>);

impl Embedding {
    /// Builds an embedding, normalizing to unit L2 norm (zero vectors are
    /// left as zeros).
    pub fn new(mut v: Vec<f32>) -> Self {
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 1e-9 {
            for x in &mut v {
                *x /= norm;
            }
        }
        Embedding(v)
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Cosine similarity with another embedding (inputs are unit-norm, so
    /// this is just the dot product, clamped).
    pub fn cosine(&self, other: &Embedding) -> f64 {
        debug_assert_eq!(self.dim(), other.dim());
        let dot: f32 = self.0.iter().zip(&other.0).map(|(a, b)| a * b).sum();
        (dot as f64).clamp(-1.0, 1.0)
    }

    /// Raw components.
    pub fn as_slice(&self) -> &[f32] {
        &self.0
    }
}

/// Random-projection embedder over extracted image features.
#[derive(Debug, Clone)]
pub struct FeatureEmbedder {
    /// `out_dim × in_dim` projection, row-major.
    projection: Vec<f32>,
    in_dim: usize,
    out_dim: usize,
}

impl FeatureEmbedder {
    /// Creates an embedder projecting `in_dim`-dimensional features to
    /// `out_dim` dimensions (Gaussian random projection).
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        assert!(in_dim > 0 && out_dim > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = 1.0 / (in_dim as f32).sqrt();
        let projection = (0..in_dim * out_dim)
            .map(|_| {
                // Box–Muller standard normal.
                let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.gen();
                ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32 * scale
            })
            .collect();
        FeatureEmbedder {
            projection,
            in_dim,
            out_dim,
        }
    }

    /// Embeds a raw feature vector.
    pub fn embed(&self, features: &[f32]) -> Embedding {
        assert_eq!(features.len(), self.in_dim, "feature dimensionality");
        let mut out = vec![0.0f32; self.out_dim];
        for (o, row) in out.iter_mut().zip(self.projection.chunks(self.in_dim)) {
            *o = row.iter().zip(features).map(|(p, f)| p * f).sum();
        }
        Embedding::new(out)
    }

    /// Renders the spec, extracts features, and embeds — the full pipeline.
    pub fn embed_spec(&self, spec: &ImageSpec, width: usize, height: usize) -> Embedding {
        let img = Image::render(spec, width, height);
        self.embed(&full_features(&img))
    }

    /// Input feature dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output embedding dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

/// Closed-form embedder from image specs (the ResNet-50 simulator).
///
/// `e(spec) = normalize(prototype(category) + Σ attr_k · scale · dir_k +
/// noise(noise_seed) · noise_scale)`, with all directions drawn from a
/// seeded Gaussian. Cosine similarity is ≈1 for near-duplicate specs, decays
/// with attribute distance, and is ≈0 across categories.
#[derive(Debug, Clone)]
pub struct SpecEmbedder {
    dim: usize,
    seed: u64,
    /// Unit attribute directions, precomputed at construction.
    attr_dirs: Vec<Vec<f32>>,
    /// Strength of attribute variation relative to the category prototype.
    pub attr_scale: f32,
    /// Strength of per-photo noise.
    pub noise_scale: f32,
}

impl SpecEmbedder {
    /// Creates a spec embedder with the given dimensionality and seed.
    pub fn new(dim: usize, seed: u64) -> Self {
        let mut e = SpecEmbedder {
            dim,
            seed,
            attr_dirs: Vec::new(),
            attr_scale: 0.35,
            noise_scale: 0.15,
        };
        e.attr_dirs = (0..4)
            .map(|k| {
                let mut dir = e.gaussian_vec(0x2000_0000 + k as u64);
                let norm: f32 = dir.iter().map(|x| x * x).sum::<f32>().sqrt();
                for x in &mut dir {
                    *x /= norm.max(1e-9);
                }
                dir
            })
            .collect();
        e
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn gaussian_vec(&self, stream: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ stream.wrapping_mul(0x9E3779B97F4A7C15));
        (0..self.dim)
            .map(|_| {
                let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.gen();
                ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
            })
            .collect()
    }

    /// The unit-norm category prototype vector.
    pub fn prototype(&self, category: u32) -> Vec<f32> {
        let mut v = self.gaussian_vec(0x1000_0000 + category as u64);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        for x in &mut v {
            *x /= norm.max(1e-9);
        }
        v
    }

    /// Embeds a spec in closed form.
    pub fn embed(&self, spec: &ImageSpec) -> Embedding {
        let proto = self.prototype(spec.category);
        self.embed_with_prototype(&proto, spec)
    }

    /// Embeds a spec using a cache of category prototypes — the fast path
    /// for generating very large datasets, where prototype recomputation
    /// would dominate.
    pub fn embed_cached(
        &self,
        spec: &ImageSpec,
        cache: &mut std::collections::HashMap<u32, Vec<f32>>,
    ) -> Embedding {
        let proto = cache
            .entry(spec.category)
            .or_insert_with(|| self.prototype(spec.category));
        let proto = proto.clone();
        self.embed_with_prototype(&proto, spec)
    }

    fn embed_with_prototype(&self, proto: &[f32], spec: &ImageSpec) -> Embedding {
        let mut v = proto.to_vec();
        // Attribute directions (shared across categories, like learned
        // factors of variation), centered at 0.5.
        for (dir, &a) in self.attr_dirs.iter().zip(&spec.attributes) {
            let coef = self.attr_scale * (a - 0.5);
            for (x, d) in v.iter_mut().zip(dir) {
                *x += coef * d;
            }
        }
        // Per-photo noise.
        let noise = self.gaussian_vec(0x3000_0000 ^ spec.noise_seed);
        let nnorm: f32 = noise.iter().map(|x| x * x).sum::<f32>().sqrt();
        for (x, n) in v.iter_mut().zip(&noise) {
            *x += self.noise_scale * n / nnorm.max(1e-9);
        }
        Embedding::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embeddings_are_unit_norm() {
        let e = Embedding::new(vec![3.0, 4.0]);
        let norm: f32 = e.0.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-6);
        assert!((e.cosine(&e) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_vector_stays_zero() {
        let e = Embedding::new(vec![0.0, 0.0]);
        assert_eq!(e.0, vec![0.0, 0.0]);
        assert_eq!(e.cosine(&e), 0.0);
    }

    #[test]
    fn spec_embedder_clusters_by_category() {
        let emb = SpecEmbedder::new(64, 7);
        let a1 = emb.embed(&ImageSpec::new(1, [0.5, 0.4, 0.6, 0.5], 10));
        let a2 = emb.embed(&ImageSpec::new(1, [0.52, 0.42, 0.58, 0.5], 11));
        let b = emb.embed(&ImageSpec::new(9, [0.5, 0.4, 0.6, 0.5], 12));
        let same = a1.cosine(&a2);
        let cross = a1.cosine(&b);
        assert!(same > 0.8, "same-category cosine {same}");
        assert!(cross < 0.5, "cross-category cosine {cross}");
        assert!(same > cross + 0.2);
    }

    #[test]
    fn spec_embedding_decays_with_attribute_distance() {
        let emb = SpecEmbedder::new(64, 3);
        let base = emb.embed(&ImageSpec::new(2, [0.5; 4], 1));
        let near = emb.embed(&ImageSpec::new(2, [0.55, 0.5, 0.5, 0.5], 1));
        let far = emb.embed(&ImageSpec::new(2, [0.95, 0.1, 0.9, 0.1], 1));
        assert!(base.cosine(&near) > base.cosine(&far));
    }

    #[test]
    fn feature_embedder_matches_spec_geometry() {
        // Same-category pairs must rank above cross-category pairs under
        // BOTH embedders — the property that justifies the fast path.
        let fe = FeatureEmbedder::new(
            crate::features::COLOR_BINS
                + crate::features::GRID * crate::features::GRID * crate::features::ORIENT_BINS,
            32,
            5,
        );
        let se = SpecEmbedder::new(32, 5);
        let s_a1 = ImageSpec::new(4, [0.5, 0.5, 0.5, 0.5], 1);
        let s_a2 = ImageSpec::new(4, [0.52, 0.5, 0.5, 0.5], 2);
        let s_b = ImageSpec::new(11, [0.5, 0.5, 0.5, 0.5], 3);
        for (same, cross) in [
            (
                fe.embed_spec(&s_a1, 32, 32)
                    .cosine(&fe.embed_spec(&s_a2, 32, 32)),
                fe.embed_spec(&s_a1, 32, 32)
                    .cosine(&fe.embed_spec(&s_b, 32, 32)),
            ),
            (
                se.embed(&s_a1).cosine(&se.embed(&s_a2)),
                se.embed(&s_a1).cosine(&se.embed(&s_b)),
            ),
        ] {
            assert!(same > cross, "same {same} ≤ cross {cross}");
        }
    }

    #[test]
    fn embedders_are_deterministic() {
        let se = SpecEmbedder::new(16, 9);
        let spec = ImageSpec::new(3, [0.1, 0.9, 0.3, 0.7], 42);
        assert_eq!(se.embed(&spec), se.embed(&spec));
        let fe = FeatureEmbedder::new(8, 4, 2);
        let f = vec![0.1f32; 8];
        assert_eq!(fe.embed(&f), fe.embed(&f));
    }
}
