//! Fixture: a well-formed pragma — known rule, written rationale — that
//! `lint-meta` has nothing to say about.

pub fn comparable(a: f64, b: f64) -> bool {
    a.partial_cmp(&b).is_some() // phocus-lint: allow(float-ord) — fixture: audited NaN-free site
}
