//! The no-panic fuzz gate.
//!
//! Every external input path — text-format bytes, hand-built universes with
//! adversarial numerics, raw similarity pairs, and `phocus-pack` binary
//! images — must surface as a typed error or a valid result; a panic
//! anywhere in `from_text → represent → solve` or in `unpack_instance` is a
//! bug. The generators are seeded, so CI runs a fixed, reproducible corpus
//! (see `ci.sh`).

use par_core::fixtures::{random_instance, RandomInstanceConfig};
use par_core::{
    fnv1a64, pack_instance, unpack_instance, InstanceBuilder, ModelError, PhotoId, SparseSim,
    SubsetId, UnitSimilarity,
};
use par_datasets::{from_text, to_text, SubsetDef, Universe};
use par_embed::Embedding;
use phocus::{ActionLadder, CompressionLevel, Phocus, PhocusError};
use proptest::prelude::*;

/// SplitMix64 — a local deterministic stream so each case can draw an
/// unbounded number of values from one generated seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fragments the text fuzzer splices together: valid records, truncated
/// records, hostile numerics, and separator soup.
const FRAGMENTS: &[&str] = &[
    "# phocus-universe v1\n",
    "name\tfuzz\n",
    "photo\t0\t100\ta\n",
    "photo\t1\t200\tb\n",
    "photo\t0\t18446744073709551615\tmax\n",
    "photo\t0\t0\tzero-cost\n",
    "photo\t99999999\t1\tsparse-id\n",
    "photo\t0\n",
    "photo\t-1\t5\tneg\n",
    "embedding\t0\t1.0\t0.0\n",
    "embedding\t1\t0.0\t1.0\n",
    "embedding\t0\tNaN\tinf\n",
    "embedding\t0\n",
    "embedding\tx\t1.0\n",
    "subset\tq\t1.5\t0:1\t1:2\n",
    "subset\tq\tNaN\t0:1\n",
    "subset\tq\t-inf\t0:1\n",
    "subset\tq\t1e308\t0:NaN\n",
    "subset\tq\t2.0\t5:1\n",
    "subset\tq\t2.0\t0:1\t0:1\n",
    "subset\tq\t2.0\n",
    "subset\tq\t1.0\t0:0\n",
    "required\t0\n",
    "required\t7\t-3\n",
    "exif\t0\t12345\t1.5\t2.5\tcam\n",
    "exif\t0\tbad\n",
    "frobnicate\t1\n",
    "\n",
    "\t",
    ":",
    "0",
    "NaN",
    "photo",
    "subset\t",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary splices of format fragments: `from_text` must return
    /// `Ok`/`Err`, never panic, and any `Ok` universe must re-validate.
    #[test]
    fn from_text_never_panics_on_fragment_soup(seed in any::<u64>(), len in 1usize..24) {
        let mut s = seed;
        let mut text = String::new();
        for _ in 0..len {
            text.push_str(FRAGMENTS[(splitmix(&mut s) % FRAGMENTS.len() as u64) as usize]);
        }
        if let Ok(u) = from_text(&text) {
            u.validate().expect("from_text output must be valid");
        }
    }

    /// Raw byte soup (lossily decoded): the parser sees genuinely arbitrary
    /// lines, not just recombined fragments.
    #[test]
    fn from_text_never_panics_on_byte_soup(seed in any::<u64>(), len in 0usize..200) {
        let mut s = seed;
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..len {
            // Bias toward the format's structural bytes so parsing gets past
            // the first field often enough to exercise deep paths.
            let b = match splitmix(&mut s) % 8 {
                0 => b'\t',
                1 => b'\n',
                2..=4 => b"0123456789.:-+eE"[(splitmix(&mut s) % 16) as usize],
                _ => (splitmix(&mut s) % 256) as u8,
            };
            bytes.push(b);
        }
        let text = String::from_utf8_lossy(&bytes);
        let _ = from_text(&text);
    }
}

/// A small well-formed universe the adversarial cases corrupt.
fn base_universe(n: usize) -> Universe {
    let dim = 4;
    Universe {
        name: "adversarial".into(),
        names: (0..n).map(|i| format!("p{i}")).collect(),
        costs: (0..n).map(|i| 50 + 10 * i as u64).collect(),
        embeddings: (0..n)
            .map(|i| {
                let mut v = vec![0.25f32; dim];
                v[i % dim] = 1.0;
                Embedding::new(v)
            })
            .collect(),
        exif: None,
        subsets: vec![
            SubsetDef {
                label: "q0".into(),
                weight: 2.0,
                members: (0..n as u32 / 2).collect(),
                relevance: vec![1.0; n / 2],
            },
            SubsetDef {
                label: "q1".into(),
                weight: 1.0,
                members: (n as u32 / 2..n as u32).collect(),
                relevance: vec![1.0; n - n / 2],
            },
        ],
        required: vec![0],
    }
}

/// Every way this harness knows to corrupt a universe.
fn corrupt(u: &mut Universe, case: u64, raw: u64) {
    match case % 13 {
        0 => u.subsets[0].weight = f64::NAN,
        1 => u.subsets[0].weight = f64::INFINITY,
        2 => u.subsets[1].weight = f64::NEG_INFINITY,
        3 => u.subsets[0].weight = 0.0,
        4 => u.subsets[0].relevance[0] = f64::NAN,
        5 => {
            let i = raw as usize % u.costs.len();
            u.costs[i] = 0;
        }
        6 => {
            // The per-photo costs are fine; their sum overflows u64.
            for c in &mut u.costs {
                *c = u64::MAX / 2;
            }
        }
        7 => {
            u.subsets[0].members.clear();
            u.subsets[0].relevance.clear();
        }
        8 => u.subsets[1].members[0] = u.num_photos() as u32 + raw as u32 % 1000,
        9 => u.required = vec![u.num_photos() as u32],
        10 => u.subsets[0].relevance.pop().map_or((), drop),
        11 => u.subsets[1].members[0] = u.subsets[1].members[1 % u.subsets[1].members.len()],
        12 => u.subsets[0].relevance[0] = -1.0,
        _ => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Adversarial universes through the full pipeline: serialization must
    /// not panic, parsing must reject or the solver must succeed or return
    /// a typed error — no panic anywhere.
    #[test]
    fn corrupted_pipeline_is_typed_or_valid(case in any::<u64>(), raw in any::<u64>(), n in 4usize..12) {
        let mut u = base_universe(n);
        corrupt(&mut u, case, raw);
        // to_text must serialize even hostile numerics (NaN/inf render as
        // their Display forms and round-trip through f64::from_str).
        let text = to_text(&u);
        match from_text(&text) {
            Err(_) => {} // typed rejection: the desired outcome for most cases
            Ok(parsed) => {
                // Zero-cost photos survive universe validation by design; the
                // instance builder inside represent() must reject them (or
                // solve must succeed) — never panic.
                let total = parsed.total_cost();
                for budget in [1, total / 2 + 1, total, u64::MAX] {
                    match Phocus::default().solve(&parsed, budget) {
                        Ok(report) => {
                            assert!(report.cost <= budget);
                            assert!(report.score.is_finite());
                        }
                        Err(e) => {
                            // Typed, displayable, and source-chained.
                            assert!(!e.to_string().is_empty());
                        }
                    }
                }
            }
        }
    }

    /// The builder path with hostile parameters: typed error or valid
    /// instance, decided entirely by validation.
    #[test]
    fn builder_never_panics(seed in any::<u64>(), n in 1usize..8) {
        let mut s = seed;
        let mut b = InstanceBuilder::new(splitmix(&mut s) % 10_000);
        for i in 0..n {
            // Costs include 0 (invalid) and huge values (sum may overflow).
            let cost = match splitmix(&mut s) % 4 {
                0 => 0,
                1 => u64::MAX / 2,
                _ => 1 + splitmix(&mut s) % 500,
            };
            b.add_photo(format!("p{i}"), cost);
        }
        let weight = match splitmix(&mut s) % 5 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => -1.0,
            3 => 0.0,
            _ => 1.5,
        };
        // Member ids intentionally range past the photo count.
        let members: Vec<PhotoId> = (0..1 + splitmix(&mut s) % 6)
            .map(|_| PhotoId((splitmix(&mut s) % (n as u64 + 3)) as u32))
            .collect();
        let relevance: Vec<f64> = members
            .iter()
            .map(|_| match splitmix(&mut s) % 4 {
                0 => f64::NAN,
                1 => -2.0,
                _ => 1.0,
            })
            .collect();
        b.add_subset("q", weight, members, relevance);
        if splitmix(&mut s).is_multiple_of(2) {
            b.require(PhotoId((splitmix(&mut s) % (n as u64 + 2)) as u32));
        }
        let _ = b.build_with_provider(&UnitSimilarity);
    }

    /// Raw similarity pairs with out-of-range indices and non-[0,1] values:
    /// `SparseSim::from_pairs` must reject with the matching typed error.
    #[test]
    fn sparse_pairs_are_typed(seed in any::<u64>(), n in 1usize..10, m in 0usize..12) {
        let mut s = seed;
        let mut pairs = Vec::with_capacity(m);
        for _ in 0..m {
            let i = (splitmix(&mut s) % (n as u64 * 2)) as u32;
            let j = (splitmix(&mut s) % (n as u64 * 2)) as u32;
            let sim = match splitmix(&mut s) % 6 {
                0 => f64::NAN,
                1 => -0.5,
                2 => 1.5,
                3 => f64::INFINITY,
                _ => (splitmix(&mut s) % 1000) as f64 / 1000.0,
            };
            pairs.push((i, j, sim));
        }
        match SparseSim::from_pairs(SubsetId(0), n, pairs.clone()) {
            Ok(sim) => {
                assert_eq!(sim.len(), n);
                // Only in-range, in-[0,1] pairs can have survived.
                for (i, j, s) in pairs {
                    if i != j && (i as usize) < n && (j as usize) < n && (0.0..=1.0).contains(&s) {
                        assert!(sim.sim(i as usize, j as usize) >= 0.0);
                    }
                }
            }
            Err(ModelError::PairIndexOutOfRange { index, members, .. }) => {
                assert!(index as usize >= members);
            }
            Err(ModelError::InvalidSimilarity { value, .. }) => {
                assert!(!(0.0..=1.0).contains(&value) || value.is_nan());
            }
            Err(other) => panic!("unexpected error kind: {other}"),
        }
    }
}

// ---------------------------------------------------------------------------
// The pack-reader fuzz gate: `unpack_instance` over corrupted binary images.
// ---------------------------------------------------------------------------

/// Pack layout constants mirrored from `par_core::pack` (the format spec in
/// DESIGN.md §15): 16-byte header, 32-byte table entries, 9 sections.
const PACK_HEADER: usize = 16;
const PACK_ENTRY: usize = 32;
const PACK_SECTIONS: usize = 9;

/// A small but structurally complete valid pack (sparse similarities, a
/// required photo, multiple components) the corruption cases start from.
fn base_pack() -> Vec<u8> {
    let inst = random_instance(
        7,
        &RandomInstanceConfig {
            photos: 30,
            subsets: 10,
            subset_size: (2, 5),
            cost_range: (100, 900),
            budget_fraction: 0.5,
            required_prob: 0.1,
        },
    );
    pack_instance(&inst).expect("fixture packs")
}

/// Byte range `[offset, offset + len)` of table entry `i`'s payload.
fn pack_section_bounds(bytes: &[u8], i: usize) -> (usize, usize) {
    let e = PACK_HEADER + i * PACK_ENTRY;
    let offset = u64::from_le_bytes(bytes[e + 8..e + 16].try_into().unwrap()) as usize;
    let len = u64::from_le_bytes(bytes[e + 16..e + 24].try_into().unwrap()) as usize;
    (offset, len)
}

/// Recomputes table entry `i`'s checksum over its (possibly tampered)
/// payload, so corruption reaches the decode layer instead of dying at the
/// checksum comparison.
fn pack_fix_checksum(bytes: &mut [u8], i: usize) {
    let (offset, len) = pack_section_bounds(bytes, i);
    let sum = fnv1a64(&bytes[offset..offset + len]);
    let e = PACK_HEADER + i * PACK_ENTRY;
    bytes[e + 24..e + 32].copy_from_slice(&sum.to_le_bytes());
}

/// Structured corruption that the reader is *guaranteed* to reject: every
/// mode breaks an invariant the format checks explicitly.
fn corrupt_pack_structurally(bytes: &mut Vec<u8>, mode: u64, raw: u64) {
    match mode % 8 {
        // Truncation strictly inside the image (a full-length "truncation"
        // would be a no-op).
        0 => {
            let cut = raw as usize % bytes.len();
            bytes.truncate(cut);
        }
        // Version skew.
        1 => bytes[8..12].copy_from_slice(&(2 + (raw as u32) % 1000).to_le_bytes()),
        // A section count far past MAX_SECTIONS: the reader must reject it
        // before sizing anything from it.
        2 => bytes[12..16].copy_from_slice(&u32::MAX.to_le_bytes()),
        // Magic corruption.
        3 => bytes[raw as usize % 8] ^= 0xFF,
        // Table offset pointing past EOF.
        4 => {
            let e = PACK_HEADER + (raw as usize % PACK_SECTIONS) * PACK_ENTRY;
            bytes[e + 8..e + 16].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        }
        // Inflated section length (also exercises offset+len overflow).
        5 => {
            let e = PACK_HEADER + (raw as usize % PACK_SECTIONS) * PACK_ENTRY;
            bytes[e + 16..e + 24].copy_from_slice(&u64::MAX.to_le_bytes());
        }
        // Duplicate section kind: stamp entry 0's kind onto a later entry.
        6 => {
            let e = PACK_HEADER + (1 + raw as usize % (PACK_SECTIONS - 1)) * PACK_ENTRY;
            let kind0: [u8; 4] = bytes[PACK_HEADER..PACK_HEADER + 4].try_into().unwrap();
            bytes[e..e + 4].copy_from_slice(&kind0);
        }
        // Overlapping sections: pull a later entry's offset back onto its
        // predecessor's.
        7 => {
            let e = PACK_HEADER + (1 + raw as usize % (PACK_SECTIONS - 1)) * PACK_ENTRY;
            let prev: [u8; 8] = bytes[e - PACK_ENTRY + 8..e - PACK_ENTRY + 16]
                .try_into()
                .unwrap();
            bytes[e + 8..e + 16].copy_from_slice(&prev);
        }
        _ => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Every structural corruption mode yields a typed [`par_core::PackError`]
    /// — never a panic, never an `Ok`.
    #[test]
    fn pack_reader_rejects_structural_corruption(mode in any::<u64>(), raw in any::<u64>()) {
        let mut bytes = base_pack();
        corrupt_pack_structurally(&mut bytes, mode, raw);
        let err = unpack_instance(&bytes).expect_err("corrupted pack must not load");
        prop_assert!(!err.to_string().is_empty());
    }

    /// Arbitrary bit flips anywhere in the image: the reader either rejects
    /// with a typed error or (for bytes the format ignores, e.g. reserved
    /// table fields) loads a valid instance — it never panics.
    #[test]
    fn pack_reader_never_panics_on_bit_flips(seed in any::<u64>(), flips in 1usize..8) {
        let mut bytes = base_pack();
        let mut s = seed;
        for _ in 0..flips {
            let i = (splitmix(&mut s) % bytes.len() as u64) as usize;
            bytes[i] ^= 1 << (splitmix(&mut s) % 8);
        }
        if let Ok(loaded) = unpack_instance(&bytes) {
            // Whatever survived must still be internally consistent enough
            // to answer basic shape queries.
            let _ = loaded.instance.num_photos();
            let _ = loaded.labels.num_shards();
        }
    }

    /// Payload tampering with the checksum *fixed up afterwards*, so the
    /// corruption reaches the decode layer's bounds and cross-section
    /// validation rather than dying at the checksum comparison. Typed error
    /// or valid load; no panic, no unbounded allocation.
    #[test]
    fn pack_reader_survives_checksummed_payload_tampering(
        sec in 0usize..PACK_SECTIONS, seed in any::<u64>(), flips in 1usize..6,
    ) {
        let mut bytes = base_pack();
        let (offset, len) = pack_section_bounds(&bytes, sec);
        prop_assume!(len > 0);
        let mut s = seed;
        for _ in 0..flips {
            let i = offset + (splitmix(&mut s) % len as u64) as usize;
            bytes[i] ^= 1 << (splitmix(&mut s) % 8);
        }
        pack_fix_checksum(&mut bytes, sec);
        let _ = unpack_instance(&bytes);
    }

    /// Raw byte soup, optionally behind a valid header+table prefix so the
    /// decode layers are reached often, not just the header checks.
    #[test]
    fn pack_reader_never_panics_on_byte_soup(
        seed in any::<u64>(), len in 0usize..600, keep_prefix in any::<bool>(),
    ) {
        let mut s = seed;
        let mut bytes = if keep_prefix {
            let mut b = base_pack();
            b.truncate(PACK_HEADER + PACK_SECTIONS * PACK_ENTRY);
            b
        } else {
            Vec::new()
        };
        for _ in 0..len {
            bytes.push((splitmix(&mut s) % 256) as u8);
        }
        let _ = unpack_instance(&bytes);
    }
}

/// A hostile META section claiming ~4 billion photos must die at the
/// element-count-vs-remaining-bytes cap check — a typed error, not an OOM
/// attempt. (The checksum is fixed up so the claim reaches the decoder.)
#[test]
fn pack_reader_caps_allocations_before_trusting_counts() {
    let mut bytes = base_pack();
    // META is the first section; its second u64 is `num_photos`.
    let (offset, _) = pack_section_bounds(&bytes, 0);
    bytes[offset + 8..offset + 16].copy_from_slice(&(u32::MAX as u64).to_le_bytes());
    pack_fix_checksum(&mut bytes, 0);
    let err = unpack_instance(&bytes).expect_err("hostile count must not load");
    assert!(!err.to_string().is_empty());
}

/// The empty image and the bare header are the smallest corrupt packs.
#[test]
fn pack_reader_rejects_trivial_images() {
    assert!(unpack_instance(&[]).is_err());
    let valid = base_pack();
    assert!(unpack_instance(&valid[..PACK_HEADER]).is_err());
    assert!(unpack_instance(&valid).is_ok());
}

/// Regression: a required set `S₀` costing more than the budget is a typed
/// `RequiredSetOverBudget`, not a panic (the seed repo asserted).
#[test]
fn required_set_over_budget_is_a_typed_error() {
    let u = base_universe(8);
    let floor: u64 = u.required.iter().map(|&r| u.costs[r as usize]).sum();
    let result = Phocus::default().solve(&u, floor - 1);
    match result {
        Err(PhocusError::Model(ModelError::RequiredSetOverBudget {
            required_cost,
            budget,
        })) => {
            assert_eq!(required_cost, floor);
            assert_eq!(budget, floor - 1);
        }
        other => panic!("expected RequiredSetOverBudget, got {other:?}"),
    }
}

/// Regression: `expand_with_variants` used to `assert!` on user-supplied
/// ladder values mid-expansion. Validation now lives in the
/// [`ActionLadder`] constructor as a typed error, so hostile ladders cannot
/// reach library code at all.
#[test]
fn hostile_ladder_values_are_typed_errors() {
    for (size_fraction, quality) in [
        (0.0, 0.5),
        (1.0, 0.5),
        (-1.0, 0.5),
        (f64::NAN, 0.5),
        (f64::INFINITY, 0.5),
        (f64::NEG_INFINITY, 0.5),
        (f64::MIN_POSITIVE, 1.0),
        (0.5, 0.0),
        (0.5, f64::NAN),
        (0.5, 1.0 + f64::EPSILON),
    ] {
        let err = ActionLadder::new(vec![CompressionLevel {
            size_fraction,
            quality,
        }])
        .expect_err("hostile level must not validate");
        let msg = err.to_string();
        assert!(
            matches!(err, PhocusError::InvalidLadder { level: 0, .. }),
            "({size_fraction}, {quality}) → {msg}"
        );
        assert!(msg.contains("ladder level"), "opaque diagnostic: {msg}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary f64 bit patterns never panic the ladder constructor: every
    /// input either validates (both values finite and strictly inside
    /// (0,1)) or yields a typed [`PhocusError::InvalidLadder`].
    #[test]
    fn ladder_constructor_never_panics(seed in any::<u64>(), n in 0usize..6) {
        let mut s = seed;
        let levels: Vec<CompressionLevel> = (0..n)
            .map(|_| {
                // Half raw bit soup (NaNs, infinities, denormals), half
                // small finite values straddling the (0,1) boundaries.
                let draw = |s: &mut u64| {
                    let bits = splitmix(s);
                    if bits & 1 == 0 {
                        f64::from_bits(bits)
                    } else {
                        (bits >> 32) as f64 / (u32::MAX as f64 / 2.0) - 0.5
                    }
                };
                CompressionLevel {
                    size_fraction: draw(&mut s),
                    quality: draw(&mut s),
                }
            })
            .collect();
        let in_range = |v: f64| v > 0.0 && v < 1.0;
        let all_valid = levels.iter().all(|l| in_range(l.size_fraction) && in_range(l.quality));
        match ActionLadder::new(levels) {
            Ok(ladder) => prop_assert!(all_valid || ladder.is_empty()),
            Err(e) => {
                prop_assert!(!all_valid);
                prop_assert!(matches!(e, PhocusError::InvalidLadder { .. }));
            }
        }
    }

    /// Byte-soup `--ladder` specs never panic the parser.
    #[test]
    fn ladder_spec_parsing_never_panics(seed in any::<u64>(), len in 0usize..40) {
        const CHARSET: &[u8] = b"0123456789aeEnN:.,+-_ paper";
        let mut s = seed;
        let spec: String = (0..len)
            .map(|_| CHARSET[(splitmix(&mut s) as usize) % CHARSET.len()] as char)
            .collect();
        match ActionLadder::parse(&spec) {
            Ok(_) => {}
            Err(e) => prop_assert!(matches!(e, PhocusError::InvalidLadder { .. })),
        }
    }
}

/// The typed error chain renders a readable diagnostic end to end.
#[test]
fn pipeline_errors_are_displayable_and_chained() {
    let err = from_text("subset\tq\tNaN\t0:1").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("weight") || msg.contains("NaN"), "opaque: {msg}");

    let phocus_err = PhocusError::from(err);
    assert!(std::error::Error::source(&phocus_err).is_some());
}
