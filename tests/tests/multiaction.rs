//! Multi-action (keep / recompress@ℓ / delete) determinism contracts.
//!
//! The variant expansion promotes PAR's ground set to photo × action; these
//! tests pin the properties that make running it on the component-sharded
//! solver sound:
//!
//! 1. variants share their parent's embedding, so every variant lands in
//!    its parent's connected component — the decomposition never splits a
//!    variant family;
//! 2. on expanded instances the sharded solver's transcript is bit-identical
//!    to the global one, under the serial build and at 1/2/8 worker threads;
//! 3. the degenerate (empty) ladder reproduces remove-only archival exactly,
//!    bit for bit.

use par_algo::{lazy_greedy, main_algorithm, main_algorithm_sharded, GreedyRule, ShardedSolver};
use par_core::{shard_labels, Instance};
use par_exec::Parallelism;
use par_datasets::{generate_openimages, OpenImagesConfig, Universe};
use phocus::{
    expand_with_variants, represent, represent_with_variants, solve_multi_action, ActionLadder,
    RepresentationConfig, Sparsification, VariantMap,
};

fn universe(photos: usize, seed: u64) -> Universe {
    generate_openimages(&OpenImagesConfig {
        name: format!("ma{seed}"),
        photos,
        target_subsets: photos / 5,
        seed,
        ..Default::default()
    })
}

/// A τ-sparsified expanded instance: sparsification keeps the component
/// structure non-trivial, which is what makes the sharded-vs-global
/// comparison meaningful.
fn expanded_instance(u: &Universe, ladder: &ActionLadder, budget_div: u64) -> (Instance, VariantMap) {
    let (x, map) = expand_with_variants(u, ladder);
    let cfg = RepresentationConfig {
        sparsification: Sparsification::Threshold { tau: 0.9 },
        ..Default::default()
    };
    let inst = represent_with_variants(&x, &map, ladder, u.total_cost() / budget_div, &cfg)
        .expect("representation");
    (inst, map)
}

#[test]
fn variants_land_in_their_parents_shard() {
    let u = universe(150, 11);
    let (inst, map) = expanded_instance(&u, &ActionLadder::standard(), 8);
    let labels = shard_labels(&inst);
    for i in 0..inst.num_photos() {
        let parent = map.parent[i] as usize;
        assert_eq!(
            labels.shard_of(par_core::PhotoId(i as u32)),
            labels.shard_of(par_core::PhotoId(parent as u32)),
            "variant {i} split from parent {parent}"
        );
    }
    assert!(
        labels.num_shards() > 1,
        "trivial decomposition — the co-location check proved nothing"
    );
}

#[test]
fn expanded_transcripts_are_bit_identical_sharded_vs_global() {
    for (seed, div) in [(11u64, 8u64), (23, 14)] {
        let u = universe(150, seed);
        let (inst, _) = expanded_instance(&u, &ActionLadder::standard(), div);
        for rule in [GreedyRule::CostBenefit, GreedyRule::UnitCost] {
            let global = lazy_greedy(&inst, rule);
            let sharded = ShardedSolver::new(&inst).solve(rule);
            assert_eq!(sharded.selected, global.selected, "selection diverged ({rule:?})");
            assert_eq!(
                sharded.score.to_bits(),
                global.score.to_bits(),
                "score bits diverged ({rule:?})"
            );
        }
        let global = main_algorithm(&inst);
        let sharded = main_algorithm_sharded(&inst);
        assert_eq!(sharded.best.selected, global.best.selected);
        assert_eq!(sharded.best.score.to_bits(), global.best.score.to_bits());
        assert_eq!(sharded.winner, global.winner, "winning rule diverged");
    }
}

#[test]
fn expanded_solves_are_identical_at_1_2_8_threads() {
    let u = universe(150, 11);
    let ladder = ActionLadder::standard();
    let budget = u.total_cost() / 8;
    let cfg = RepresentationConfig {
        sparsification: Sparsification::Threshold { tau: 0.9 },
        ..Default::default()
    };
    let mut transcripts = Vec::new();
    for threads in [1usize, 2, 8] {
        let prev = Parallelism::with_threads(threads).install_global();
        let solve = solve_multi_action(&u, budget, &ladder, &cfg, true).expect("solve");
        prev.install_global();
        transcripts.push((threads, solve.selected, solve.score.to_bits()));
    }
    let (_, sel0, bits0) = &transcripts[0];
    for (threads, sel, bits) in &transcripts[1..] {
        assert_eq!(sel, sel0, "selection diverged at {threads} threads");
        assert_eq!(bits, bits0, "score bits diverged at {threads} threads");
    }
}

#[test]
fn empty_ladder_reproduces_remove_only_exactly() {
    let u = universe(150, 11);
    let budget = u.total_cost() / 8;
    let cfg = RepresentationConfig {
        sparsification: Sparsification::Threshold { tau: 0.9 },
        ..Default::default()
    };
    let base = represent(&u, budget, &cfg).expect("representation");
    let remove_only = main_algorithm_sharded(&base);
    for sharding in [true, false] {
        let ma = solve_multi_action(&u, budget, &ActionLadder::delete_only(), &cfg, sharding)
            .expect("solve");
        assert_eq!(ma.selected, remove_only.best.selected, "sharding={sharding}");
        assert_eq!(ma.score.to_bits(), remove_only.best.score.to_bits());
        assert_eq!(ma.kept_compressed, 0);
    }
}
