//! Error types for model construction and validation.

use crate::{PhotoId, SubsetId};
use std::fmt;

/// Convenience result alias used throughout `par-core`.
pub type Result<T> = std::result::Result<T, ModelError>;

/// Errors raised while building or validating a PAR instance or solution.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A photo id referenced a photo that does not exist in the instance.
    UnknownPhoto(PhotoId),
    /// A subset id referenced a subset that does not exist in the instance.
    UnknownSubset(SubsetId),
    /// A subset was declared with no member photos.
    EmptySubset(SubsetId),
    /// A subset's member list contains the same photo twice.
    DuplicateMember {
        /// The offending subset.
        subset: SubsetId,
        /// The duplicated photo.
        photo: PhotoId,
    },
    /// A subset's relevance vector length does not match its member count.
    RelevanceLengthMismatch {
        /// The offending subset.
        subset: SubsetId,
        /// Number of member photos.
        members: usize,
        /// Number of relevance entries supplied.
        relevances: usize,
    },
    /// Relevance scores must be positive and finite before normalization.
    InvalidRelevance {
        /// The offending subset.
        subset: SubsetId,
        /// The offending value.
        value: f64,
    },
    /// Subset weights must be positive and finite.
    InvalidWeight {
        /// The offending subset.
        subset: SubsetId,
        /// The offending value.
        value: f64,
    },
    /// A similarity score fell outside `[0, 1]`.
    InvalidSimilarity {
        /// The offending subset (context).
        subset: SubsetId,
        /// The offending value.
        value: f64,
    },
    /// A similarity pair referenced a local member index outside the subset.
    PairIndexOutOfRange {
        /// The offending subset (context).
        subset: SubsetId,
        /// The out-of-range local member index.
        index: u32,
        /// Number of members in the subset.
        members: usize,
    },
    /// A photo was declared with zero cost, which breaks cost-benefit rules.
    ZeroCostPhoto(PhotoId),
    /// The mandatory-retention set `S₀` alone exceeds the budget.
    RequiredSetOverBudget {
        /// Total cost of `S₀` in bytes.
        required_cost: u64,
        /// The storage budget in bytes.
        budget: u64,
    },
    /// A solution omitted a photo that policy requires to be retained.
    MissingRequiredPhoto(PhotoId),
    /// A solution's total cost exceeds the budget.
    OverBudget {
        /// Total cost of the solution in bytes.
        cost: u64,
        /// The storage budget in bytes.
        budget: u64,
    },
    /// The instance has no photos at all.
    NoPhotos,
    /// A cost accumulation `C(S)` overflowed `u64`. Raised at instance
    /// construction (total archive cost) and solution validation, so the
    /// solver's internal running sums — always sub-sums of the validated
    /// total — can stay unchecked.
    CostOverflow,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownPhoto(p) => write!(f, "unknown photo {p}"),
            ModelError::UnknownSubset(q) => write!(f, "unknown subset {q}"),
            ModelError::EmptySubset(q) => write!(f, "subset {q} has no members"),
            ModelError::DuplicateMember { subset, photo } => {
                write!(f, "subset {subset} lists photo {photo} more than once")
            }
            ModelError::RelevanceLengthMismatch {
                subset,
                members,
                relevances,
            } => write!(
                f,
                "subset {subset} has {members} members but {relevances} relevance scores"
            ),
            ModelError::InvalidRelevance { subset, value } => {
                write!(f, "subset {subset} has invalid relevance score {value}")
            }
            ModelError::InvalidWeight { subset, value } => {
                write!(f, "subset {subset} has invalid weight {value}")
            }
            ModelError::InvalidSimilarity { subset, value } => {
                write!(
                    f,
                    "similarity {value} in context {subset} is outside [0, 1]"
                )
            }
            ModelError::PairIndexOutOfRange {
                subset,
                index,
                members,
            } => write!(
                f,
                "similarity pair in context {subset} references local index {index}, \
                 but the subset has only {members} members"
            ),
            ModelError::ZeroCostPhoto(p) => write!(f, "photo {p} has zero cost"),
            ModelError::RequiredSetOverBudget {
                required_cost,
                budget,
            } => write!(
                f,
                "required set costs {required_cost} bytes, exceeding budget {budget}"
            ),
            ModelError::MissingRequiredPhoto(p) => {
                write!(f, "solution omits required photo {p}")
            }
            ModelError::OverBudget { cost, budget } => {
                write!(f, "solution costs {cost} bytes, exceeding budget {budget}")
            }
            ModelError::NoPhotos => write!(f, "instance contains no photos"),
            ModelError::CostOverflow => {
                write!(f, "total photo cost overflows a 64-bit byte count")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ModelError::OverBudget {
            cost: 10,
            budget: 5,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("5"));

        let e = ModelError::DuplicateMember {
            subset: SubsetId(3),
            photo: PhotoId(9),
        };
        assert!(e.to_string().contains("q3"));
        assert!(e.to_string().contains("p9"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&ModelError::NoPhotos);
    }
}
