//! The experiment suite: every algorithm of Section 5.2 run on a common
//! universe and budget, all *evaluated under the true objective* (the dense
//! contextual instance), regardless of which simplified view each baseline
//! used for selection.

// phocus-lint: allow-file(wall-clock) — the suite reports wall time for every algorithm it runs

use crate::error::Result;
use crate::representation::{non_contextual_view, represent, RepresentationConfig, Sparsification};
use par_algo::{baselines, lazy_greedy, main_algorithm_with, GreedyRule};
use par_core::{Instance, PhotoId, Solution};
use par_datasets::Universe;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// The algorithms the suite can run (Section 5.2's comparison set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// PHOcus: contextual + LSH τ-sparsification + Algorithm 1.
    Phocus,
    /// PHOcus-NS: contextual, dense (no sparsification) + Algorithm 1.
    PhocusNs,
    /// Greedy ignoring similarity (weighted coverage view).
    GreedyNr,
    /// Greedy with non-contextual (global) similarity.
    GreedyNcs,
    /// Random additive baseline.
    RandA,
    /// Random deletive baseline.
    RandD,
}

impl Algo {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Phocus => "PHOcus",
            Algo::PhocusNs => "PHOcus-NS",
            Algo::GreedyNr => "Greedy-NR",
            Algo::GreedyNcs => "Greedy-NCS",
            Algo::RandA => "RAND-A",
            Algo::RandD => "RAND-D",
        }
    }

    /// The default comparison set of Figures 5a–5c (RAND-D omitted, as in
    /// the paper, because it tracks RAND-A).
    pub fn default_set() -> Vec<Algo> {
        vec![Algo::RandA, Algo::GreedyNr, Algo::GreedyNcs, Algo::Phocus]
    }
}

/// Configuration of a suite run.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Algorithms to run.
    pub algos: Vec<Algo>,
    /// Sparsification threshold τ for the PHOcus entry.
    pub tau: f64,
    /// LSH target recall for the PHOcus entry.
    pub lsh_recall: f64,
    /// Representation choices shared by all entries (contextualization etc.;
    /// the sparsification field is overridden per entry).
    pub representation: RepresentationConfig,
    /// Seed for the random baselines.
    pub rand_seed: u64,
    /// Number of RAND trials averaged into the reported quality.
    pub rand_trials: usize,
    /// Solve the PHOcus / PHOcus-NS entries through the component-sharded
    /// CELF driver (default on; transcript-identical to the global solver).
    pub sharding: bool,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            algos: Algo::default_set(),
            tau: 0.6,
            lsh_recall: 0.95,
            representation: RepresentationConfig::default(),
            rand_seed: 0xBA5E,
            rand_trials: 5,
            sharding: true,
        }
    }
}

/// One algorithm's result within a suite run.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// The algorithm.
    pub algo: Algo,
    /// True-objective quality `G(S)` of the selection.
    pub quality: f64,
    /// Selection cost in bytes.
    pub cost: u64,
    /// Number of retained photos.
    pub retained: usize,
    /// Time spent building this entry's selection view (zero when it reuses
    /// the shared evaluation instance).
    pub represent_time: Duration,
    /// Time spent selecting.
    pub solve_time: Duration,
}

/// The outcome of a suite run on one (universe, budget) point.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// The budget used (bytes).
    pub budget: u64,
    /// `Σ_q W(q)` — the maximum attainable quality.
    pub max_score: f64,
    /// Per-algorithm results, in `algos` order.
    pub entries: Vec<SuiteEntry>,
    /// Time to build the shared dense evaluation instance.
    pub eval_represent_time: Duration,
}

/// Evaluates a selection under the true objective.
fn entry(
    algo: Algo,
    eval: &Instance,
    ids: Vec<PhotoId>,
    represent_time: Duration,
    solve_time: Duration,
) -> SuiteEntry {
    let sol = Solution::new_unchecked(eval, ids);
    SuiteEntry {
        algo,
        quality: sol.score(),
        cost: sol.cost(),
        retained: sol.len(),
        represent_time,
        solve_time,
    }
}

/// Runs the configured algorithms on `universe` under `budget`.
pub fn run_suite(universe: &Universe, budget: u64, cfg: &SuiteConfig) -> Result<SuiteResult> {
    // Shared true-objective instance: dense contextual.
    let mut eval_repr = cfg.representation.clone();
    eval_repr.sparsification = Sparsification::None;
    let t_eval = Instant::now();
    let eval = represent(universe, budget, &eval_repr)?;
    let eval_represent_time = t_eval.elapsed();

    let mut entries = Vec::with_capacity(cfg.algos.len());
    for &algo in &cfg.algos {
        let e = match algo {
            Algo::PhocusNs => {
                let t = Instant::now();
                let out = main_algorithm_with(&eval, cfg.sharding);
                entry(
                    algo,
                    &eval,
                    out.best.selected,
                    eval_represent_time,
                    t.elapsed(),
                )
            }
            Algo::Phocus => {
                let mut repr = cfg.representation.clone();
                repr.sparsification = Sparsification::Lsh {
                    tau: cfg.tau,
                    target_recall: cfg.lsh_recall,
                    seed: cfg.rand_seed ^ 0x15AAC,
                };
                let t_r = Instant::now();
                let inst = represent(universe, budget, &repr)?;
                let represent_time = t_r.elapsed();
                let t_s = Instant::now();
                let out = main_algorithm_with(&inst, cfg.sharding);
                entry(
                    algo,
                    &eval,
                    out.best.selected,
                    represent_time,
                    t_s.elapsed(),
                )
            }
            Algo::GreedyNr => {
                let t_r = Instant::now();
                let view = eval.with_unit_sims();
                let represent_time = t_r.elapsed();
                let t_s = Instant::now();
                let ids = lazy_greedy(&view, GreedyRule::UnitCost).selected;
                entry(algo, &eval, ids, represent_time, t_s.elapsed())
            }
            Algo::GreedyNcs => {
                let t_r = Instant::now();
                let view = non_contextual_view(&eval, universe)?;
                let represent_time = t_r.elapsed();
                let t_s = Instant::now();
                let ids = lazy_greedy(&view, GreedyRule::UnitCost).selected;
                entry(algo, &eval, ids, represent_time, t_s.elapsed())
            }
            Algo::RandA | Algo::RandD => {
                let mut rng = StdRng::seed_from_u64(cfg.rand_seed);
                let trials = cfg.rand_trials.max(1);
                let t = Instant::now();
                let mut total_quality = 0.0;
                let mut total_cost = 0u64;
                let mut total_retained = 0usize;
                let mut last = Vec::new();
                for _ in 0..trials {
                    let ids = if algo == Algo::RandA {
                        baselines::rand_a(&eval, &mut rng)
                    } else {
                        baselines::rand_d(&eval, &mut rng)
                    };
                    let sol = Solution::new_unchecked(&eval, ids.clone());
                    total_quality += sol.score();
                    total_cost += sol.cost();
                    total_retained += sol.len();
                    last = ids;
                }
                let _ = last;
                SuiteEntry {
                    algo,
                    quality: total_quality / trials as f64,
                    cost: total_cost / trials as u64,
                    retained: total_retained / trials,
                    represent_time: Duration::ZERO,
                    solve_time: t.elapsed() / trials as u32,
                }
            }
        };
        entries.push(e);
    }

    Ok(SuiteResult {
        budget,
        max_score: eval.max_score(),
        entries,
        eval_represent_time,
    })
}

impl SuiteResult {
    /// The entry for an algorithm, if it ran.
    pub fn get(&self, algo: Algo) -> Option<&SuiteEntry> {
        self.entries.iter().find(|e| e.algo == algo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use par_datasets::{generate_openimages, OpenImagesConfig};

    fn universe() -> Universe {
        generate_openimages(&OpenImagesConfig {
            name: "suite".into(),
            photos: 200,
            target_subsets: 40,
            seed: 31,
            ..Default::default()
        })
    }

    #[test]
    fn paper_ranking_holds_at_tight_budget() {
        let u = universe();
        let budget = u.total_cost() / 8;
        let cfg = SuiteConfig::default();
        let res = run_suite(&u, budget, &cfg).unwrap();
        let q = |a: Algo| res.get(a).unwrap().quality;
        // Figure 5a's ranking: PHOcus ≥ G-NCS, G-NR ≥ RAND; PHOcus strictly
        // beats RAND.
        assert!(
            q(Algo::Phocus) >= q(Algo::GreedyNcs) * 0.98,
            "PHOcus vs NCS"
        );
        assert!(q(Algo::GreedyNcs) + 1e-9 >= q(Algo::RandA), "NCS vs RAND");
        assert!(q(Algo::GreedyNr) + 1e-9 >= q(Algo::RandA), "NR vs RAND");
        assert!(q(Algo::Phocus) > 1.3 * q(Algo::RandA), "PHOcus ≫ RAND");
    }

    #[test]
    fn full_budget_equalizes_everything() {
        let u = universe();
        let res = run_suite(&u, u.total_cost(), &SuiteConfig::default()).unwrap();
        for e in &res.entries {
            assert!(
                (e.quality - res.max_score).abs() < 1e-6,
                "{} scored {} < max {}",
                e.algo.name(),
                e.quality,
                res.max_score
            );
        }
    }

    #[test]
    fn phocus_ns_close_to_phocus() {
        let u = universe();
        let budget = u.total_cost() / 6;
        let cfg = SuiteConfig {
            algos: vec![Algo::Phocus, Algo::PhocusNs],
            ..Default::default()
        };
        let res = run_suite(&u, budget, &cfg).unwrap();
        let ph = res.get(Algo::Phocus).unwrap().quality;
        let ns = res.get(Algo::PhocusNs).unwrap().quality;
        // Figure 5e: sparsification costs at most ~5%.
        assert!(ph >= 0.9 * ns, "PHOcus {ph} vs NS {ns}");
    }

    #[test]
    fn rand_d_tracks_rand_a() {
        let u = universe();
        let budget = u.total_cost() / 4;
        let cfg = SuiteConfig {
            algos: vec![Algo::RandA, Algo::RandD],
            rand_trials: 8,
            ..Default::default()
        };
        let res = run_suite(&u, budget, &cfg).unwrap();
        let a = res.get(Algo::RandA).unwrap().quality;
        let d = res.get(Algo::RandD).unwrap().quality;
        // The paper found them "almost identical"; allow 25% band.
        assert!((a - d).abs() <= 0.25 * a.max(d), "RAND-A {a} vs RAND-D {d}");
    }
}
