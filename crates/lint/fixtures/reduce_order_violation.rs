//! Fixture: order-sensitive float accumulation reached through a par-exec
//! fan-out — directly in the closure and transitively through a callee.

pub fn direct(xs: &[f64]) -> f64 {
    let partials = par_map_dynamic(xs.len(), || 0.0f64, |scratch, i| {
        *scratch += xs[i];
        *scratch
    });
    let mut total = 0.0;
    for p in partials {
        total += p;
    }
    total
}

pub fn transitive(xs: &[f64]) -> Vec<f64> {
    par_map_dynamic(xs.len(), || 0.0f64, |scratch, i| {
        bump(scratch, xs[i]);
        *scratch
    })
}

fn bump(scratch: &mut f64, x: f64) {
    *scratch += x * 0.5;
}
