//! # phocus — the end-to-end photo-archival system
//!
//! PHOcus (Figure 4 of the paper) consists of two modules behind a user
//! interface:
//!
//! * the **Data Representation Module** ([`representation`]) prepares the PAR
//!   input: it normalizes relevance scores, derives contextualized
//!   similarities from embeddings (optionally mixing EXIF context distances
//!   and applying per-context distance normalization), and materializes the
//!   similarity stores — dense all-pairs for PHOcus-NS, or τ-sparsified via
//!   SimHash LSH for PHOcus;
//! * the **Solver** ([`solver`]) runs the two-rule CELF lazy greedy
//!   (Algorithm 1) on the represented instance and reports the retained set
//!   together with a-posteriori quality certificates (online bound,
//!   Theorem 4.8 sparsification bound).
//!
//! [`suite`] orchestrates PHOcus against every baseline of Section 5.2 under
//! a common true-objective evaluation — the engine behind the experiment
//! harness in `par-bench`. [`fleet`] scales the pipeline from one library to
//! many: a multi-tenant engine that schedules tenant solves largest-first
//! across the persistent worker pool and reuses solver arenas between
//! tenants (`phocus serve-batch`). [`session`] scales it through *time*: an
//! [`ArchiveSession`] keeps the instance and warm per-component solver state
//! resident across epochs, applying [`par_core::EpochDelta`]s and replaying
//! clean-component stream transcripts (`phocus epochs`). The `phocus` binary
//! exposes all of it on the command line.

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod catalog;
pub mod compression;
pub mod error;
pub mod fleet;
pub mod planner;
pub mod report;
pub mod representation;
pub mod session;
pub mod solver;
pub mod suite;

pub use compression::{
    compare_remove_vs_compress, compare_remove_vs_compress_with, epsilon_free_score,
    expand_with_variants, multi_action_frontier, prune_and_refill, represent_with_variants,
    solve_multi_action, ActionLadder, CompressionComparison, CompressionLevel, FrontierPoint,
    MultiActionSolve, VariantMap, DEFAULT_LADDER,
};
pub use catalog::{Catalog, CatalogBuilder, CatalogEntry};
pub use error::{PhocusError, Result};
pub use fleet::{
    budget_by_fraction, FleetEngine, FleetEngineConfig, FleetTenant, PackedTenant, TenantOutcome,
    TenantReport,
};
pub use par_exec::Parallelism;
pub use planner::{minimal_budget, minimal_budget_with, BudgetPlan};
pub use report::render_report;
pub use representation::{non_contextual_view, represent, RepresentationConfig, Sparsification};
pub use session::{ArchiveSession, EpochSolve};
pub use solver::{Phocus, PhocusConfig, PhocusReport};
pub use suite::{run_suite, SuiteConfig, SuiteEntry, SuiteResult};
