//! Fixture: a pragma-suppressed hash iteration plus the collect-then-sort
//! idiom, which is auto-exempt without any pragma.

use std::collections::{HashMap, HashSet};

pub fn sum_unordered(weights: &HashMap<u32, f64>) -> f64 {
    // phocus-lint: allow(hash-iter) — fixture: addition reordering is accepted here
    weights.values().sum()
}

pub fn sorted_ids(ids: &HashSet<u32>) -> Vec<u32> {
    let mut out: Vec<u32> = ids.iter().copied().collect();
    out.sort_unstable();
    out
}
