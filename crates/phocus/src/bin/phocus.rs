//! The PHOcus command-line interface.
//!
//! ```text
//! phocus demo                          # the paper's Figure 1 worked example
//! phocus table2 [--full]               # Table 2 dataset statistics
//! phocus solve --dataset p1k --budget-mb 10 [--tau 0.6] [--ns] [--seed 42]
//! phocus suite --dataset ec-fashion --budget-mb 100 [--seed 42]
//! ```

use par_core::fixtures::figure1_instance;
use par_datasets::{
    generate_ecommerce, generate_openimages, EcConfig, EcDomain, OpenImagesConfig, PublicScale,
    Universe,
};
use phocus::{
    render_report, representation::RepresentationConfig, representation::Sparsification, run_suite,
    Parallelism, Phocus, PhocusConfig, SuiteConfig,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "demo" => cmd_demo(),
        "table2" => cmd_table2(rest),
        "solve" => cmd_solve(rest),
        "suite" => cmd_suite(rest),
        "compress" => cmd_compress(rest),
        "export" => cmd_export(rest),
        "plan" => cmd_plan(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
PHOcus — efficiently archiving photos under storage constraints

USAGE:
  phocus demo
  phocus table2 [--full] [--seed N]
  phocus solve --dataset <NAME> --budget-mb <MB> [--tau T] [--ns] [--seed N] [--threads N]
               [--no-sharding] [--out FILE]
  phocus suite --dataset <NAME> --budget-mb <MB> [--tau T] [--seed N]
  phocus compress --dataset <NAME> --budget-mb <MB> [--seed N]
  phocus export --dataset <NAME> --out <FILE> [--seed N]
  phocus plan --dataset <NAME> --target <FRACTION> [--seed N]

DATASETS: p1k p5k p10k p50k p100k ec-fashion ec-electronics ec-home file:<path>
  (EC datasets use the scaled-down generator; pass --paper-scale for full size)";

fn flag(rest: &[String], name: &str) -> bool {
    rest.iter().any(|a| a == name)
}

fn opt(rest: &[String], name: &str) -> Option<String> {
    rest.iter()
        .position(|a| a == name)
        .and_then(|i| rest.get(i + 1).cloned())
}

fn parse<T: std::str::FromStr>(rest: &[String], name: &str, default: T) -> Result<T, String> {
    match opt(rest, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for {name}: {v}")),
    }
}

fn load_dataset(name: &str, seed: u64, paper_scale: bool) -> Result<Universe, String> {
    if let Some(path) = name.strip_prefix("file:") {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        return par_datasets::from_text(&text).map_err(|e| e.to_string());
    }
    let scale = |s: PublicScale| generate_openimages(&s.config(seed));
    let ec = |d: EcDomain| {
        generate_ecommerce(&if paper_scale {
            EcConfig::paper(d, seed)
        } else {
            EcConfig::small(d, seed)
        })
    };
    Ok(match name {
        "p1k" => scale(PublicScale::P1K),
        "p5k" => scale(PublicScale::P5K),
        "p10k" => scale(PublicScale::P10K),
        "p50k" => scale(PublicScale::P50K),
        "p100k" => scale(PublicScale::P100K),
        "ec-fashion" => ec(EcDomain::Fashion),
        "ec-electronics" => ec(EcDomain::Electronics),
        "ec-home" => ec(EcDomain::HomeGarden),
        "tiny" => generate_openimages(&OpenImagesConfig {
            name: "tiny".into(),
            photos: 200,
            target_subsets: 40,
            seed,
            ..Default::default()
        }),
        other => return Err(format!("unknown dataset `{other}`")),
    })
}

fn cmd_demo() -> Result<(), String> {
    println!("Figure 1 worked example (7 photos, 4 pre-defined subsets)\n");
    let inst = figure1_instance(4 * par_core::fixtures::MB);
    let report = Phocus::default().solve_instance(&inst, std::time::Duration::ZERO);
    print!("{}", render_report(&inst, &report));
    println!("\nselection order:");
    for (step, p) in report.selected.iter().enumerate() {
        let photo = inst.photo(*p);
        println!(
            "  step {}: p{} ({:.1} MB)",
            step + 1,
            p.0 + 1,
            photo.cost as f64 / 1e6
        );
    }
    Ok(())
}

fn cmd_table2(rest: &[String]) -> Result<(), String> {
    let full = flag(rest, "--full");
    let seed = parse(rest, "--seed", 42u64)?;
    let rows = par_datasets::table2_rows(full, seed);
    println!(
        "{:<20} {:>12} {:>12} {:>14} {:>14}",
        "Dataset", "paper #P", "paper #Q", "measured #P", "measured #Q"
    );
    for r in rows {
        println!(
            "{:<20} {:>12} {:>12} {:>14} {:>14}",
            r.name, r.paper_photos, r.paper_subsets, r.measured_photos, r.measured_subsets
        );
    }
    if !full {
        println!("\n(scaled-down generation; pass --full for paper-sized datasets)");
    }
    Ok(())
}

fn cmd_solve(rest: &[String]) -> Result<(), String> {
    let dataset = opt(rest, "--dataset").ok_or("missing --dataset")?;
    let budget_mb: f64 = parse(rest, "--budget-mb", 10.0)?;
    let tau: f64 = parse(rest, "--tau", 0.6)?;
    let seed: u64 = parse(rest, "--seed", 42)?;
    let universe = load_dataset(&dataset, seed, flag(rest, "--paper-scale"))?;
    let budget = (budget_mb * 1e6) as u64;

    let representation = if flag(rest, "--ns") {
        RepresentationConfig::phocus_ns()
    } else {
        RepresentationConfig {
            sparsification: Sparsification::Lsh {
                tau,
                target_recall: 0.95,
                seed,
            },
            ..Default::default()
        }
    };
    let solver = Phocus::new(PhocusConfig {
        representation: representation.clone(),
        certify_sparsification: !flag(rest, "--ns"),
        parallelism: Parallelism::with_threads(parse(rest, "--threads", 0usize)?),
        sharding: !flag(rest, "--no-sharding"),
    });
    println!(
        "dataset {} — {} photos, {} subsets, archive {:.1} MB",
        universe.name,
        universe.num_photos(),
        universe.num_subsets(),
        universe.total_cost() as f64 / 1e6
    );
    let report = solver.solve(&universe, budget).map_err(|e| e.to_string())?;
    let inst = phocus::represent(&universe, budget, &representation).map_err(|e| e.to_string())?;
    print!("{}", render_report(&inst, &report));
    if let Some(out) = opt(rest, "--out") {
        // One retained photo per line: id, byte cost, name.
        let mut text = String::new();
        for &p in &report.selected {
            let photo = inst.photo(p);
            text.push_str(&format!("{}\t{}\t{}\n", p.0, photo.cost, photo.name));
        }
        std::fs::write(&out, text).map_err(|e| e.to_string())?;
        println!("wrote retained set to {out}");
    }
    Ok(())
}

fn cmd_compress(rest: &[String]) -> Result<(), String> {
    let dataset = opt(rest, "--dataset").ok_or("missing --dataset")?;
    let budget_mb: f64 = parse(rest, "--budget-mb", 2.0)?;
    let seed: u64 = parse(rest, "--seed", 42)?;
    let universe = load_dataset(&dataset, seed, flag(rest, "--paper-scale"))?;
    let budget = (budget_mb * 1e6) as u64;
    println!(
        "dataset {} — {} photos ({:.1} MB), budget {:.1} MB",
        universe.name,
        universe.num_photos(),
        universe.total_cost() as f64 / 1e6,
        budget as f64 / 1e6
    );
    let cmp = phocus::compare_remove_vs_compress(
        &universe,
        budget,
        &phocus::DEFAULT_LADDER,
        &phocus::RepresentationConfig::default(),
    )
    .map_err(|e| e.to_string())?;
    println!("remove-only quality:        {:.2}", cmp.remove_only);
    println!(
        "compression-aware quality:  {:.2} ({:+.1}%)",
        cmp.with_compression,
        100.0 * (cmp.with_compression / cmp.remove_only - 1.0)
    );
    println!(
        "retained: {} full-quality photos + {} compressed renditions",
        cmp.kept_original, cmp.kept_compressed
    );
    Ok(())
}

fn cmd_export(rest: &[String]) -> Result<(), String> {
    let dataset = opt(rest, "--dataset").ok_or("missing --dataset")?;
    let out = opt(rest, "--out").ok_or("missing --out")?;
    let seed: u64 = parse(rest, "--seed", 42)?;
    let universe = load_dataset(&dataset, seed, flag(rest, "--paper-scale"))?;
    std::fs::write(&out, par_datasets::to_text(&universe)).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} photos, {} subsets)",
        out,
        universe.num_photos(),
        universe.num_subsets()
    );
    Ok(())
}

fn cmd_plan(rest: &[String]) -> Result<(), String> {
    let dataset = opt(rest, "--dataset").ok_or("missing --dataset")?;
    let target: f64 = parse(rest, "--target", 0.9)?;
    let seed: u64 = parse(rest, "--seed", 42)?;
    let universe = load_dataset(&dataset, seed, flag(rest, "--paper-scale"))?;
    let tolerance = (universe.total_cost() / 200).max(1);
    let plan = phocus::minimal_budget(
        &universe,
        target,
        &RepresentationConfig::default(),
        tolerance,
    )
    .map_err(|e| e.to_string())?;
    println!(
        "dataset {} — archive {:.1} MB",
        universe.name,
        universe.total_cost() as f64 / 1e6
    );
    println!(
        "to keep {:.0}% of quality you need ≈ {:.2} MB ({:.1}% of the archive); \
         achieved {:.1}% there ({} solver probes)",
        100.0 * target,
        plan.budget as f64 / 1e6,
        100.0 * plan.budget_fraction,
        100.0 * plan.achieved_fraction,
        plan.probes
    );
    Ok(())
}

fn cmd_suite(rest: &[String]) -> Result<(), String> {
    let dataset = opt(rest, "--dataset").ok_or("missing --dataset")?;
    let budget_mb: f64 = parse(rest, "--budget-mb", 10.0)?;
    let tau: f64 = parse(rest, "--tau", 0.6)?;
    let seed: u64 = parse(rest, "--seed", 42)?;
    let universe = load_dataset(&dataset, seed, flag(rest, "--paper-scale"))?;
    let budget = (budget_mb * 1e6) as u64;
    let cfg = SuiteConfig {
        tau,
        rand_seed: seed,
        ..Default::default()
    };
    let result = run_suite(&universe, budget, &cfg).map_err(|e| e.to_string())?;
    print!("{}", phocus::report::render_suite(&result));
    Ok(())
}
