//! Cross-crate guarantee checks: every theorem of the paper verified against
//! exact solutions on instances small enough to solve optimally.

use par_algo::{
    brute_force, main_algorithm, online_bound, sviridenko, BruteForceConfig, SviridenkoConfig,
};
use par_core::fixtures::{random_instance, RandomInstanceConfig};
use par_sparse::sparsification_bound;

const E: f64 = std::f64::consts::E;

fn small(seed: u64) -> par_core::Instance {
    random_instance(
        seed,
        &RandomInstanceConfig {
            photos: 12,
            subsets: 5,
            subset_size: (2, 6),
            cost_range: (50, 400),
            budget_fraction: 0.35,
            required_prob: 0.0,
        },
    )
}

#[test]
fn algorithm1_meets_its_guarantee() {
    // Theorem (Leskovec et al.): max(UC, CB) ≥ (1 − 1/e)/2 · OPT.
    let guarantee = (1.0 - 1.0 / E) / 2.0;
    for seed in 0..12 {
        let inst = small(seed);
        let greedy = main_algorithm(&inst).best.score;
        let opt = brute_force(&inst, &BruteForceConfig::default())
            .unwrap()
            .score;
        assert!(
            greedy + 1e-9 >= guarantee * opt,
            "seed {seed}: {greedy} < {guarantee}·{opt}"
        );
        // In practice the greedy does far better than the guarantee.
        assert!(greedy >= 0.8 * opt, "seed {seed}: only {greedy}/{opt}");
    }
}

#[test]
fn sviridenko_meets_the_optimal_guarantee() {
    // Theorem 4.6: partial enumeration achieves (1 − 1/e) · OPT.
    let guarantee = 1.0 - 1.0 / E;
    for seed in 0..8 {
        let inst = small(seed + 100);
        let sv = sviridenko(&inst, &SviridenkoConfig::default())
            .unwrap()
            .score;
        let opt = brute_force(&inst, &BruteForceConfig::default())
            .unwrap()
            .score;
        assert!(
            sv + 1e-9 >= guarantee * opt,
            "seed {seed}: {sv} < {guarantee}·{opt}"
        );
    }
}

#[test]
fn online_bound_never_undercuts_opt() {
    for seed in 0..12 {
        let inst = small(seed + 200);
        let greedy = main_algorithm(&inst).best;
        let bound = online_bound(&inst, &greedy.selected);
        let opt = brute_force(&inst, &BruteForceConfig::default())
            .unwrap()
            .score;
        assert!(
            bound.upper_bound + 1e-9 >= opt,
            "seed {seed}: UB {} < OPT {opt}",
            bound.upper_bound
        );
        // And the certified ratio is a valid lower bound on the true ratio.
        let true_ratio = greedy.score / opt.max(f64::MIN_POSITIVE);
        assert!(bound.ratio <= true_ratio + 1e-9);
    }
}

#[test]
fn theorem_4_8_sparsification_bound_holds() {
    for seed in 0..8 {
        let inst = small(seed + 300);
        for tau in [0.25, 0.5, 0.75] {
            let cert = sparsification_bound(&inst, tau);
            let opt = brute_force(&inst, &BruteForceConfig::default())
                .unwrap()
                .score;
            let opt_tau = brute_force(&inst.sparsify(tau), &BruteForceConfig::default())
                .unwrap()
                .score;
            assert!(
                opt_tau + 1e-9 >= cert.factor * opt,
                "seed {seed} τ={tau}: OPT_τ {opt_tau} < {} · OPT {opt}",
                cert.factor
            );
        }
    }
}

#[test]
fn sviridenko_never_loses_to_algorithm1() {
    // Partial enumeration explores a superset of the greedy's trajectory
    // seeds; on small instances it should match or beat Algorithm 1.
    for seed in 0..8 {
        let inst = small(seed + 400);
        let sv = sviridenko(&inst, &SviridenkoConfig::default())
            .unwrap()
            .score;
        let g = main_algorithm(&inst).best.score;
        assert!(sv + 1e-9 >= g, "seed {seed}: Sviridenko {sv} < greedy {g}");
    }
}

#[test]
fn required_photos_survive_every_solver() {
    let inst = random_instance(
        7,
        &RandomInstanceConfig {
            photos: 10,
            subsets: 4,
            required_prob: 0.3,
            budget_fraction: 0.6,
            ..Default::default()
        },
    );
    let solvers: Vec<Vec<par_core::PhotoId>> = vec![
        main_algorithm(&inst).best.selected,
        sviridenko(&inst, &SviridenkoConfig::default())
            .unwrap()
            .selected,
        brute_force(&inst, &BruteForceConfig::default())
            .unwrap()
            .selected,
    ];
    for sel in solvers {
        for &r in inst.required() {
            assert!(sel.contains(&r), "required {r} missing");
        }
    }
}
