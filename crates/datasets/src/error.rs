//! Typed errors for dataset parsing, validation, and generation.
//!
//! Part of the workspace-wide `PhocusError` hierarchy: `phocus::PhocusError`
//! wraps [`DatasetError`] via `From`, so dataset failures surface to the CLI
//! as diagnostics instead of panics.

use crate::io::ParseError;
use std::fmt;

/// Convenience result alias for dataset operations.
pub type Result<T> = std::result::Result<T, DatasetError>;

/// Errors raised while parsing, validating, or generating a dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetError {
    /// A line-level syntax error in the universe text format.
    Parse(ParseError),
    /// The parsed or constructed universe violates a model invariant
    /// (index out of range, empty subset, non-finite weight, …).
    InvalidUniverse(String),
    /// The total archive cost `Σ C(p)` overflows a 64-bit byte count.
    CostOverflow,
    /// A Zipf distribution's cumulative weights are not finite and strictly
    /// increasing (degenerate exponent, zero items, or numeric underflow).
    InvalidZipf {
        /// Index of the first offending CDF entry.
        index: usize,
        /// The offending cumulative value.
        value: f64,
    },
    /// A churn-trace operation references a photo name or query label that
    /// does not resolve against the live instance (unknown, ambiguous, or
    /// duplicated within one epoch). See [`crate::churn::resolve_epoch`].
    TraceResolve(String),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Parse(e) => write!(f, "parse error: {e}"),
            DatasetError::InvalidUniverse(msg) => write!(f, "invalid universe: {msg}"),
            DatasetError::CostOverflow => {
                write!(f, "total archive cost overflows a 64-bit byte count")
            }
            DatasetError::InvalidZipf { index, value } => write!(
                f,
                "Zipf CDF is not finite and strictly increasing at rank {index} (value {value})"
            ),
            DatasetError::TraceResolve(msg) => write!(f, "trace resolution: {msg}"),
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for DatasetError {
    fn from(e: ParseError) -> Self {
        DatasetError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let p = ParseError {
            line: 3,
            message: "bad cost".into(),
        };
        let e: DatasetError = p.into();
        assert!(e.to_string().contains("line 3"));
        assert!(e.to_string().contains("bad cost"));
        assert!(DatasetError::CostOverflow.to_string().contains("overflow"));
        let z = DatasetError::InvalidZipf {
            index: 4,
            value: f64::NAN,
        };
        assert!(z.to_string().contains("rank 4"));
    }

    #[test]
    fn error_is_std_error_with_source() {
        let e = DatasetError::Parse(ParseError {
            line: 1,
            message: "x".into(),
        });
        let dyn_err: &dyn std::error::Error = &e;
        assert!(dyn_err.source().is_some());
    }
}
