//! Fixture: float ordering through `total_cmp`, which is total by
//! construction and needs no pragma.

pub fn max_score(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().max_by(|a, b| a.total_cmp(b))
}
