//! The PHOcus command-line interface.
//!
//! ```text
//! phocus demo                          # the paper's Figure 1 worked example
//! phocus table2 [--full]               # Table 2 dataset statistics
//! phocus solve --dataset p1k --budget-mb 10 [--tau 0.6] [--ns] [--seed 42]
//! phocus suite --dataset ec-fashion --budget-mb 100 [--seed 42]
//! phocus serve-batch --list tenants.txt --budget-frac 0.25 [--out-dir sols/]
//! phocus epochs --dataset p1k --budget-mb 10 --epochs 8 --churn 0.01 [--check]
//! ```
//!
//! Every failure exits with a diagnostic on stderr and a documented nonzero
//! status — the binary never panics on bad input:
//!
//! * `2` — usage error (unknown command/dataset, malformed flag value);
//! * `3` — invalid input data (parse error, model violation, bad parameter);
//! * `4` — I/O failure (unreadable dataset file, unwritable output);
//! * `5` — partial failure (`serve-batch`: one or more tenants failed while
//!   the batch itself completed — each failed tenant gets a `fail` status
//!   line; healthy tenants still solve and their solutions are written).

use par_core::fixtures::figure1_instance;
use par_datasets::{
    generate_ecommerce, generate_openimages, EcConfig, EcDomain, OpenImagesConfig, PublicScale,
    Universe,
};
use phocus::{
    render_report, representation::RepresentationConfig, representation::Sparsification, run_suite,
    ActionLadder, ArchiveSession, Catalog, CatalogBuilder, EpochSolve, FleetEngine,
    FleetEngineConfig, FleetTenant, PackedTenant, Parallelism, Phocus, PhocusConfig, PhocusError,
    SuiteConfig,
};
use std::process::ExitCode;

/// A CLI failure: either a usage mistake or a typed pipeline error.
enum CliError {
    /// Bad invocation — unknown command/dataset or malformed flag value.
    Usage(String),
    /// A typed error from the PHOcus pipeline (parse, model, I/O, …).
    Pipeline(PhocusError),
    /// A batch run completed but some of its units failed (exit code 5):
    /// tenants for `serve-batch`, epochs for `epochs`.
    PartialFailure {
        /// Units that failed to load, resolve, or solve.
        failed: usize,
        /// Units in the run.
        total: usize,
        /// What a unit is ("tenants", "epochs") — for the diagnostic line.
        what: &'static str,
    },
}

impl From<PhocusError> for CliError {
    fn from(e: PhocusError) -> Self {
        CliError::Pipeline(e)
    }
}

impl CliError {
    fn usage(msg: impl Into<String>) -> Self {
        CliError::Usage(msg.into())
    }

    /// Documented exit codes: 2 usage, 3 invalid data, 4 I/O, 5 partial
    /// batch failure.
    fn exit_code(&self) -> ExitCode {
        match self {
            CliError::Usage(_) => ExitCode::from(2),
            CliError::Pipeline(PhocusError::Io { .. }) => ExitCode::from(4),
            CliError::Pipeline(_) => ExitCode::from(3),
            CliError::PartialFailure { .. } => ExitCode::from(5),
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Pipeline(e) => write!(f, "{e}"),
            CliError::PartialFailure {
                failed,
                total,
                what,
            } => {
                write!(f, "{failed} of {total} {what} failed")
            }
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "demo" => cmd_demo(),
        "table2" => cmd_table2(rest),
        "solve" => cmd_solve(rest),
        "suite" => cmd_suite(rest),
        "compress" => cmd_compress(rest),
        "export" => cmd_export(rest),
        "plan" => cmd_plan(rest),
        "serve-batch" => cmd_serve_batch(rest),
        "epochs" => cmd_epochs(rest),
        "pack" => cmd_pack(rest),
        "catalog" => cmd_catalog(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::usage(format!("unknown command `{other}`\n{USAGE}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            e.exit_code()
        }
    }
}

const USAGE: &str = "\
PHOcus — efficiently archiving photos under storage constraints

USAGE:
  phocus demo
  phocus table2 [--full] [--seed N]
  phocus solve --dataset <NAME> --budget-mb <MB> [--tau T] [--ns] [--seed N] [--threads N]
               [--no-sharding] [--out FILE]
  phocus suite --dataset <NAME> --budget-mb <MB> [--tau T] [--seed N]
  phocus compress --dataset <NAME> --budget-mb <MB> [--seed N] [--threads N]
               [--ladder SPEC|none|paper] [--no-sharding] [--frontier N]
               [--out FILE]
  phocus export --dataset <NAME> --out <FILE> [--seed N]
  phocus plan --dataset <NAME> --target <FRACTION> [--seed N]
  phocus serve-batch --list <FILE|-> [--budget-frac F | --budget-mb MB]
               [--tau T] [--ns] [--threads N] [--fresh-arenas] [--out-dir DIR]
  phocus serve-batch --catalog <DIR> [--threads N] [--fresh-arenas]
               [--out-dir DIR]
  phocus epochs --dataset <NAME> --budget-mb <MB> [--trace FILE]
               [--epochs N] [--churn F] [--tau T] [--ns] [--seed N]
               [--threads N] [--check] [--export-trace FILE]
  phocus pack --dataset <NAME> --budget-mb <MB> --out <FILE>
               [--tau T] [--ns] [--seed N]
  phocus pack --check <FILE>
  phocus catalog build --list <FILE|-> --out-dir <DIR>
               [--budget-frac F | --budget-mb MB] [--tau T] [--ns] [--seed N]
  phocus catalog ls <DIR>

DATASETS: p1k p5k p10k p50k p100k ec-fashion ec-electronics ec-home file:<path>
  (EC datasets use the scaled-down generator; pass --paper-scale for full size)

SERVE-BATCH: --list names a file with one tenant universe path per line
  (`-` reads the list from stdin; blank lines and `#` comments are skipped).
  Each tenant gets --budget-frac of its own archive (default 0.25) unless
  --budget-mb fixes an absolute budget. One status line per tenant:
  `ok <name> ...` or `fail <path>: <reason>`. A malformed tenant fails that
  tenant only; the rest of the batch still solves. --out-dir writes one
  retained-set TSV per solved tenant.

COMPRESS: multi-action archival — keep, recompress, or delete each photo.
  --ladder lists renditions as quality:size_fraction pairs (e.g.
  `0.85:0.35,0.55:0.10`); `none` is the degenerate delete-only ladder
  (reproduces `solve`'s remove-only model exactly), `paper` is the
  recompression paper's measured ladder; the default is a built-in
  two-rung ladder. Both solutions are scored on the ε-free objective,
  directly comparable. --frontier N sweeps N budgets up to --budget-mb and
  prints delete-only vs multi-action frontier curves. --out writes the
  retained actions as a TSV (id, parent, action, cost, name) in selection
  order; --no-sharding and --threads have `solve` semantics (solutions are
  bit-identical either way).

PACK / CATALOG: `pack` represents one dataset and writes it as a
  `phocus-pack` image — a checksummed binary section file that later loads
  with no text parsing, no representation, and no union-find
  (`pack --check` verifies an image and prints its shape). `catalog build`
  packs every tenant of a serve-batch list into --out-dir plus a
  memory-resident index; `serve-batch --catalog` then serves straight from
  the packs, skipping the whole cold-start pipeline. `catalog ls` prints
  the resident index.

EPOCHS: keeps one archive session resident and replays a churn trace —
  either a `# phocus-trace v1` file (--trace) or one generated on the fly
  from --epochs rounds at --churn total membership turnover per round
  (half removals, half arrivals). One status line per
  epoch: `ok epoch=K ...` or `fail epoch=K: <reason>`. A delta that does
  not resolve or apply fails that epoch only; the session keeps its warm
  state and later epochs still solve. --check re-solves every epoch from
  scratch and verifies the incremental solution is bit-identical.
  --export-trace writes the (generated) trace for later replay.

EXIT CODES: 0 success, 2 usage error, 3 invalid input data, 4 I/O failure,
  5 partial failure (serve-batch / epochs: some tenants or epochs failed,
  the run itself completed)";

fn flag(rest: &[String], name: &str) -> bool {
    rest.iter().any(|a| a == name)
}

fn opt(rest: &[String], name: &str) -> Option<String> {
    rest.iter()
        .position(|a| a == name)
        .and_then(|i| rest.get(i + 1).cloned())
}

fn parse<T: std::str::FromStr>(rest: &[String], name: &str, default: T) -> Result<T, CliError> {
    match opt(rest, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::usage(format!("invalid value for {name}: {v}"))),
    }
}

fn read_file(path: &str) -> Result<String, PhocusError> {
    std::fs::read_to_string(path).map_err(|e| PhocusError::Io {
        path: path.to_string(),
        message: e.to_string(),
    })
}

fn write_file(path: &str, text: &str) -> Result<(), PhocusError> {
    std::fs::write(path, text).map_err(|e| PhocusError::Io {
        path: path.to_string(),
        message: e.to_string(),
    })
}

fn read_bytes(path: &str) -> Result<Vec<u8>, PhocusError> {
    std::fs::read(path).map_err(|e| PhocusError::Io {
        path: path.to_string(),
        message: e.to_string(),
    })
}

fn write_bytes(path: &str, bytes: &[u8]) -> Result<(), PhocusError> {
    std::fs::write(path, bytes).map_err(|e| PhocusError::Io {
        path: path.to_string(),
        message: e.to_string(),
    })
}

/// The shared `--tau` / `--seed` / `--ns` representation flags, with the
/// same defaults everywhere (τ = 0.6, seed = 42, LSH recall target 0.95).
fn repr_from_flags(rest: &[String]) -> Result<RepresentationConfig, CliError> {
    let tau: f64 = parse(rest, "--tau", 0.6)?;
    let seed: u64 = parse(rest, "--seed", 42)?;
    Ok(if flag(rest, "--ns") {
        RepresentationConfig::phocus_ns()
    } else {
        RepresentationConfig {
            sparsification: Sparsification::Lsh {
                tau,
                target_recall: 0.95,
                seed,
            },
            ..Default::default()
        }
    })
}

/// Reads a tenant list: one universe path per line, `-` for stdin; blank
/// lines and `#` comments are skipped. An empty list is a usage error.
fn read_tenant_list(list: &str) -> Result<Vec<String>, CliError> {
    let text = if list == "-" {
        use std::io::Read;
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| PhocusError::Io {
                path: "<stdin>".into(),
                message: e.to_string(),
            })?;
        s
    } else {
        read_file(list)?
    };
    let paths: Vec<String> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(String::from)
        .collect();
    if paths.is_empty() {
        return Err(CliError::usage("tenant list is empty"));
    }
    Ok(paths)
}

fn load_dataset(name: &str, seed: u64, paper_scale: bool) -> Result<Universe, CliError> {
    if let Some(path) = name.strip_prefix("file:") {
        let text = read_file(path)?;
        return par_datasets::from_text(&text)
            .map_err(|e| CliError::Pipeline(PhocusError::Dataset(e)));
    }
    let scale = |s: PublicScale| generate_openimages(&s.config(seed));
    let ec = |d: EcDomain| {
        generate_ecommerce(&if paper_scale {
            EcConfig::paper(d, seed)
        } else {
            EcConfig::small(d, seed)
        })
    };
    Ok(match name {
        "p1k" => scale(PublicScale::P1K),
        "p5k" => scale(PublicScale::P5K),
        "p10k" => scale(PublicScale::P10K),
        "p50k" => scale(PublicScale::P50K),
        "p100k" => scale(PublicScale::P100K),
        "ec-fashion" => ec(EcDomain::Fashion),
        "ec-electronics" => ec(EcDomain::Electronics),
        "ec-home" => ec(EcDomain::HomeGarden),
        "tiny" => generate_openimages(&OpenImagesConfig {
            name: "tiny".into(),
            photos: 200,
            target_subsets: 40,
            seed,
            ..Default::default()
        }),
        other => return Err(CliError::usage(format!("unknown dataset `{other}`"))),
    })
}

fn cmd_demo() -> Result<(), CliError> {
    println!("Figure 1 worked example (7 photos, 4 pre-defined subsets)\n");
    let inst = figure1_instance(4 * par_core::fixtures::MB);
    let report = Phocus::default().solve_instance(&inst, std::time::Duration::ZERO);
    print!("{}", render_report(&inst, &report));
    println!("\nselection order:");
    for (step, p) in report.selected.iter().enumerate() {
        let photo = inst.photo(*p);
        println!(
            "  step {}: p{} ({:.1} MB)",
            step + 1,
            p.0 + 1,
            photo.cost as f64 / 1e6
        );
    }
    Ok(())
}

fn cmd_table2(rest: &[String]) -> Result<(), CliError> {
    let full = flag(rest, "--full");
    let seed = parse(rest, "--seed", 42u64)?;
    let rows = par_datasets::table2_rows(full, seed);
    println!(
        "{:<20} {:>12} {:>12} {:>14} {:>14}",
        "Dataset", "paper #P", "paper #Q", "measured #P", "measured #Q"
    );
    for r in rows {
        println!(
            "{:<20} {:>12} {:>12} {:>14} {:>14}",
            r.name, r.paper_photos, r.paper_subsets, r.measured_photos, r.measured_subsets
        );
    }
    if !full {
        println!("\n(scaled-down generation; pass --full for paper-sized datasets)");
    }
    Ok(())
}

fn cmd_solve(rest: &[String]) -> Result<(), CliError> {
    let dataset = opt(rest, "--dataset").ok_or_else(|| CliError::usage("missing --dataset"))?;
    let budget_mb: f64 = parse(rest, "--budget-mb", 10.0)?;
    let tau: f64 = parse(rest, "--tau", 0.6)?;
    let seed: u64 = parse(rest, "--seed", 42)?;
    let universe = load_dataset(&dataset, seed, flag(rest, "--paper-scale"))?;
    let budget = (budget_mb * 1e6) as u64;

    let representation = if flag(rest, "--ns") {
        RepresentationConfig::phocus_ns()
    } else {
        RepresentationConfig {
            sparsification: Sparsification::Lsh {
                tau,
                target_recall: 0.95,
                seed,
            },
            ..Default::default()
        }
    };
    let solver = Phocus::new(PhocusConfig {
        representation: representation.clone(),
        certify_sparsification: !flag(rest, "--ns"),
        parallelism: Parallelism::with_threads(parse(rest, "--threads", 0usize)?),
        sharding: !flag(rest, "--no-sharding"),
    });
    println!(
        "dataset {} — {} photos, {} subsets, archive {:.1} MB",
        universe.name,
        universe.num_photos(),
        universe.num_subsets(),
        universe.total_cost() as f64 / 1e6
    );
    let report = solver.solve(&universe, budget)?;
    let inst = phocus::represent(&universe, budget, &representation)?;
    print!("{}", render_report(&inst, &report));
    if let Some(out) = opt(rest, "--out") {
        // One retained photo per line: id, byte cost, name.
        let mut text = String::new();
        for &p in &report.selected {
            let photo = inst.photo(p);
            text.push_str(&format!("{}\t{}\t{}\n", p.0, photo.cost, photo.name));
        }
        write_file(&out, &text)?;
        println!("wrote retained set to {out}");
    }
    Ok(())
}

fn cmd_compress(rest: &[String]) -> Result<(), CliError> {
    let threads: usize = parse(rest, "--threads", 0)?;
    let prev = Parallelism::with_threads(threads).install_global();
    let result = run_compress(rest);
    prev.install_global();
    result
}

fn run_compress(rest: &[String]) -> Result<(), CliError> {
    let dataset = opt(rest, "--dataset").ok_or_else(|| CliError::usage("missing --dataset"))?;
    let budget_mb: f64 = parse(rest, "--budget-mb", 2.0)?;
    let seed: u64 = parse(rest, "--seed", 42)?;
    let ladder = match opt(rest, "--ladder") {
        None => ActionLadder::standard(),
        Some(spec) => ActionLadder::parse(&spec).map_err(CliError::Pipeline)?,
    };
    let sharding = !flag(rest, "--no-sharding");
    let universe = load_dataset(&dataset, seed, flag(rest, "--paper-scale"))?;
    let budget = (budget_mb * 1e6) as u64;
    let cfg = RepresentationConfig::default();
    let rungs: Vec<String> = ladder
        .levels()
        .iter()
        .map(|l| format!("{}:{}", l.quality, l.size_fraction))
        .collect();
    println!(
        "dataset {} — {} photos ({:.1} MB), budget {:.1} MB, ladder [{}]",
        universe.name,
        universe.num_photos(),
        universe.total_cost() as f64 / 1e6,
        budget as f64 / 1e6,
        rungs.join(", ")
    );
    // Two multi-action solves on the same ε-free objective: the degenerate
    // delete-only ladder *is* remove-only archival (bit for bit), so the
    // comparison needs no separate code path.
    let remove = phocus::solve_multi_action(
        &universe,
        budget,
        &ActionLadder::delete_only(),
        &cfg,
        sharding,
    )?;
    let ma = phocus::solve_multi_action(&universe, budget, &ladder, &cfg, sharding)?;
    println!("remove-only quality:        {:.2}", remove.score);
    // A zero remove-only score (zero budget, empty demand) has no
    // meaningful percentage — omit it instead of printing NaN/inf.
    let pct = if remove.score > 0.0 {
        format!(" ({:+.1}%)", 100.0 * (ma.score / remove.score - 1.0))
    } else {
        String::new()
    };
    println!("compression-aware quality:  {:.2}{pct}", ma.score);
    println!(
        "retained: {} full-quality photos + {} compressed renditions",
        ma.kept_original, ma.kept_compressed
    );
    if let Some(points) = opt(rest, "--frontier") {
        let points: usize = points
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| CliError::usage(format!("invalid value for --frontier: {points}")))?;
        let budgets: Vec<u64> = (1..=points as u64)
            .map(|i| (budget * i / points as u64).max(1))
            .collect();
        let frontier = phocus::multi_action_frontier(&universe, &budgets, &ladder, &cfg)?;
        println!("frontier\tbudget_mb\tdelete_only\tmulti_action");
        for p in &frontier {
            println!(
                "frontier\t{:.2}\t{:.4}\t{:.4}",
                p.budget as f64 / 1e6,
                p.delete_only,
                p.multi_action
            );
        }
    }
    if let Some(out) = opt(rest, "--out") {
        // One retained action per line, in transcript order:
        // id, parent id, action, byte cost, name.
        let mut text = String::new();
        for &p in &ma.selected {
            let photo = ma.instance.photo(p);
            let action = match ma.map.level[p.index()] {
                None => "keep".to_string(),
                Some(k) => format!("recompress@{k}"),
            };
            text.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\n",
                p.0,
                ma.map.parent[p.index()],
                action,
                photo.cost,
                photo.name
            ));
        }
        write_file(&out, &text)?;
        println!("wrote retained actions to {out}");
    }
    Ok(())
}

fn cmd_export(rest: &[String]) -> Result<(), CliError> {
    let dataset = opt(rest, "--dataset").ok_or_else(|| CliError::usage("missing --dataset"))?;
    let out = opt(rest, "--out").ok_or_else(|| CliError::usage("missing --out"))?;
    let seed: u64 = parse(rest, "--seed", 42)?;
    let universe = load_dataset(&dataset, seed, flag(rest, "--paper-scale"))?;
    write_file(&out, &par_datasets::to_text(&universe))?;
    println!(
        "wrote {} ({} photos, {} subsets)",
        out,
        universe.num_photos(),
        universe.num_subsets()
    );
    Ok(())
}

fn cmd_plan(rest: &[String]) -> Result<(), CliError> {
    let dataset = opt(rest, "--dataset").ok_or_else(|| CliError::usage("missing --dataset"))?;
    let target: f64 = parse(rest, "--target", 0.9)?;
    let seed: u64 = parse(rest, "--seed", 42)?;
    let universe = load_dataset(&dataset, seed, flag(rest, "--paper-scale"))?;
    let tolerance = (universe.total_cost() / 200).max(1);
    let plan = phocus::minimal_budget(
        &universe,
        target,
        &RepresentationConfig::default(),
        tolerance,
    )?;
    println!(
        "dataset {} — archive {:.1} MB",
        universe.name,
        universe.total_cost() as f64 / 1e6
    );
    println!(
        "to keep {:.0}% of quality you need ≈ {:.2} MB ({:.1}% of the archive); \
         achieved {:.1}% there ({} solver probes)",
        100.0 * target,
        plan.budget as f64 / 1e6,
        100.0 * plan.budget_fraction,
        100.0 * plan.achieved_fraction,
        plan.probes
    );
    Ok(())
}

/// `serve-batch`: stream tenant universe files in, solutions out, one status
/// line and one exit status per tenant. A tenant that fails to load or solve
/// gets a `fail` line; the batch continues and exits 5 if any tenant failed.
fn cmd_serve_batch(rest: &[String]) -> Result<(), CliError> {
    if let Some(dir) = opt(rest, "--catalog") {
        return serve_batch_catalog(rest, &dir);
    }
    let list = opt(rest, "--list").ok_or_else(|| {
        CliError::usage("missing --list (file of tenant universe paths, `-` for stdin)")
    })?;
    let budget_frac: f64 = parse(rest, "--budget-frac", 0.25)?;
    let budget_mb: f64 = parse(rest, "--budget-mb", 0.0)?;
    let threads: usize = parse(rest, "--threads", 0)?;
    let out_dir = opt(rest, "--out-dir");
    if !(0.0..=1.0).contains(&budget_frac) || budget_frac.is_nan() {
        return Err(CliError::usage(format!(
            "--budget-frac must be in [0, 1], got {budget_frac}"
        )));
    }

    let paths = read_tenant_list(&list)?;
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).map_err(|e| PhocusError::Io {
            path: dir.clone(),
            message: e.to_string(),
        })?;
    }

    let representation = repr_from_flags(rest)?;

    // Load every tenant up front; a tenant whose file is unreadable or
    // malformed fails *that tenant*, never the batch.
    let mut loaded: Vec<Result<FleetTenant, PhocusError>> = Vec::with_capacity(paths.len());
    for path in &paths {
        let tenant = read_file(path).and_then(|text| {
            let universe = par_datasets::from_text(&text).map_err(PhocusError::Dataset)?;
            let budget = if budget_mb > 0.0 {
                (budget_mb * 1e6) as u64
            } else {
                ((universe.total_cost() as f64 * budget_frac) as u64).max(1)
            };
            Ok(FleetTenant { universe, budget })
        });
        loaded.push(tenant);
    }
    let solvable: Vec<FleetTenant> = loaded.iter().filter_map(|t| t.as_ref().ok()).cloned().collect();

    let t0 = std::time::Instant::now(); // phocus-lint: allow(wall-clock) — fills the reported batch throughput line only
    let engine = FleetEngine::new(FleetEngineConfig {
        representation,
        parallelism: Parallelism::with_threads(threads),
        reuse_arenas: !flag(rest, "--fresh-arenas"),
    });
    let outcomes = engine.run(&solvable);
    let batch_secs = t0.elapsed().as_secs_f64();

    // Report in input order, interleaving load failures with solve outcomes.
    let mut failed = 0usize;
    let mut next_outcome = outcomes.into_iter();
    for (i, (path, tenant)) in paths.iter().zip(&loaded).enumerate() {
        match tenant {
            Err(e) => {
                failed += 1;
                println!("fail\t{path}: {e}");
            }
            Ok(_) => {
                let Some(outcome) = next_outcome.next() else {
                    // One engine outcome per loaded tenant, by construction.
                    unreachable!("engine returned fewer outcomes than tenants")
                };
                match &outcome.result {
                    Err(e) => {
                        failed += 1;
                        println!("fail\t{path}: {e}");
                    }
                    Ok(report) => {
                        println!(
                            "ok\t{}\tphotos={}\tretained={}\tcost_mb={:.2}\tscore={:.3}\tms={:.1}",
                            outcome.name,
                            outcome.photos,
                            report.selected.len(),
                            report.cost as f64 / 1e6,
                            report.score,
                            outcome.latency.as_secs_f64() * 1e3
                        );
                        if let Some(dir) = &out_dir {
                            let file = format!(
                                "{dir}/{i:05}_{}.tsv",
                                outcome.name.replace(['/', '\\'], "_")
                            );
                            let mut text = String::new();
                            for &p in &report.selected {
                                text.push_str(&format!("{}\n", p.0));
                            }
                            write_file(&file, &text)?;
                        }
                    }
                }
            }
        }
    }
    let total = paths.len();
    println!(
        "batch\ttenants={total}\tok={}\tfailed={failed}\tinst_per_sec={:.2}",
        total - failed,
        (total - failed) as f64 / batch_secs.max(1e-9)
    );
    if failed > 0 {
        return Err(CliError::PartialFailure {
            failed,
            total,
            what: "tenants",
        });
    }
    Ok(())
}

/// `serve-batch --catalog`: the catalog-resident serving path. Tenants come
/// from pack files — no text parse, no representation, no union-find —
/// budgets and names from the resident index. Reporting, failure isolation,
/// and exit codes mirror the universe-list path.
fn serve_batch_catalog(rest: &[String], dir: &str) -> Result<(), CliError> {
    let threads: usize = parse(rest, "--threads", 0)?;
    let out_dir = opt(rest, "--out-dir");
    if let Some(d) = &out_dir {
        std::fs::create_dir_all(d).map_err(|e| PhocusError::Io {
            path: d.clone(),
            message: e.to_string(),
        })?;
    }

    let catalog = Catalog::open(dir)?;
    if catalog.entries().is_empty() {
        return Err(CliError::usage(format!("catalog {dir} has no tenants")));
    }

    // Load every pack up front; a stale checksum or corrupt pack fails
    // *that tenant*, never the batch — same isolation as the list path.
    let mut loaded: Vec<Result<PackedTenant, PhocusError>> =
        Vec::with_capacity(catalog.entries().len());
    for entry in catalog.entries() {
        loaded.push(catalog.load(entry).map(|packed| PackedTenant {
            name: entry.name.clone(),
            packed,
        }));
    }
    let solvable: Vec<PackedTenant> = loaded.iter().filter_map(|t| t.as_ref().ok()).cloned().collect();

    let t0 = std::time::Instant::now(); // phocus-lint: allow(wall-clock) — fills the reported batch throughput line only
    let engine = FleetEngine::new(FleetEngineConfig {
        representation: RepresentationConfig::default(), // unused on the packed path
        parallelism: Parallelism::with_threads(threads),
        reuse_arenas: !flag(rest, "--fresh-arenas"),
    });
    let outcomes = engine.run_packed(&solvable);
    let batch_secs = t0.elapsed().as_secs_f64();

    let mut failed = 0usize;
    let mut next_outcome = outcomes.into_iter();
    for (i, (entry, tenant)) in catalog.entries().iter().zip(&loaded).enumerate() {
        match tenant {
            Err(e) => {
                failed += 1;
                println!("fail\t{}: {e}", entry.name);
            }
            Ok(_) => {
                let Some(outcome) = next_outcome.next() else {
                    // One engine outcome per loaded tenant, by construction.
                    unreachable!("engine returned fewer outcomes than tenants")
                };
                match &outcome.result {
                    Err(e) => {
                        failed += 1;
                        println!("fail\t{}: {e}", entry.name);
                    }
                    Ok(report) => {
                        println!(
                            "ok\t{}\tphotos={}\tretained={}\tcost_mb={:.2}\tscore={:.3}\tms={:.1}",
                            outcome.name,
                            outcome.photos,
                            report.selected.len(),
                            report.cost as f64 / 1e6,
                            report.score,
                            outcome.latency.as_secs_f64() * 1e3
                        );
                        if let Some(d) = &out_dir {
                            let file = format!(
                                "{d}/{i:05}_{}.tsv",
                                outcome.name.replace(['/', '\\'], "_")
                            );
                            let mut text = String::new();
                            for &p in &report.selected {
                                text.push_str(&format!("{}\n", p.0));
                            }
                            write_file(&file, &text)?;
                        }
                    }
                }
            }
        }
    }
    let total = catalog.entries().len();
    println!(
        "batch\ttenants={total}\tok={}\tfailed={failed}\tinst_per_sec={:.2}",
        total - failed,
        (total - failed) as f64 / batch_secs.max(1e-9)
    );
    if failed > 0 {
        return Err(CliError::PartialFailure {
            failed,
            total,
            what: "tenants",
        });
    }
    Ok(())
}

/// `pack`: represent one dataset and persist it as a `phocus-pack` image.
/// `pack --check` loads an existing image — full checksum, bounds, and
/// cross-section validation — and prints its shape without solving.
fn cmd_pack(rest: &[String]) -> Result<(), CliError> {
    if let Some(path) = opt(rest, "--check") {
        let bytes = read_bytes(&path)?;
        let packed = par_core::unpack_instance(&bytes)
            .map_err(|e| CliError::Pipeline(PhocusError::Pack(e)))?;
        println!(
            "ok\t{path}\tphotos={}\tsubsets={}\tbudget_mb={:.2}\tshards={}\tbytes={}",
            packed.instance.num_photos(),
            packed.instance.num_subsets(),
            packed.instance.budget() as f64 / 1e6,
            packed.labels.num_shards(),
            bytes.len()
        );
        return Ok(());
    }
    let dataset = opt(rest, "--dataset").ok_or_else(|| CliError::usage("missing --dataset"))?;
    let out = opt(rest, "--out").ok_or_else(|| CliError::usage("missing --out"))?;
    let budget_mb: f64 = parse(rest, "--budget-mb", 10.0)?;
    let seed: u64 = parse(rest, "--seed", 42)?;
    let universe = load_dataset(&dataset, seed, flag(rest, "--paper-scale"))?;
    let representation = repr_from_flags(rest)?;
    let inst = phocus::represent(&universe, (budget_mb * 1e6) as u64, &representation)?;
    let bytes = par_core::pack_instance(&inst).map_err(PhocusError::from)?;
    write_bytes(&out, &bytes)?;
    println!(
        "wrote\t{out}\tphotos={}\tsubsets={}\tbytes={}",
        inst.num_photos(),
        inst.num_subsets(),
        bytes.len()
    );
    Ok(())
}

/// `catalog build | ls`: build a pack catalog from a tenant list, or print
/// a catalog's resident index.
fn cmd_catalog(rest: &[String]) -> Result<(), CliError> {
    match rest.first().map(String::as_str) {
        Some("build") => cmd_catalog_build(&rest[1..]),
        Some("ls") => cmd_catalog_ls(&rest[1..]),
        _ => Err(CliError::usage("catalog needs a subcommand: build | ls")),
    }
}

/// `catalog build`: represent and pack every tenant of a serve-batch list
/// into a catalog directory. Unlike serving, building is strict — any
/// unreadable or malformed tenant fails the build, because a catalog with
/// silently missing tenants would serve wrong fleets forever after.
fn cmd_catalog_build(rest: &[String]) -> Result<(), CliError> {
    let list = opt(rest, "--list").ok_or_else(|| {
        CliError::usage("missing --list (file of tenant universe paths, `-` for stdin)")
    })?;
    let out_dir =
        opt(rest, "--out-dir").ok_or_else(|| CliError::usage("missing --out-dir"))?;
    let budget_frac: f64 = parse(rest, "--budget-frac", 0.25)?;
    let budget_mb: f64 = parse(rest, "--budget-mb", 0.0)?;
    if !(0.0..=1.0).contains(&budget_frac) || budget_frac.is_nan() {
        return Err(CliError::usage(format!(
            "--budget-frac must be in [0, 1], got {budget_frac}"
        )));
    }
    let representation = repr_from_flags(rest)?;

    let paths = read_tenant_list(&list)?;
    let mut builder = CatalogBuilder::create(&out_dir)?;
    for path in &paths {
        let text = read_file(path)?;
        let universe = par_datasets::from_text(&text)
            .map_err(|e| CliError::Pipeline(PhocusError::Dataset(e)))?;
        let budget = if budget_mb > 0.0 {
            (budget_mb * 1e6) as u64
        } else {
            ((universe.total_cost() as f64 * budget_frac) as u64).max(1)
        };
        let inst = phocus::represent(&universe, budget, &representation)?;
        let bytes = par_core::pack_instance(&inst).map_err(PhocusError::from)?;
        builder.add_pack(
            &universe.name,
            &bytes,
            inst.num_photos() as u64,
            inst.budget(),
        )?;
        println!(
            "packed\t{}\tphotos={}\tbytes={}",
            universe.name,
            inst.num_photos(),
            bytes.len()
        );
    }
    let catalog = builder.finish()?;
    println!(
        "catalog\t{out_dir}\ttenants={}",
        catalog.entries().len()
    );
    Ok(())
}

/// `catalog ls`: print the resident index, one line per tenant.
fn cmd_catalog_ls(rest: &[String]) -> Result<(), CliError> {
    let dir = rest
        .first()
        .ok_or_else(|| CliError::usage("missing catalog directory"))?;
    let catalog = Catalog::open(dir.as_str())?;
    for e in catalog.entries() {
        println!(
            "tenant\t{}\t{}\t{:016x}\tphotos={}\tbudget_mb={:.2}\tartifact={}",
            e.name,
            e.pack,
            e.checksum,
            e.photos,
            e.budget as f64 / 1e6,
            e.artifact.as_ref().map_or("-", |(f, _)| f.as_str())
        );
    }
    println!("catalog\t{dir}\ttenants={}", catalog.entries().len());
    Ok(())
}

/// `epochs`: one resident [`ArchiveSession`] replaying a churn trace, one
/// status line per epoch. A delta that does not resolve or apply fails that
/// epoch only — the session keeps its instance and warm stream caches — and
/// the run exits 5 if any epoch failed, mirroring `serve-batch`.
fn cmd_epochs(rest: &[String]) -> Result<(), CliError> {
    let dataset = opt(rest, "--dataset").ok_or_else(|| CliError::usage("missing --dataset"))?;
    let budget_mb: f64 = parse(rest, "--budget-mb", 10.0)?;
    let seed: u64 = parse(rest, "--seed", 42)?;
    let epochs_n: usize = parse(rest, "--epochs", 8)?;
    let churn: f64 = parse(rest, "--churn", 0.01)?;
    let threads: usize = parse(rest, "--threads", 0)?;
    let check = flag(rest, "--check");
    if !(0.0..=1.0).contains(&churn) || churn.is_nan() {
        return Err(CliError::usage(format!(
            "--churn must be in [0, 1], got {churn}"
        )));
    }

    let universe = load_dataset(&dataset, seed, flag(rest, "--paper-scale"))?;
    let budget = (budget_mb * 1e6) as u64;
    let representation = repr_from_flags(rest)?;
    let inst = phocus::represent(&universe, budget, &representation)?;

    let trace = match opt(rest, "--trace") {
        Some(path) => {
            let text = read_file(&path)?;
            par_datasets::trace_from_text(&text)
                .map_err(|e| CliError::Pipeline(PhocusError::Dataset(e)))?
        }
        None => {
            let n = inst.num_photos() as f64;
            // `--churn` is the *total* per-epoch membership turnover (the
            // same convention as BENCH_incremental.json): half of it photos
            // leaving, half arriving.
            par_datasets::generate_churn(
                &inst,
                &par_datasets::ChurnConfig {
                    epochs: epochs_n,
                    removal_fraction: churn / 2.0,
                    arrivals_mean: (churn * n / 2.0).max(1.0),
                    drift_mean: 1.0,
                    budget_wobble: 0.05,
                    seed,
                    ..Default::default()
                },
            )
            .map_err(|e| CliError::Pipeline(PhocusError::Dataset(e)))?
        }
    };
    if let Some(out) = opt(rest, "--export-trace") {
        write_file(&out, &par_datasets::trace_to_text(&trace))?;
        println!("wrote trace to {out} ({} epochs)", trace.epochs.len());
    }

    let prev = Parallelism::with_threads(threads).install_global();
    let result = run_epochs(inst, &trace, check);
    prev.install_global();
    result
}

/// The epoch replay loop behind [`cmd_epochs`], separated so the ambient
/// thread pool is restored on every exit path.
fn run_epochs(
    inst: par_core::Instance,
    trace: &par_datasets::ChurnTrace,
    check: bool,
) -> Result<(), CliError> {
    let mut session = ArchiveSession::new(inst);
    let mut failed = 0usize;
    let total = trace.epochs.len();
    // One iteration per epoch, plus the initial from-cold solve as epoch 0.
    for k in 0..=total {
        let t0 = std::time::Instant::now(); // phocus-lint: allow(wall-clock) — fills the reported per-epoch latency field only
        let solved: Result<EpochSolve, PhocusError> = if k == 0 {
            Ok(session.resolve())
        } else {
            (|| {
                let delta = par_datasets::resolve_epoch(&trace.epochs[k - 1], session.instance())?;
                Ok(session.apply_delta(&delta)?.resolve())
            })()
        };
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let solve = match solved {
            Err(e) => {
                failed += 1;
                println!("fail\tepoch={k}\t{e}");
                continue;
            }
            Ok(s) => s,
        };
        let dirty = match (k, session.last_delta_stats()) {
            (0, _) | (_, None) => "all".to_string(),
            (_, Some(d)) => format!("{}/{}", d.dirty_shards, d.num_shards),
        };
        let check_field = if check {
            let scratch = par_algo::main_algorithm_sharded(session.instance());
            let identical = solve.outcome.best.selected == scratch.best.selected
                && solve.outcome.best.score.to_bits() == scratch.best.score.to_bits()
                && solve.outcome.winner == scratch.winner;
            if !identical {
                failed += 1;
                println!("fail\tepoch={k}\tincremental solve diverged from from-scratch solve");
                continue;
            }
            "\tcheck=ok"
        } else {
            ""
        };
        println!(
            "ok\tepoch={k}\tphotos={}\tdirty_shards={dirty}\treplayed={}\tlive={}\tretained={}\tcost_mb={:.2}\tscore={:.3}\tms={:.1}{check_field}",
            session.instance().num_photos(),
            solve.report.replayed_streams,
            solve.report.live_streams,
            solve.outcome.best.selected.len(),
            solve.outcome.best.cost as f64 / 1e6,
            solve.outcome.best.score,
            ms,
        );
    }
    println!(
        "session\tepochs={}\tok={}\tfailed={failed}",
        total + 1,
        total + 1 - failed
    );
    if failed > 0 {
        return Err(CliError::PartialFailure {
            failed,
            total: total + 1,
            what: "epochs",
        });
    }
    Ok(())
}

fn cmd_suite(rest: &[String]) -> Result<(), CliError> {
    let dataset = opt(rest, "--dataset").ok_or_else(|| CliError::usage("missing --dataset"))?;
    let budget_mb: f64 = parse(rest, "--budget-mb", 10.0)?;
    let tau: f64 = parse(rest, "--tau", 0.6)?;
    let seed: u64 = parse(rest, "--seed", 42)?;
    let universe = load_dataset(&dataset, seed, flag(rest, "--paper-scale"))?;
    let budget = (budget_mb * 1e6) as u64;
    let cfg = SuiteConfig {
        tau,
        rand_seed: seed,
        ..Default::default()
    };
    let result = run_suite(&universe, budget, &cfg)?;
    print!("{}", phocus::report::render_suite(&result));
    Ok(())
}
