//! Algorithm 1 of the paper: run `LazyGreedy(UC)` and `LazyGreedy(CB)` and
//! return the better of the two solutions.
//!
//! Taking the max of the unit-cost and cost-benefit greedy outputs is the
//! classical trick of Leskovec et al. that lifts the knapsack-constrained
//! guarantee to `(1 − 1/e)/2`; when all costs are equal the `UC` run alone is
//! the optimal `(1 − 1/e)` greedy of Nemhauser et al., so Algorithm 1 is
//! provably optimal for uniform costs.

use crate::celf::{lazy_greedy, GreedyRule};
use crate::sharded::{ShardedSolver, SolveScratch};
use crate::types::{GreedyOutcome, RunStats};
use par_core::Instance;

/// The result of [`main_algorithm`]: the winning solution plus both sub-runs
/// (the paper reports that `CB` wins roughly 90% of non-uniform-cost runs,
/// which the experiment harness verifies via these fields).
#[derive(Debug, Clone)]
pub struct MainOutcome {
    /// The better of the two runs.
    pub best: GreedyOutcome,
    /// Which rule produced the winner.
    pub winner: GreedyRule,
    /// The unit-cost run.
    pub uc: GreedyOutcome,
    /// The cost-benefit run.
    pub cb: GreedyOutcome,
}

impl MainOutcome {
    /// Aggregated instrumentation over both sub-runs.
    pub fn total_stats(&self) -> RunStats {
        self.uc.stats.merge(&self.cb.stats)
    }
}

/// Runs Algorithm 1 (`MainAlgorithm`) on `inst` with its budget, using the
/// single global CELF heap for both sub-runs.
pub fn main_algorithm(inst: &Instance) -> MainOutcome {
    let uc = lazy_greedy(inst, GreedyRule::UnitCost);
    let cb = lazy_greedy(inst, GreedyRule::CostBenefit);
    pick_winner(uc, cb)
}

/// Runs Algorithm 1 through the component-sharded solver of
/// [`crate::sharded`]: the instance is decomposed once and both sub-runs
/// reuse the decomposition. Transcripts (and score bits) are identical to
/// [`main_algorithm`]; only the instrumentation counters differ.
pub fn main_algorithm_sharded(inst: &Instance) -> MainOutcome {
    let solver = ShardedSolver::new(inst);
    let uc = solver.solve(GreedyRule::UnitCost);
    let cb = solver.solve(GreedyRule::CostBenefit);
    pick_winner(uc, cb)
}

/// [`main_algorithm_sharded`] drawing every prepare- and solve-time buffer
/// from `scratch` (and returning the capacity there afterwards): the fleet
/// engine's per-tenant entry point. Bit-identical to `main_algorithm_sharded`
/// regardless of what the scratch previously held — see
/// [`SolveScratch`](crate::SolveScratch).
pub fn main_algorithm_scratch(inst: &Instance, scratch: &mut SolveScratch) -> MainOutcome {
    let solver = ShardedSolver::new_in(inst, scratch);
    let uc = solver.solve_scratch(GreedyRule::UnitCost, scratch);
    let cb = solver.solve_scratch(GreedyRule::CostBenefit, scratch);
    solver.recycle(scratch);
    pick_winner(uc, cb)
}

/// [`main_algorithm_scratch`] with the component labeling already known —
/// the entry point for catalog-backed serving, where an instance arrives
/// from a `phocus-pack` file with its shard labels persisted alongside:
/// the solver skips the union-find pass entirely and goes straight to the
/// seed sweep. Bit-identical to [`main_algorithm_sharded`].
pub fn main_algorithm_packed(
    inst: &Instance,
    labels: par_core::ShardLabels,
    scratch: &mut SolveScratch,
) -> MainOutcome {
    let solver = ShardedSolver::new_in_with_labels(inst, labels, scratch);
    let uc = solver.solve_scratch(GreedyRule::UnitCost, scratch);
    let cb = solver.solve_scratch(GreedyRule::CostBenefit, scratch);
    solver.recycle(scratch);
    pick_winner(uc, cb)
}

/// Dispatches to [`main_algorithm_sharded`] or [`main_algorithm`] based on a
/// configuration knob (see `phocus::PhocusConfig::sharding`).
pub fn main_algorithm_with(inst: &Instance, sharding: bool) -> MainOutcome {
    if sharding {
        main_algorithm_sharded(inst)
    } else {
        main_algorithm(inst)
    }
}

/// `argmax(res1, res2)` — ties go to CB, which is also the paper's
/// empirically dominant sub-algorithm. Shared with the epoch-resident
/// solver in [`crate::incremental`], which must reproduce Algorithm 1's
/// winner selection exactly.
pub(crate) fn pick_winner(uc: GreedyOutcome, cb: GreedyOutcome) -> MainOutcome {
    let (winner, best) = if uc.score > cb.score {
        (GreedyRule::UnitCost, uc.clone())
    } else {
        (GreedyRule::CostBenefit, cb.clone())
    };
    MainOutcome {
        best,
        winner,
        uc,
        cb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use par_core::fixtures::{figure1_instance, random_instance, RandomInstanceConfig, MB};
    use par_core::{exact_score, InstanceBuilder, UnitSimilarity};

    #[test]
    fn best_is_max_of_sub_runs() {
        let inst = figure1_instance(4 * MB);
        let out = main_algorithm(&inst);
        assert!(out.best.score >= out.uc.score - 1e-12);
        assert!(out.best.score >= out.cb.score - 1e-12);
        let exact = exact_score(&inst, &out.best.selected);
        assert!((exact - out.best.score).abs() < 1e-9);
    }

    #[test]
    fn uniform_costs_make_both_rules_agree() {
        let mut b = InstanceBuilder::new(2);
        let p0 = b.add_photo("a", 1);
        let p1 = b.add_photo("b", 1);
        let p2 = b.add_photo("c", 1);
        b.add_subset("q1", 3.0, vec![p0, p1], vec![]);
        b.add_subset("q2", 1.0, vec![p2], vec![]);
        let inst = b.build_with_provider(&UnitSimilarity).unwrap();
        let out = main_algorithm(&inst);
        assert_eq!(out.uc.selected, out.cb.selected);
        assert!((out.uc.score - out.cb.score).abs() < 1e-12);
    }

    #[test]
    fn dominates_each_sub_run_on_random_instances() {
        let cfg = RandomInstanceConfig::default();
        for seed in 0..10 {
            let inst = random_instance(seed, &cfg);
            let out = main_algorithm(&inst);
            assert!(out.best.score + 1e-9 >= out.uc.score.max(out.cb.score));
            assert!(out.best.cost <= inst.budget());
        }
    }

    #[test]
    fn total_stats_aggregates() {
        let inst = figure1_instance(4 * MB);
        let out = main_algorithm(&inst);
        let total = out.total_stats();
        assert_eq!(
            total.gain_evals,
            out.uc.stats.gain_evals + out.cb.stats.gain_evals
        );
    }
}
