//! Streamed archival: photos arrive one at a time (an ingestion pipeline, a
//! camera roll sync) and the keep/archive decision must be made online with
//! bounded memory — the setting of the paper's reference \[5\] (Badanidiyuru
//! et al.). Compares the one-pass sieves against the offline CELF greedy and
//! certifies each with the online bound.
//!
//! ```text
//! cargo run -p par-examples --release --bin streaming_archive
//! ```

use par_algo::{density_sieve, main_algorithm, online_bound, sieve_streaming};
use par_core::Solution;
use par_datasets::{generate_openimages, OpenImagesConfig};
use phocus::{represent, RepresentationConfig};

fn main() {
    let universe = generate_openimages(&OpenImagesConfig {
        name: "stream".into(),
        photos: 600,
        target_subsets: 120,
        seed: 11,
        ..Default::default()
    });
    let budget = universe.total_cost() / 5;
    let inst = represent(&universe, budget, &RepresentationConfig::default()).unwrap();
    println!(
        "{} photos streaming in, budget {:.1} MB ({}%)\n",
        inst.num_photos(),
        budget as f64 / 1e6,
        100 * budget / universe.total_cost()
    );

    // Offline reference: the two-rule CELF greedy sees everything.
    let offline = main_algorithm(&inst).best;
    let report = |name: &str, selected: &[par_core::PhotoId], evals: u64| {
        let sol = Solution::new_unchecked(&inst, selected.to_vec());
        let cert = online_bound(&inst, sol.photos());
        println!(
            "{name:<28} quality {:>8.2} ({:>5.1}% of offline)  cost {:>5.2} MB  certified ≥ {:>4.1}% of OPT  ({} gain evals)",
            sol.score(),
            100.0 * sol.score() / offline.score,
            sol.cost() as f64 / 1e6,
            100.0 * cert.ratio,
            evals,
        );
    };

    report("offline CELF (Algorithm 1)", &offline.selected, 0);

    // One-pass density sieve under the byte budget.
    for levels in [2, 4, 8] {
        let sieve = density_sieve(&inst, levels);
        report(
            &format!("density sieve ({levels} levels)"),
            &sieve.selected,
            sieve.stats.gain_evals,
        );
    }

    // Cardinality-constrained SieveStreaming (the summarization setting):
    // keep at most as many photos as the offline solution used.
    let k = offline.selected.len();
    let sieve = sieve_streaming(&inst, k, 0.1).expect("valid sieve parameters");
    report(
        &format!("SieveStreaming (k = {k})"),
        &sieve.selected,
        sieve.stats.gain_evals,
    );

    println!(
        "\nThe sieves never see a photo twice, yet land within a few percent
of the offline greedy — and every solution carries its own a-posteriori
certificate from the online bound."
    );
}
