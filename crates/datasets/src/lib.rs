//! # par-datasets — synthetic dataset generators for the PAR experiments
//!
//! The paper evaluates on eight datasets from two sources (Table 2): five
//! slices of the public Open Images corpus (P-1K … P-100K) and three private
//! e-commerce domains (EC-Fashion, EC-Electronics, EC-Home & Garden). Neither
//! source is shippable in a reproduction, so this crate generates synthetic
//! equivalents that preserve the statistical shape the algorithms see:
//!
//! * [`openimages`] — a labeled photo corpus: Zipf-distributed label
//!   vocabulary, multi-label photos with confidence scores, per-label
//!   subsets weighted by label frequency, heavy-tailed photo sizes;
//! * [`ecommerce`] — a product catalog with templated titles, a Zipfian
//!   query log, and subsets derived by running the top-250 queries through
//!   the real BM25 engine of `par-search` (retrieval scores → relevance,
//!   query frequencies → weights) — exactly the paper's Example 5.1
//!   pipeline;
//! * [`universe`] — the common output type: photos (names, costs,
//!   embeddings, optional EXIF) plus subset definitions, *without* committed
//!   similarity stores. PHOcus's Data Representation Module turns a
//!   [`Universe`] into a solvable [`par_core::Instance`] (dense or
//!   LSH-sparsified);
//! * [`zipf`] — a seeded Zipf sampler used by both generators;
//! * [`table2`] — reproduces Table 2's dataset-statistics rows;
//! * [`churn`] — epoch churn traces for the incremental archiver: a
//!   generator evolving an instance through photo arrivals/removals and
//!   query drift, a name-based `# phocus-trace v1` text format, and a
//!   per-epoch resolver producing [`par_core::EpochDelta`]s.

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod churn;
pub mod ecommerce;
pub mod error;
pub mod fleet;
pub mod io;
pub mod openimages;
pub mod recompression;
pub mod table2;
pub mod universe;
pub mod zipf;

pub use churn::{
    generate_churn, resolve_epoch, trace_from_text, trace_to_text, ChurnConfig, ChurnTrace,
    TraceOp,
};
pub use ecommerce::{generate_ecommerce, EcConfig, EcDomain};
pub use error::DatasetError;
pub use fleet::{generate_fleet, FleetConfig};
pub use io::{from_text, to_text, ParseError};
pub use openimages::{generate_openimages, OpenImagesConfig, PublicScale};
pub use recompression::{recompression_levels, RECOMPRESSION_LEVELS};
pub use table2::{table2_rows, Table2Row};
pub use universe::{SubsetDef, Universe};
pub use zipf::Zipf;
