//! Contextualized similarity storage and providers.
//!
//! The paper's `SIM : Q × P × P → [0,1]` is *contextual*: the similarity of
//! the same pair of photos differs between pre-defined subsets. Within an
//! [`Instance`](crate::Instance) similarities are therefore stored per subset,
//! indexed by the *local* member index within that subset.
//!
//! Two storage layouts are provided:
//!
//! * [`DenseSim`] — a packed lower-triangular matrix, used when all pairwise
//!   similarities are materialized (the paper's PHOcus-NS configuration);
//! * [`SparseSim`] — per-member adjacency lists, used after τ-sparsification
//!   (Section 4.3) or when the pairs come from an LSH index.
//!
//! Both layouts implicitly define `SIM(q, p, p) = 1` and treat missing pairs
//! as similarity 0, exactly as the sparsified model does.
//!
//! [`SimilarityProvider`] abstracts over *sources* of similarity (embedding
//! cosine, test oracles, closures) from which the stores are materialized.

use crate::{ModelError, PhotoId, Result, Subset, SubsetId};

/// A source of contextualized similarity scores, used to materialize
/// [`ContextSim`] stores during instance construction.
///
/// Implementations must be symmetric (`similarity(q, a, b) ==
/// similarity(q, b, a)`), return values in `[0, 1]`, and return 1 for
/// identical photos. These invariants are validated at materialization time.
pub trait SimilarityProvider {
    /// `SIM(context, a, b)` for two photos that are members of `context`.
    fn similarity(&self, context: &Subset, a: PhotoId, b: PhotoId) -> f64;
}

/// The trivial provider with `SIM ≡ 1` for all co-members.
///
/// Under this provider the PAR objective degenerates to weighted coverage of
/// subsets — the selection objective of the paper's Greedy-NR baseline, and
/// the gadget used in the Max-Coverage hardness reduction (Theorem 3.4).
#[derive(Debug, Clone, Copy, Default)]
pub struct UnitSimilarity;

impl SimilarityProvider for UnitSimilarity {
    fn similarity(&self, _context: &Subset, _a: PhotoId, _b: PhotoId) -> f64 {
        1.0
    }
}

/// A provider backed by a closure, convenient for tests and fixtures.
pub struct FnSimilarity<F>(pub F)
where
    F: Fn(SubsetId, PhotoId, PhotoId) -> f64;

impl<F> SimilarityProvider for FnSimilarity<F>
where
    F: Fn(SubsetId, PhotoId, PhotoId) -> f64,
{
    fn similarity(&self, context: &Subset, a: PhotoId, b: PhotoId) -> f64 {
        if a == b {
            1.0
        } else {
            (self.0)(context.id, a, b)
        }
    }
}

/// Packed lower-triangular matrix of pairwise similarities over the members
/// of one subset. The diagonal (`SIM = 1`) is implicit.
///
/// Entry `(i, j)` with `i > j` is stored at offset `i·(i−1)/2 + j`. Values are
/// kept as `f32` to halve memory traffic; all arithmetic is done in `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseSim {
    n: usize,
    /// Lower triangle, row-major: entry (i,j), i>j at `i*(i-1)/2 + j`.
    tri: Vec<f32>,
}

impl DenseSim {
    /// Materializes all pairwise similarities of `subset`'s members from a
    /// provider. Costs `O(|q|²)` provider calls.
    pub fn from_provider<P: SimilarityProvider + ?Sized>(
        subset: &Subset,
        provider: &P,
    ) -> Result<Self> {
        let n = subset.members.len();
        let mut tri = Vec::with_capacity(n * (n - 1) / 2);
        for i in 1..n {
            for j in 0..i {
                let s = provider.similarity(subset, subset.members[i], subset.members[j]);
                if !(0.0..=1.0).contains(&s) || s.is_nan() {
                    return Err(ModelError::InvalidSimilarity {
                        subset: subset.id,
                        value: s,
                    });
                }
                tri.push(s as f32);
            }
        }
        Ok(DenseSim { n, tri })
    }

    /// Builds a dense store directly from a full `n×n` matrix slice
    /// (row-major). Only the lower triangle is read.
    pub fn from_matrix(subset_id: SubsetId, n: usize, matrix: &[f64]) -> Result<Self> {
        assert_eq!(matrix.len(), n * n, "matrix must be n*n row-major");
        let mut tri = Vec::with_capacity(n * (n - 1) / 2);
        for i in 1..n {
            for j in 0..i {
                let s = matrix[i * n + j];
                if !(0.0..=1.0).contains(&s) || s.is_nan() {
                    return Err(ModelError::InvalidSimilarity {
                        subset: subset_id,
                        value: s,
                    });
                }
                tri.push(s as f32);
            }
        }
        Ok(DenseSim { n, tri })
    }

    /// Number of members in the underlying subset.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the store covers zero members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Similarity between local member indices `i` and `j`.
    #[inline]
    pub fn sim(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 1.0;
        }
        let (hi, lo) = if i > j { (i, j) } else { (j, i) };
        self.tri[hi * (hi - 1) / 2 + lo] as f64
    }

    /// Converts to a sparse store, dropping all similarities `< tau`
    /// (the τ-sparsification of Section 4.3).
    pub fn sparsify(&self, tau: f64) -> SparseSim {
        let mut adj: Vec<Vec<(u32, f32)>> = vec![Vec::new(); self.n];
        for i in 1..self.n {
            for j in 0..i {
                let s = self.tri[i * (i - 1) / 2 + j];
                if (s as f64) >= tau && s > 0.0 {
                    adj[i].push((j as u32, s));
                    adj[j].push((i as u32, s));
                }
            }
        }
        SparseSim { adj }
    }

    /// Number of stored (unordered) pairs with nonzero similarity.
    pub fn nonzero_pairs(&self) -> usize {
        self.tri.iter().filter(|&&s| s > 0.0).count()
    }
}

/// Per-member adjacency lists of similarities over one subset's members.
///
/// `adj[i]` holds `(j, SIM(q, mᵢ, mⱼ))` for every *other* member `j` whose
/// stored similarity is nonzero. The diagonal is implicit (1.0); absent pairs
/// have similarity 0 — exactly the semantics of a τ-sparsified instance.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseSim {
    adj: Vec<Vec<(u32, f32)>>,
}

impl SparseSim {
    /// Builds a sparse store over `n` members from unordered pairs
    /// `(i, j, sim)`. Pairs are inserted symmetrically; duplicate pairs keep
    /// the maximum similarity; self-pairs and zero similarities are ignored.
    pub fn from_pairs(
        subset_id: SubsetId,
        n: usize,
        pairs: impl IntoIterator<Item = (u32, u32, f64)>,
    ) -> Result<Self> {
        let mut adj: Vec<Vec<(u32, f32)>> = vec![Vec::new(); n];
        for (i, j, s) in pairs {
            if !(0.0..=1.0).contains(&s) || s.is_nan() {
                return Err(ModelError::InvalidSimilarity {
                    subset: subset_id,
                    value: s,
                });
            }
            if i == j || s == 0.0 {
                continue;
            }
            let (i, j) = (i as usize, j as usize);
            assert!(i < n && j < n, "pair index out of range");
            upsert_max(&mut adj[i], j as u32, s as f32);
            upsert_max(&mut adj[j], i as u32, s as f32);
        }
        for list in &mut adj {
            list.sort_unstable_by_key(|&(j, _)| j);
        }
        Ok(SparseSim { adj })
    }

    /// Number of members covered by the store.
    #[inline]
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the store covers zero members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Similarity between local member indices `i` and `j` (0 if not stored).
    pub fn sim(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 1.0;
        }
        self.adj[i]
            .binary_search_by_key(&(j as u32), |&(k, _)| k)
            .map(|pos| self.adj[i][pos].1 as f64)
            .unwrap_or(0.0)
    }

    /// Neighbors of member `i`: other members with nonzero stored similarity.
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[(u32, f32)] {
        &self.adj[i]
    }

    /// Number of stored (unordered) nonzero pairs.
    pub fn nonzero_pairs(&self) -> usize {
        self.adj.iter().map(|l| l.len()).sum::<usize>() / 2
    }
}

fn upsert_max(list: &mut Vec<(u32, f32)>, j: u32, s: f32) {
    if let Some(entry) = list.iter_mut().find(|(k, _)| *k == j) {
        if s > entry.1 {
            entry.1 = s;
        }
    } else {
        list.push((j, s));
    }
}

/// Per-subset similarity storage: dense all-pairs, sparse adjacency, or the
/// implicit all-ones store.
#[derive(Debug, Clone, PartialEq)]
pub enum ContextSim {
    /// All pairwise similarities materialized (PHOcus-NS).
    Dense(DenseSim),
    /// Only pairs above a threshold / produced by LSH (PHOcus).
    Sparse(SparseSim),
    /// Implicit `SIM ≡ 1` over `n` members, stored in O(1) memory. Used by
    /// the Greedy-NR baseline view and the Max-Coverage hardness gadget.
    Unit(usize),
}

impl ContextSim {
    /// Number of members covered by the store.
    pub fn len(&self) -> usize {
        match self {
            ContextSim::Dense(d) => d.len(),
            ContextSim::Sparse(s) => s.len(),
            ContextSim::Unit(n) => *n,
        }
    }

    /// Whether the store covers zero members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Similarity between local member indices `i` and `j`.
    #[inline]
    pub fn sim(&self, i: usize, j: usize) -> f64 {
        match self {
            ContextSim::Dense(d) => d.sim(i, j),
            ContextSim::Sparse(s) => s.sim(i, j),
            ContextSim::Unit(_) => 1.0,
        }
    }

    /// Calls `f(j, sim)` for every member `j ≠ i` with nonzero stored
    /// similarity to `i`. For dense stores this visits all other members
    /// (zero entries included — the evaluator relies on nonnegativity, not
    /// on skipping zeros); for sparse stores only stored neighbors.
    #[inline]
    pub fn for_neighbors(&self, i: usize, mut f: impl FnMut(usize, f64)) {
        match self {
            ContextSim::Dense(d) => {
                for j in 0..d.n {
                    if j != i {
                        f(j, d.sim(i, j));
                    }
                }
            }
            ContextSim::Sparse(s) => {
                for &(j, sim) in &s.adj[i] {
                    f(j as usize, sim as f64);
                }
            }
            ContextSim::Unit(n) => {
                for j in 0..*n {
                    if j != i {
                        f(j, 1.0);
                    }
                }
            }
        }
    }

    /// Number of stored (unordered) nonzero pairs — a measure of how much
    /// work each marginal-gain evaluation performs.
    pub fn nonzero_pairs(&self) -> usize {
        match self {
            ContextSim::Dense(d) => d.nonzero_pairs(),
            ContextSim::Sparse(s) => s.nonzero_pairs(),
            ContextSim::Unit(n) => n * n.saturating_sub(1) / 2,
        }
    }

    /// Applies τ-sparsification, producing a store with all similarities
    /// `< tau` dropped.
    pub fn sparsify(&self, tau: f64) -> ContextSim {
        match self {
            ContextSim::Unit(n) => {
                if tau <= 1.0 {
                    ContextSim::Unit(*n)
                } else {
                    ContextSim::Sparse(SparseSim {
                        adj: vec![Vec::new(); *n],
                    })
                }
            }
            ContextSim::Dense(d) => ContextSim::Sparse(d.sparsify(tau)),
            ContextSim::Sparse(s) => {
                let adj = s
                    .adj
                    .iter()
                    .map(|l| {
                        l.iter()
                            .copied()
                            .filter(|&(_, sim)| sim as f64 >= tau)
                            .collect()
                    })
                    .collect();
                ContextSim::Sparse(SparseSim { adj })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subset3() -> Subset {
        Subset {
            id: SubsetId(0),
            label: "t".into(),
            weight: 1.0,
            members: vec![PhotoId(0), PhotoId(1), PhotoId(2)],
            relevance: vec![0.4, 0.3, 0.3],
        }
    }

    #[test]
    fn dense_from_provider_is_symmetric() {
        let q = subset3();
        let prov =
            FnSimilarity(|_, a: PhotoId, b: PhotoId| 1.0 / (1.0 + (a.0 as f64 - b.0 as f64).abs()));
        let d = DenseSim::from_provider(&q, &prov).unwrap();
        assert_eq!(d.sim(0, 0), 1.0);
        assert!((d.sim(0, 1) - 0.5).abs() < 1e-6);
        assert_eq!(d.sim(0, 1), d.sim(1, 0));
        assert!((d.sim(0, 2) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn dense_rejects_out_of_range() {
        let q = subset3();
        let bad = FnSimilarity(|_, _, _| 1.5);
        assert!(matches!(
            DenseSim::from_provider(&q, &bad),
            Err(ModelError::InvalidSimilarity { .. })
        ));
    }

    #[test]
    fn sparsify_drops_below_tau() {
        let q = subset3();
        let prov = FnSimilarity(
            |_, a: PhotoId, b: PhotoId| {
                if a.0 + b.0 == 1 {
                    0.9
                } else {
                    0.2
                }
            },
        );
        let d = DenseSim::from_provider(&q, &prov).unwrap();
        let s = d.sparsify(0.5);
        assert!((s.sim(0, 1) - 0.9).abs() < 1e-6);
        assert_eq!(s.sim(0, 2), 0.0);
        assert_eq!(s.sim(1, 2), 0.0);
        assert_eq!(s.nonzero_pairs(), 1);
    }

    #[test]
    fn sparse_from_pairs_dedups_by_max() {
        let s = SparseSim::from_pairs(SubsetId(0), 3, vec![(0, 1, 0.3), (1, 0, 0.7), (0, 2, 0.0)])
            .unwrap();
        assert!((s.sim(0, 1) - 0.7).abs() < 1e-6);
        assert_eq!(s.sim(0, 2), 0.0);
        assert_eq!(s.nonzero_pairs(), 1);
    }

    #[test]
    fn neighbors_iteration_matches_sim() {
        let s = SparseSim::from_pairs(
            SubsetId(0),
            4,
            vec![(0, 1, 0.5), (0, 2, 0.25), (2, 3, 0.75)],
        )
        .unwrap();
        let cs = ContextSim::Sparse(s);
        let mut seen = Vec::new();
        cs.for_neighbors(0, |j, sim| seen.push((j, sim)));
        assert_eq!(seen, vec![(1, 0.5), (2, 0.25)]);
    }

    #[test]
    fn dense_neighbors_visits_all_others() {
        let q = subset3();
        let d = DenseSim::from_provider(&q, &UnitSimilarity).unwrap();
        let cs = ContextSim::Dense(d);
        let mut count = 0;
        cs.for_neighbors(1, |_, sim| {
            assert_eq!(sim, 1.0);
            count += 1;
        });
        assert_eq!(count, 2);
    }

    #[test]
    fn unit_similarity_is_one() {
        let q = subset3();
        assert_eq!(UnitSimilarity.similarity(&q, PhotoId(0), PhotoId(2)), 1.0);
    }

    #[test]
    fn context_sparsify_on_sparse_store() {
        let s = SparseSim::from_pairs(SubsetId(0), 3, vec![(0, 1, 0.9), (1, 2, 0.3)]).unwrap();
        let cs = ContextSim::Sparse(s).sparsify(0.5);
        assert_eq!(cs.sim(1, 2), 0.0);
        assert!((cs.sim(0, 1) - 0.9).abs() < 1e-6);
    }
}
