//! Benchmarks for the extension machinery: evaluator removal, swap local
//! search, streaming sieves, and the compression expansion.

use criterion::{criterion_group, criterion_main, Criterion};
use par_algo::{density_sieve, main_algorithm, swap_local_search, LocalSearchConfig};
use par_bench::{dataset, DatasetId, Scale};
use par_core::{Evaluator, PhotoId};
use phocus::{expand_with_variants, represent, ActionLadder, RepresentationConfig};

fn bench_remove(c: &mut Criterion) {
    let u = dataset(DatasetId::P1K, Scale::Scaled);
    let inst = represent(&u, u.total_cost() / 5, &RepresentationConfig::default()).unwrap();
    let mut base = Evaluator::new(&inst);
    for p in (0..inst.num_photos() as u32).step_by(3) {
        base.add(PhotoId(p));
    }
    c.bench_function("evaluator_remove_add_roundtrip", |b| {
        b.iter(|| {
            let mut ev = base.clone();
            let n = inst.num_photos() as u32;
            for p in (0..n).step_by(9) {
                ev.remove(PhotoId(p));
                ev.add(PhotoId((p + 1) % n));
            }
            std::hint::black_box(ev.score())
        })
    });
}

fn bench_local_search(c: &mut Criterion) {
    let u = dataset(DatasetId::P1K, Scale::Scaled);
    let inst = represent(&u, u.total_cost() / 8, &RepresentationConfig::default()).unwrap();
    let greedy = main_algorithm(&inst).best.selected;
    let mut group = c.benchmark_group("local_search");
    group.sample_size(10);
    group.bench_function("polish_greedy/P-1K", |b| {
        b.iter(|| {
            swap_local_search(
                std::hint::black_box(&inst),
                &greedy,
                &LocalSearchConfig {
                    max_swaps: 8,
                    ..Default::default()
                },
            )
        })
    });
    group.finish();
}

fn bench_streaming(c: &mut Criterion) {
    let u = dataset(DatasetId::P1K, Scale::Scaled);
    let inst = represent(&u, u.total_cost() / 5, &RepresentationConfig::default()).unwrap();
    let mut group = c.benchmark_group("streaming");
    group.sample_size(10);
    group.bench_function("density_sieve/6levels/P-1K", |b| {
        b.iter(|| density_sieve(std::hint::black_box(&inst), 6))
    });
    group.bench_function("offline_main_algorithm/P-1K", |b| {
        b.iter(|| main_algorithm(std::hint::black_box(&inst)))
    });
    group.finish();
}

fn bench_compression_expansion(c: &mut Criterion) {
    let u = dataset(DatasetId::P1K, Scale::Scaled);
    let ladder = ActionLadder::standard();
    c.bench_function("compression_expand/P-1K", |b| {
        b.iter(|| expand_with_variants(std::hint::black_box(&u), &ladder))
    });
}

criterion_group!(
    benches,
    bench_remove,
    bench_local_search,
    bench_streaming,
    bench_compression_expansion
);
criterion_main!(benches);
