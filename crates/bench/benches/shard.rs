//! Component-sharded solver benchmarks: the numbers behind `BENCH_shard.json`.
//!
//! The P-10K public slice under τ-sparsification decomposes into many
//! photo–query connected components (Thm 4.8 locality): a few hundred real
//! components plus a large singleton pool. The sharded CELF driver runs one
//! lazy stream per component, so an accept in one component never
//! invalidates the heaps of the others — the global solver's per-accept
//! epoch churn and its per-rule seed sweep disappear while the transcript
//! stays bit-identical.
//!
//! Both sides are measured at solver granularity on the same prepared
//! state: `global` is [`lazy_greedy`] exactly as `phocus` ran it before
//! sharding; `sharded` is [`ShardedSolver::solve`] on a solver prepared
//! once per instance, the way `main_algorithm_sharded` and the Figure 5
//! runners use it (the preparation — decomposition, `S₀` replay, and the
//! rule-independent seed sweep — is amortized over every solve on the
//! instance and timed as its own `prepare` row).
//!
//! Groups:
//!
//! * `shard_solver` — global vs sharded per rule on two instances under an
//!   installed *serial* `Parallelism` (single-core; the before/after rows
//!   of `BENCH_shard.json`): `t95` = τ=0.95, B = C(P)/5 (163 components)
//!   and `t92` = τ=0.92, B = C(P)/10 (493 components);
//! * `shard_scaling` — the sharded solver at 1/2/4 worker threads (the
//!   per-shard stream builds dispatch through `par-exec`), for the scaling
//!   rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use par_algo::{lazy_greedy, GreedyRule, ShardedSolver};
use par_bench::{dataset, DatasetId, Scale};
use par_core::Instance;
use par_exec::Parallelism;
use phocus::{represent, RepresentationConfig, Sparsification};

/// A τ-sparsified P-10K instance with budget `C(P)/budget_div`.
fn sparse_10k(tau: f64, budget_div: u64) -> Instance {
    let u = dataset(DatasetId::P10K, Scale::Scaled);
    let budget = u.total_cost() / budget_div;
    represent(
        &u,
        budget,
        &RepresentationConfig {
            sparsification: Sparsification::Threshold { tau },
            ..Default::default()
        },
    )
    .unwrap()
}

fn bench_shard_solver(c: &mut Criterion) {
    let prev = Parallelism::serial().install_global();
    let mut group = c.benchmark_group("shard_solver");
    group.sample_size(20);
    for (label, tau, budget_div) in [("t95", 0.95, 5), ("t92", 0.92, 10)] {
        let inst = sparse_10k(tau, budget_div);
        let solver = ShardedSolver::new(&inst);
        eprintln!(
            "shard_solver/{label}: {} photos, {} queries, {} components",
            inst.num_photos(),
            inst.num_subsets(),
            solver.decomposition().num_shards()
        );
        // Per-instance preprocessing, amortized over both Algorithm 1 rules
        // (and any warm-started re-solve): timed as its own row.
        group.bench_function(BenchmarkId::new("prepare", label), |b| {
            b.iter(|| std::hint::black_box(ShardedSolver::new(&inst).decomposition().num_shards()))
        });
        for (rule, name) in [
            (GreedyRule::CostBenefit, "cb"),
            (GreedyRule::UnitCost, "uc"),
        ] {
            group.bench_function(BenchmarkId::new("global", format!("{label}_{name}")), |b| {
                b.iter(|| std::hint::black_box(lazy_greedy(&inst, rule).score))
            });
            group.bench_function(
                BenchmarkId::new("sharded", format!("{label}_{name}")),
                |b| b.iter(|| std::hint::black_box(solver.solve(rule).score)),
            );
        }
    }
    group.finish();
    prev.install_global();
}

fn bench_shard_scaling(c: &mut Criterion) {
    let inst = sparse_10k(0.95, 5);
    let mut group = c.benchmark_group("shard_scaling");
    group.sample_size(20);
    let solver = ShardedSolver::new(&inst);
    for threads in [1usize, 2, 4] {
        let prev = Parallelism::with_threads(threads).install_global();
        group.bench_function(BenchmarkId::new("sharded", format!("t95_t{threads}")), |b| {
            b.iter(|| std::hint::black_box(solver.solve(GreedyRule::CostBenefit).score))
        });
        prev.install_global();
    }
    group.finish();
}

criterion_group!(shard_benches, bench_shard_solver, bench_shard_scaling);
criterion_main!(shard_benches);
