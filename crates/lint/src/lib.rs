//! # par-lint — `phocus-lint`, the workspace static-analysis engine
//!
//! PRs 1–4 established invariants by hand: bit-identical serial/parallel
//! solver transcripts, `f64::total_cmp` in every float comparator, a typed
//! error / no-panic discipline, and a layered crate DAG. This crate
//! machine-checks them, so the next refactor cannot silently reintroduce a
//! `partial_cmp().unwrap()` or an order-nondeterministic `HashMap`
//! iteration into a solver path and break the golden transcripts that the
//! Figure 5 / Table 1–2 reproductions depend on.
//!
//! The engine is a lightweight self-contained Rust [`lexer`] (the workspace
//! builds offline; no syn/proc-macro dependencies) plus token-sequence
//! [`rules`] walked over every non-vendor crate discovered from the
//! workspace manifest. Findings are typed [`diag::Diagnostic`]s with
//! `file:line:col` spans, suppressible per site or per file:
//!
//! ```text
//! // phocus-lint: allow(hash-iter) — keys are collected and sort-deduped below
//! // phocus-lint: allow-file(wall-clock) — the figure-suite timing harness
//! ```
//!
//! Rule families (full rationale in DESIGN.md §12):
//!
//! | rule           | protects                                             |
//! |----------------|------------------------------------------------------|
//! | `float-ord`    | total-order float comparisons (PR 4)                 |
//! | `hash-iter`    | hash-iteration-order independence (PR 1/3 goldens)   |
//! | `wall-clock`   | time-independent solver decisions                    |
//! | `crate-dag`    | the declared crate layering (DESIGN §3)              |
//! | `parallel-cfg` | the serial/parallel equivalence boundary (PR 1)      |
//! | `no-print`     | silent library code; output via CLI/reporters only   |
//! | `no-unsafe`    | `#![forbid(unsafe_code)]` everywhere but vendor      |
//! | `ci-gate`      | metadata-derived panic-freedom gate coverage (PR 4)  |
//! | `lint-meta`    | well-formed suppression pragmas                      |
//!
//! The `phocus-lint` binary exits 0 when clean, 1 on violations, 2 on
//! usage errors, 3 on I/O failures; `--json` emits a stable document and
//! `gate-crates` prints the panic-gate crate list that `ci.sh` consumes.

#![forbid(unsafe_code)]

pub mod context;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod manifest;
pub mod rules;

pub use context::{CrateCategory, FileContext, FileKind, FileSpec};
pub use diag::Diagnostic;
pub use engine::{gate_crates, run, LintError, Report};

/// Lints a single in-memory source file — the fixture-test entry point.
/// Runs every file-scoped rule with the given classification and returns
/// the surviving diagnostics.
pub fn lint_source(spec: FileSpec<'_>, src: &str) -> Vec<Diagnostic> {
    let ctx = FileContext::new(spec, src);
    rules::run_file_rules(&ctx)
}
