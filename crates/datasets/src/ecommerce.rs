//! The e-commerce dataset family (EC-Fashion / EC-Electronics /
//! EC-Home & Garden of Table 2), built by the paper's own recipe
//! (Section 5.2): business domains → query log → top-250 queries → result
//! sets from the search engine → subsets with retrieval-score relevance and
//! frequency weights.
//!
//! The private XYZ catalog is replaced by a templated synthetic catalog
//! (brand × color × product-noun × modifier titles) indexed by the real BM25
//! engine of `par-search`; everything downstream of the catalog is the same
//! pipeline the paper describes.

use crate::universe::{SubsetDef, Universe};
use crate::zipf::Zipf;
use par_embed::{ImageSpec, SpecEmbedder};
use par_search::SearchEngine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// The three business domains of the paper's user study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EcDomain {
    /// Smartphones, laptops, headphones, …
    Electronics,
    /// Shirts, shoes, dresses, …
    Fashion,
    /// Chairs, lamps, planters, …
    HomeGarden,
}

impl EcDomain {
    /// Dataset name as printed in Table 2.
    pub fn name(self) -> &'static str {
        match self {
            EcDomain::Electronics => "EC-Electronics",
            EcDomain::Fashion => "EC-Fashion",
            EcDomain::HomeGarden => "EC-Home & Garden",
        }
    }

    /// The photo count Table 2 reports for this domain.
    pub fn paper_photos(self) -> usize {
        match self {
            EcDomain::Fashion => 18_745,
            EcDomain::Electronics => 22_783,
            EcDomain::HomeGarden => 19_235,
        }
    }

    /// Product nouns of the domain.
    pub fn nouns(self) -> &'static [&'static str] {
        match self {
            EcDomain::Electronics => &[
                "smartphone",
                "laptop",
                "headphones",
                "monitor",
                "keyboard",
                "tablet",
                "camera",
                "router",
                "speaker",
                "smartwatch",
                "charger",
                "projector",
            ],
            EcDomain::Fashion => &[
                "shirt", "shoes", "dress", "jacket", "jeans", "sweater", "skirt", "boots",
                "sneakers", "coat", "scarf", "hat",
            ],
            EcDomain::HomeGarden => &[
                "chair", "lamp", "table", "sofa", "planter", "rug", "shelf", "curtain", "grill",
                "mattress", "mirror", "cushion",
            ],
        }
    }

    /// Brands of the domain.
    pub fn brands(self) -> &'static [&'static str] {
        match self {
            EcDomain::Electronics => &[
                "samsung", "apple", "sony", "lenovo", "asus", "logitech", "canon", "jbl",
            ],
            EcDomain::Fashion => &[
                "nike", "adidas", "zara", "levis", "gucci", "puma", "uniqlo", "gap",
            ],
            EcDomain::HomeGarden => &[
                "ikea", "ashley", "wayfair", "herman", "weber", "dyson", "philips", "casper",
            ],
        }
    }

    /// Colors shared across domains.
    pub fn colors(self) -> &'static [&'static str] {
        &[
            "black", "white", "red", "blue", "green", "silver", "gray", "brown",
        ]
    }

    /// Title modifiers of the domain.
    pub fn modifiers(self) -> &'static [&'static str] {
        match self {
            EcDomain::Electronics => &[
                "wireless",
                "portable",
                "gaming",
                "4k",
                "bluetooth",
                "compact",
                "pro",
                "ultra",
            ],
            EcDomain::Fashion => &[
                "slim",
                "casual",
                "sports",
                "buttoned",
                "vintage",
                "waterproof",
                "summer",
                "classic",
            ],
            EcDomain::HomeGarden => &[
                "ergonomic",
                "outdoor",
                "wooden",
                "foldable",
                "modern",
                "rustic",
                "adjustable",
                "compact",
            ],
        }
    }
}

/// Configuration for [`generate_ecommerce`].
#[derive(Debug, Clone)]
pub struct EcConfig {
    /// Business domain.
    pub domain: EcDomain,
    /// Catalog size (products generated; the universe keeps only products
    /// retrieved by a top query, as in the paper).
    pub catalog_size: usize,
    /// Number of top queries to keep (the paper uses 250 per domain).
    pub num_queries: usize,
    /// Query-log draws used to estimate query frequencies.
    pub query_log_size: usize,
    /// Result-list depth per query.
    pub results_per_query: usize,
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// RNG seed.
    pub seed: u64,
    /// Probability that a retrieved photo of the domain's first brand is
    /// policy-required (simulating legal-contract images).
    pub required_brand_fraction: f64,
    /// Modulate relevance by a no-reference image-quality assessment of the
    /// rendered photo (Example 5.1 computes R from "the quality of the
    /// image" and the retrieval score). Renders each kept photo once.
    pub quality_weighting: bool,
}

impl EcConfig {
    /// A scaled-down config (fast; keeps the paper's shape).
    pub fn small(domain: EcDomain, seed: u64) -> Self {
        EcConfig {
            domain,
            catalog_size: 1_200,
            num_queries: 40,
            query_log_size: 20_000,
            results_per_query: 40,
            embed_dim: 64,
            seed,
            required_brand_fraction: 0.0,
            quality_weighting: false,
        }
    }

    /// The paper-sized config: 250 queries, ~20K photos.
    pub fn paper(domain: EcDomain, seed: u64) -> Self {
        EcConfig {
            domain,
            catalog_size: domain.paper_photos() * 3 / 2,
            num_queries: 250,
            query_log_size: 400_000,
            results_per_query: domain.paper_photos() / 123,
            embed_dim: 64,
            seed,
            required_brand_fraction: 0.0,
            quality_weighting: false,
        }
    }
}

/// Generates an e-commerce universe via the query-log pipeline.
pub fn generate_ecommerce(cfg: &EcConfig) -> Universe {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let d = cfg.domain;
    let (nouns, brands, colors, mods) = (d.nouns(), d.brands(), d.colors(), d.modifiers());

    // 1. Catalog: templated product titles + image specs.
    let mut titles = Vec::with_capacity(cfg.catalog_size);
    let mut specs = Vec::with_capacity(cfg.catalog_size);
    let zipf_ok = |z: Result<Zipf, crate::DatasetError>| {
        z.unwrap_or_else(|e| unreachable!("fixed vocab and finite exponent: {e}"))
    };
    let noun_zipf = zipf_ok(Zipf::new(nouns.len(), 0.8));
    let brand_zipf = zipf_ok(Zipf::new(brands.len(), 0.8));
    for i in 0..cfg.catalog_size {
        let noun = noun_zipf.sample(&mut rng);
        let brand = brand_zipf.sample(&mut rng);
        let color = rng.gen_range(0..colors.len());
        let modifier = rng.gen_range(0..mods.len());
        titles.push(format!(
            "{} {} {} {}",
            brands[brand], colors[color], mods[modifier], nouns[noun]
        ));
        // Rendering category is the product noun; attributes encode the
        // visual factors (color, brand styling, modifier, random pose).
        specs.push(ImageSpec::new(
            noun as u32,
            [
                color as f32 / colors.len() as f32,
                brand as f32 / brands.len() as f32,
                modifier as f32 / mods.len() as f32,
                rng.gen(),
            ],
            cfg.seed ^ (i as u64).rotate_left(21),
        ));
    }

    // 2. Query log: template queries with Zipfian popularity.
    let mut query_pool = Vec::new();
    for &n in nouns {
        query_pool.push(n.to_string());
        for &c in colors {
            query_pool.push(format!("{c} {n}"));
        }
        for &b in brands {
            query_pool.push(format!("{b} {n}"));
        }
        for &m in mods {
            query_pool.push(format!("{m} {n}"));
        }
        for &b in brands {
            for &c in colors {
                query_pool.push(format!("{b} {c} {n}"));
            }
        }
    }
    // Shuffle so popularity is not tied to template order, then draw the log.
    for i in (1..query_pool.len()).rev() {
        let j = rng.gen_range(0..=i);
        query_pool.swap(i, j);
    }
    let qzipf = zipf_ok(Zipf::new(query_pool.len(), 1.05));
    let mut freq: HashMap<usize, u64> = HashMap::new();
    for _ in 0..cfg.query_log_size {
        *freq.entry(qzipf.sample(&mut rng)).or_insert(0) += 1;
    }
    let mut by_freq: Vec<(usize, u64)> = freq.into_iter().collect();
    by_freq.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    // 3. Run the top queries through the engine; keep those with results.
    let engine = SearchEngine::build(&titles);
    let mut kept_queries: Vec<(String, u64, Vec<par_search::Hit>)> = Vec::new();
    for &(qi, count) in &by_freq {
        if kept_queries.len() == cfg.num_queries {
            break;
        }
        let hits = engine.search(&query_pool[qi], cfg.results_per_query);
        if hits.len() >= 2 {
            kept_queries.push((query_pool[qi].clone(), count, hits));
        }
    }

    // 4. The universe keeps only retrieved products; remap ids.
    let mut keep: Vec<bool> = vec![false; cfg.catalog_size];
    for (_, _, hits) in &kept_queries {
        for h in hits {
            keep[h.doc as usize] = true;
        }
    }
    let mut remap: Vec<u32> = vec![u32::MAX; cfg.catalog_size];
    let mut names = Vec::new();
    let mut costs = Vec::new();
    let mut embeddings = Vec::new();
    let mut embedder = SpecEmbedder::new(cfg.embed_dim, cfg.seed ^ 0xEC0);
    // A landing page's result set holds many *distinct* products of one
    // kind — moderately similar, not near-duplicates. Strong attribute and
    // noise components push intra-query cosines into the ~[0.3, 0.8] band.
    embedder.attr_scale = 0.9;
    embedder.noise_scale = 0.35;
    let mut proto_cache: HashMap<u32, Vec<f32>> = HashMap::new();
    for i in 0..cfg.catalog_size {
        if !keep[i] {
            continue;
        }
        remap[i] = names.len() as u32; // phocus-lint: allow(cast-bounds) — kept ≤ catalog_size, a u32-id domain
        names.push(titles[i].clone());
        costs.push(lognormal_cost(&mut rng));
        embeddings.push(embedder.embed_cached(&specs[i], &mut proto_cache));
    }

    // 5. Image-quality factors (Example 5.1: R combines the retrieval score
    // with the photo's assessed quality).
    let quality: Vec<f64> = if cfg.quality_weighting {
        (0..cfg.catalog_size)
            .map(|i| {
                if !keep[i] {
                    return 1.0;
                }
                let img = par_embed::Image::render(&specs[i], 24, 24);
                0.5 + 0.5 * par_embed::assess(&img).overall
            })
            .collect()
    } else {
        vec![1.0; cfg.catalog_size]
    };

    // 6. Subsets: one per kept query; relevance = BM25 score × quality,
    // weight = query frequency.
    let subsets = kept_queries
        .iter()
        .map(|(label, count, hits)| SubsetDef {
            label: label.clone(),
            weight: *count as f64,
            members: hits.iter().map(|h| remap[h.doc as usize]).collect(),
            relevance: hits
                .iter()
                .map(|h| h.score * quality[h.doc as usize])
                .collect(),
        })
        .collect();

    // 7. Legal-contract photos: images of the domain's flagship brand.
    let mut required = Vec::new();
    if cfg.required_brand_fraction > 0.0 {
        let flagship = brands[0];
        for (idx, name) in names.iter().enumerate() {
            if name.starts_with(flagship) && rng.gen::<f64>() < cfg.required_brand_fraction {
                required.push(idx as u32);
            }
        }
    }

    let universe = Universe {
        name: d.name().to_string(),
        names,
        costs,
        embeddings,
        exif: None,
        subsets,
        required,
    };
    debug_assert!(
        universe.validate().is_ok(),
        "generated universe is valid by construction"
    );
    universe
}

fn lognormal_cost<R: Rng>(rng: &mut R) -> u64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let bytes = (11.1 + 0.45 * z).exp(); // median ≈ 66 KB (product shots)
    // phocus-lint: allow(cast-bounds) — float→int `as` saturates; the clamp bounds the result
    (bytes as u64).clamp(10_000, 500_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_produces_query_subsets() {
        let u = generate_ecommerce(&EcConfig::small(EcDomain::Fashion, 1));
        assert_eq!(u.num_subsets(), 40);
        assert!(u.num_photos() > 100, "photos {}", u.num_photos());
        // Every photo appears in at least one subset (universe = retrieved).
        let mut seen = vec![false; u.num_photos()];
        for s in &u.subsets {
            for &m in &s.members {
                seen[m as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn weights_are_query_frequencies() {
        let u = generate_ecommerce(&EcConfig::small(EcDomain::Electronics, 2));
        // Frequencies are positive and heavy-tailed.
        let mut w: Vec<f64> = u.subsets.iter().map(|s| s.weight).collect();
        w.sort_by(|a, b| b.total_cmp(a));
        assert!(w[0] >= 2.0 * w[w.len() - 1]);
        assert!(w.iter().all(|&x| x >= 1.0));
    }

    #[test]
    fn relevance_comes_from_retrieval_scores() {
        let u = generate_ecommerce(&EcConfig::small(EcDomain::HomeGarden, 3));
        for s in &u.subsets {
            // BM25 scores are positive and sorted descending per result list.
            assert!(s.relevance.iter().all(|&r| r > 0.0));
            for w in s.relevance.windows(2) {
                assert!(w[0] >= w[1] - 1e-9);
            }
        }
    }

    #[test]
    fn domains_have_disjoint_vocabulary_subsets() {
        let f = generate_ecommerce(&EcConfig::small(EcDomain::Fashion, 4));
        let e = generate_ecommerce(&EcConfig::small(EcDomain::Electronics, 4));
        // Query labels should not overlap across domains (different nouns).
        let fl: std::collections::HashSet<&String> = f.subsets.iter().map(|s| &s.label).collect();
        assert!(e.subsets.iter().all(|s| !fl.contains(&s.label)));
    }

    #[test]
    fn required_brand_marks_photos() {
        let mut cfg = EcConfig::small(EcDomain::Fashion, 5);
        cfg.required_brand_fraction = 0.5;
        let u = generate_ecommerce(&cfg);
        assert!(!u.required.is_empty());
        let flagship = EcDomain::Fashion.brands()[0];
        for &r in &u.required {
            assert!(u.names[r as usize].starts_with(flagship));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_ecommerce(&EcConfig::small(EcDomain::Fashion, 6));
        let b = generate_ecommerce(&EcConfig::small(EcDomain::Fashion, 6));
        assert_eq!(a.names, b.names);
        assert_eq!(a.costs, b.costs);
        assert_eq!(a.subsets.len(), b.subsets.len());
    }
}

#[cfg(test)]
mod quality_tests {
    use super::*;

    #[test]
    fn quality_weighting_modulates_relevance() {
        let mut with = EcConfig::small(EcDomain::Fashion, 12);
        with.quality_weighting = true;
        let mut without = EcConfig::small(EcDomain::Fashion, 12);
        without.quality_weighting = false;
        let a = generate_ecommerce(&with);
        let b = generate_ecommerce(&without);
        // Same structure, different relevance profile.
        assert_eq!(a.num_photos(), b.num_photos());
        assert_eq!(a.subsets.len(), b.subsets.len());
        let changed = a.subsets.iter().zip(&b.subsets).any(|(x, y)| {
            x.relevance
                .iter()
                .zip(&y.relevance)
                .any(|(ra, rb)| (ra - rb).abs() > 1e-9)
        });
        assert!(changed, "quality weighting had no effect");
        // Still a valid universe.
        assert!(a.validate().is_ok());
    }
}
