//! The [`Subset`] record: a pre-defined subset `q ∈ Q` with its importance
//! weight `W(q)` and normalized relevance scores `R(q, ·)`.

use crate::{PhotoId, SubsetId};
use std::sync::Arc;

/// A pre-defined subset of photos (a landing page, album, label group, or
/// query result set), together with its importance weight and the relevance
/// score of each member photo.
///
/// Invariants enforced by [`InstanceBuilder`](crate::InstanceBuilder):
///
/// * `members` is non-empty and free of duplicates;
/// * `relevance` is parallel to `members`, strictly positive, and normalized
///   so that `Σ relevance = 1` (the paper's `Σ_{p∈q} R(q,p) = 1`);
/// * `weight` is strictly positive and finite.
#[derive(Debug, Clone, PartialEq)]
pub struct Subset {
    /// Dense identifier of this subset within its instance.
    pub id: SubsetId,
    /// Human-readable label (query text, album title, product-category name).
    /// Shared (`Arc<str>`) so per-epoch subset compaction in
    /// [`crate::delta`] aliases surviving labels instead of copying them.
    pub label: Arc<str>,
    /// Importance weight `W(q)`.
    pub weight: f64,
    /// Member photos, in the order their relevance scores are stored.
    pub members: Vec<PhotoId>,
    /// Normalized relevance `R(q, p)` parallel to `members`; sums to 1.
    /// Shared (`Arc<[f64]>`) because relevance bits survive epoch deltas and
    /// component splits verbatim — intact subsets alias the same storage
    /// across [`crate::delta`] rebuilds instead of copying it.
    pub relevance: Arc<[f64]>,
}

impl Subset {
    /// Number of member photos `|q|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the subset has no members (never true for validated instances).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Local index of `photo` within this subset, if it is a member.
    ///
    /// This is a linear scan; the [`Instance`](crate::Instance) maintains a
    /// reverse index ([`Membership`](crate::Membership)) for hot paths.
    pub fn local_index(&self, photo: PhotoId) -> Option<usize> {
        self.members.iter().position(|&m| m == photo)
    }

    /// Relevance score of `photo` in this subset, or 0 if not a member
    /// (matching the paper's convention that `R(q,p) = 0` for `p ∉ q`).
    pub fn relevance_of(&self, photo: PhotoId) -> f64 {
        self.local_index(photo)
            .map(|i| self.relevance[i])
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Subset {
        Subset {
            id: SubsetId(0),
            label: "Bikes".into(),
            weight: 9.0,
            members: vec![PhotoId(0), PhotoId(1), PhotoId(2)],
            relevance: vec![0.5, 0.3, 0.2].into(),
        }
    }

    #[test]
    fn local_index_finds_members() {
        let q = sample();
        assert_eq!(q.local_index(PhotoId(1)), Some(1));
        assert_eq!(q.local_index(PhotoId(9)), None);
    }

    #[test]
    fn relevance_of_nonmember_is_zero() {
        let q = sample();
        assert_eq!(q.relevance_of(PhotoId(2)), 0.2);
        assert_eq!(q.relevance_of(PhotoId(7)), 0.0);
    }

    #[test]
    fn len_reports_member_count() {
        assert_eq!(sample().len(), 3);
        assert!(!sample().is_empty());
    }
}
