//! Theorem 4.8: the data-dependent error bound for τ-sparsification.
//!
//! Let `O` be the optimum of the original instance and `O_τ` the optimum of
//! the τ-sparsified instance. If some feasible `S` covers, in the sparsified
//! GFL graph, right nodes of total weight `α · W_R`, then
//!
//! ```text
//! F(O_τ) ≥ OPT / (1 + 1/α)
//! ```
//!
//! The certificate set `S` is found by running Budgeted Maximum Coverage
//! over the sparsified graph (self-edges always survive sparsification since
//! their weight is 1). Larger `τ` sparsifies more but shrinks `α`; the bound
//! quantifies that trade-off *for the given data*, which in practice is far
//! tighter than any a-priori worst case.

use crate::bmc::budgeted_max_coverage;
use crate::gfl::GflInstance;
use par_core::Instance;

/// The Theorem 4.8 certificate for a concrete instance and threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsificationBound {
    /// The threshold τ the bound certifies.
    pub tau: f64,
    /// Fraction `α` of the total right-node weight covered by the
    /// Budgeted-Max-Coverage certificate within the budget.
    pub alpha: f64,
    /// The guaranteed factor `1 / (1 + 1/α) = α / (1 + α)`: the sparsified
    /// optimum retains at least this fraction of the original optimum.
    pub factor: f64,
    /// Covered right-node weight of the certificate.
    pub covered_weight: f64,
    /// Total right-node weight `W_R`.
    pub total_weight: f64,
}

/// Computes the Theorem 4.8 bound for sparsifying `inst` at threshold `tau`.
///
/// Note the certificate uses a greedy (not optimal) coverage solution, so the
/// reported `α` — and hence the factor — is itself a safe *under*-estimate.
pub fn sparsification_bound(inst: &Instance, tau: f64) -> SparsificationBound {
    let gfl = GflInstance::from_instance(inst).sparsify(tau);
    let total_weight = gfl.total_right_weight();
    let coverage = budgeted_max_coverage(&gfl.to_coverage());
    let alpha = if total_weight > 0.0 {
        coverage.covered_weight / total_weight
    } else {
        0.0
    };
    let factor = if alpha > 0.0 {
        alpha / (1.0 + alpha)
    } else {
        0.0
    };
    SparsificationBound {
        tau,
        alpha,
        factor,
        covered_weight: coverage.covered_weight,
        total_weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use par_algo::{brute_force, BruteForceConfig};
    use par_core::fixtures::{figure1_instance, random_instance, RandomInstanceConfig, MB};

    #[test]
    fn figure1_bound_is_meaningful() {
        let inst = figure1_instance(3 * MB);
        let b = sparsification_bound(&inst, 0.6);
        assert!(b.alpha > 0.0 && b.alpha <= 1.0);
        assert!(b.factor > 0.0 && b.factor < 1.0);
        assert!((b.total_weight - 14.0).abs() < 1e-9);
    }

    #[test]
    fn bound_factor_increases_with_alpha() {
        // A generous budget covers more weight → larger α → better factor.
        let small = sparsification_bound(&figure1_instance(2 * MB), 0.6);
        let large = sparsification_bound(&figure1_instance(8 * MB), 0.6);
        assert!(large.alpha >= small.alpha - 1e-12);
        assert!(large.factor >= small.factor - 1e-12);
    }

    #[test]
    fn theorem_holds_against_brute_force() {
        // F(O_τ) ≥ factor · OPT on instances small enough to solve exactly.
        let cfg = RandomInstanceConfig {
            photos: 12,
            subsets: 5,
            budget_fraction: 0.4,
            ..Default::default()
        };
        for seed in 0..6 {
            let inst = random_instance(seed, &cfg);
            for tau in [0.3, 0.5, 0.8] {
                let bound = sparsification_bound(&inst, tau);
                let opt = brute_force(&inst, &BruteForceConfig::default())
                    .unwrap()
                    .score;
                let sparse = inst.sparsify(tau);
                let opt_tau = brute_force(&sparse, &BruteForceConfig::default())
                    .unwrap()
                    .score;
                assert!(
                    opt_tau + 1e-9 >= bound.factor * opt,
                    "seed {seed}, τ={tau}: OPT_τ={opt_tau} < {} · OPT={opt}",
                    bound.factor
                );
            }
        }
    }

    #[test]
    fn tau_zero_keeps_everything() {
        let inst = figure1_instance(4 * MB);
        // With τ=0 no edges are dropped, so the coverage certificate equals
        // the plain BMC on the full graph and α is maximal for this budget.
        let b0 = sparsification_bound(&inst, 0.0);
        let b9 = sparsification_bound(&inst, 0.9);
        assert!(b0.alpha >= b9.alpha - 1e-12);
    }
}
