//! Fixture: arena discipline — the hot kernel writes into a caller-provided
//! buffer, and the allocating setup lives in a cold constructor.

// phocus-lint: hot-kernel — fixture: per-pop scoring loop
pub fn score_into(xs: &[f64], out: &mut Vec<f64>) {
    out.clear();
    for x in xs {
        out.push(x * 2.0);
    }
}

pub fn make_arena(n: usize) -> Vec<f64> {
    vec![0.0; n]
}
