//! Fixture: allocations on the hot path — one directly inside an annotated
//! kernel, one reached transitively through a crate-local callee.

// phocus-lint: hot-kernel — fixture: per-pop scoring loop
pub fn score(xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|x| x * 2.0).collect()
}

// phocus-lint: hot-kernel — fixture: dispatch loop
pub fn dispatch(xs: &[f64]) -> f64 {
    helper(xs)
}

fn helper(xs: &[f64]) -> f64 {
    let copy = xs.to_vec();
    let mut total = 0.0;
    for x in copy {
        total += x;
    }
    total
}
