//! The Open-Images-like public dataset family (P-1K … P-100K of Table 2).
//!
//! The real pipeline of Section 5.2: photos carry labels with confidence
//! scores; each label that appears defines a pre-defined subset whose members
//! are the photos carrying it; the confidence is the relevance score and the
//! label's frequency in the full corpus is the subset's importance weight.
//! This generator reproduces that pipeline over synthetic photos:
//!
//! * a Zipf-distributed label vocabulary (the real corpus has 6000+ labels
//!   with heavy-tailed frequencies);
//! * each photo gets a primary label (drawn Zipf — it is also the photo's
//!   rendering category) and a few secondary labels, each with a confidence
//!   in `(0.5, 1]`, primaries highest;
//! * photo costs follow a lognormal around ~45 KB (web-thumbnail scale, so
//!   that the paper's MB-range budgets span the same fraction of the
//!   archive);
//! * embeddings come from the ResNet-simulating [`SpecEmbedder`]
//!   ([`Fidelity::Fast`]) or the full pixels→features→projection pipeline
//!   ([`Fidelity::Rendered`], practical up to a few thousand photos).

use crate::universe::{SubsetDef, Universe};
use crate::zipf::Zipf;
use par_embed::{features, FeatureEmbedder, Image, ImageSpec, SpecEmbedder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// How photo embeddings (and costs) are produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Closed-form spec embeddings and lognormal costs — linear time,
    /// suitable for 100K-photo scalability runs.
    Fast,
    /// Render pixels, extract features, project; costs from the simulated
    /// JPEG model. Exercises the whole substrate; use for ≤ ~5K photos.
    Rendered,
}

/// The paper's five public dataset scales (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublicScale {
    /// 1 000 photos, ~193 subsets.
    P1K,
    /// 5 000 photos, ~1 409 subsets.
    P5K,
    /// 10 000 photos, ~3 955 subsets.
    P10K,
    /// 50 000 photos, ~14 326 subsets.
    P50K,
    /// 100 000 photos, ~33 721 subsets.
    P100K,
}

impl PublicScale {
    /// Dataset name as printed in Table 2.
    pub fn name(self) -> &'static str {
        match self {
            PublicScale::P1K => "P-1K",
            PublicScale::P5K => "P-5K",
            PublicScale::P10K => "P-10K",
            PublicScale::P50K => "P-50K",
            PublicScale::P100K => "P-100K",
        }
    }

    /// Number of photos.
    pub fn photos(self) -> usize {
        match self {
            PublicScale::P1K => 1_000,
            PublicScale::P5K => 5_000,
            PublicScale::P10K => 10_000,
            PublicScale::P50K => 50_000,
            PublicScale::P100K => 100_000,
        }
    }

    /// The subset count the paper reports for this scale (our generator
    /// lands close; EXPERIMENTS.md records paper-vs-measured).
    pub fn paper_subsets(self) -> usize {
        match self {
            PublicScale::P1K => 193,
            PublicScale::P5K => 1_409,
            PublicScale::P10K => 3_955,
            PublicScale::P50K => 14_326,
            PublicScale::P100K => 33_721,
        }
    }

    /// A default config for this scale.
    pub fn config(self, seed: u64) -> OpenImagesConfig {
        OpenImagesConfig {
            name: self.name().to_string(),
            photos: self.photos(),
            target_subsets: self.paper_subsets(),
            seed,
            fidelity: Fidelity::Fast,
            ..OpenImagesConfig::default()
        }
    }
}

/// Configuration for [`generate_openimages`].
#[derive(Debug, Clone)]
pub struct OpenImagesConfig {
    /// Dataset name.
    pub name: String,
    /// Number of photos.
    pub photos: usize,
    /// Approximate number of distinct labels (hence subsets) to produce.
    pub target_subsets: usize,
    /// Zipf exponent of label popularity.
    pub zipf_s: f64,
    /// Mean secondary labels per photo (primary label always present).
    pub extra_labels: f64,
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// RNG seed.
    pub seed: u64,
    /// Embedding/cost fidelity.
    pub fidelity: Fidelity,
    /// Fraction of photos marked policy-required (`S₀`).
    pub required_fraction: f64,
    /// Drop labels observed on fewer than this many photos.
    pub min_subset_size: usize,
}

impl Default for OpenImagesConfig {
    fn default() -> Self {
        OpenImagesConfig {
            name: "P".into(),
            photos: 1_000,
            target_subsets: 200,
            zipf_s: 1.0,
            extra_labels: 1.5,
            embed_dim: 64,
            seed: 0,
            fidelity: Fidelity::Fast,
            required_fraction: 0.0,
            min_subset_size: 1,
        }
    }
}

/// Generates an Open-Images-like universe.
pub fn generate_openimages(cfg: &OpenImagesConfig) -> Universe {
    assert!(cfg.photos > 0 && cfg.target_subsets > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // The observed distinct-label count is below the vocabulary size: with
    // D zipf draws over a vocabulary of V, roughly V·f(D/V) labels are seen,
    // where f(r) ≈ 1 − e^{−r/c} (c ≈ 3.9 fitted empirically for s = 1).
    // Solve V·f(D/V) = target by fixed point so every Table 2 scale lands
    // near its paper subset count.
    let draws = cfg.photos as f64 * (1.0 + cfg.extra_labels);
    let seen_fraction = |r: f64| 1.0 - (-r / 3.9).exp();
    let mut vocab_f = cfg.target_subsets as f64;
    for _ in 0..30 {
        vocab_f = cfg.target_subsets as f64 / seen_fraction(draws / vocab_f).max(0.05);
    }
    let vocab = vocab_f.ceil() as usize + 8;
    let zipf = Zipf::new(vocab, cfg.zipf_s)
        .unwrap_or_else(|e| unreachable!("vocab ≥ 9 and asserted finite exponent: {e}"));

    let mut spec_embedder = SpecEmbedder::new(cfg.embed_dim, cfg.seed ^ 0xE5EED);
    // Spread intra-label similarities across ~[0.4, 0.95] (real photo
    // corpora are nowhere near duplicate-only), so τ-sparsification has a
    // real knee and coverage does not trivially saturate.
    spec_embedder.attr_scale = 0.7;
    spec_embedder.noise_scale = 0.3;
    let feature_embedder = match cfg.fidelity {
        Fidelity::Rendered => Some(FeatureEmbedder::new(
            features::COLOR_BINS + features::GRID * features::GRID * features::ORIENT_BINS,
            cfg.embed_dim,
            cfg.seed ^ 0xFEA7,
        )),
        Fidelity::Fast => None,
    };
    let mut proto_cache: HashMap<u32, Vec<f32>> = HashMap::new();

    let mut names = Vec::with_capacity(cfg.photos);
    let mut costs = Vec::with_capacity(cfg.photos);
    let mut embeddings = Vec::with_capacity(cfg.photos);
    // label → (members, confidences)
    let mut label_members: HashMap<u32, (Vec<u32>, Vec<f64>)> = HashMap::new();
    let mut label_freq: HashMap<u32, u64> = HashMap::new();

    for i in 0..cfg.photos {
        let primary = zipf.sample(&mut rng) as u32;
        let attributes = [rng.gen(), rng.gen(), rng.gen(), rng.gen()];
        let spec = ImageSpec::new(primary, attributes, cfg.seed ^ (i as u64) << 1);

        let (embedding, cost) = match (&feature_embedder, cfg.fidelity) {
            (Some(fe), Fidelity::Rendered) => {
                let img = Image::render(&spec, 32, 32);
                let emb = fe.embed(&features::full_features(&img));
                (emb, img.simulated_jpeg_bytes())
            }
            _ => {
                let emb = spec_embedder.embed_cached(&spec, &mut proto_cache);
                (emb, lognormal_cost(&mut rng))
            }
        };
        names.push(format!("{}/img_{i:06}.jpg", cfg.name));
        costs.push(cost);
        embeddings.push(embedding);

        // Primary label with high confidence.
        let conf = 0.85 + 0.15 * rng.gen::<f64>();
        let entry = label_members.entry(primary).or_default();
        entry.0.push(i as u32);
        entry.1.push(conf);
        *label_freq.entry(primary).or_insert(0) += 1;

        // Secondary labels (Poisson-ish via geometric trials).
        let extra = sample_count(&mut rng, cfg.extra_labels);
        let mut seen = vec![primary];
        for _ in 0..extra {
            let l = zipf.sample(&mut rng) as u32;
            if seen.contains(&l) {
                continue;
            }
            seen.push(l);
            let conf = 0.5 + 0.35 * rng.gen::<f64>();
            let entry = label_members.entry(l).or_default();
            entry.0.push(i as u32);
            entry.1.push(conf);
            *label_freq.entry(l).or_insert(0) += 1;
        }
    }

    // One subset per observed label, weighted by corpus frequency.
    let mut labels: Vec<u32> = label_members.keys().copied().collect();
    labels.sort_unstable();
    let mut subsets = Vec::with_capacity(labels.len());
    for l in labels {
        let Some((members, relevance)) = label_members.remove(&l) else {
            unreachable!("label {l} came from label_members' own key set");
        };
        if members.len() < cfg.min_subset_size {
            continue;
        }
        subsets.push(SubsetDef {
            label: format!("label-{l:04}"),
            weight: label_freq[&l] as f64,
            members,
            relevance,
        });
    }

    // Policy-required photos.
    let mut required = Vec::new();
    if cfg.required_fraction > 0.0 {
        for i in 0..cfg.photos as u32 {
            if rng.gen::<f64>() < cfg.required_fraction {
                required.push(i);
            }
        }
    }

    let universe = Universe {
        name: cfg.name.clone(),
        names,
        costs,
        embeddings,
        exif: None,
        subsets,
        required,
    };
    debug_assert!(
        universe.validate().is_ok(),
        "generated universe is valid by construction"
    );
    universe
}

/// Lognormal photo cost around ~45 KB, clamped to `[8 KB, 400 KB]`.
/// Shared with the fleet generator in [`crate::fleet`].
pub(crate) fn lognormal_cost<R: Rng>(rng: &mut R) -> u64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let bytes = (10.7 + 0.5 * z).exp(); // median e^10.7 ≈ 44 KB
    // phocus-lint: allow(cast-bounds) — float→int `as` saturates; the clamp bounds the result
    (bytes as u64).clamp(8_000, 400_000)
}

/// Draws a small nonnegative count with the given mean (geometric-like).
/// Shared with the fleet generator in [`crate::fleet`].
pub(crate) fn sample_count<R: Rng>(rng: &mut R, mean: f64) -> usize {
    let p = mean / (1.0 + mean);
    let mut k = 0;
    while k < 7 && rng.gen::<f64>() < p {
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p1k_has_roughly_paper_shape() {
        let cfg = PublicScale::P1K.config(42);
        let u = generate_openimages(&cfg);
        assert_eq!(u.num_photos(), 1_000);
        // Within ±40% of the paper's 193 subsets.
        let m = u.num_subsets();
        assert!((115..=271).contains(&m), "subsets {m}");
        // Mean cost near 50 KB.
        assert!(
            (20_000.0..120_000.0).contains(&u.mean_cost()),
            "{}",
            u.mean_cost()
        );
    }

    #[test]
    fn weights_follow_label_frequency() {
        let u = generate_openimages(&PublicScale::P1K.config(1));
        // The heaviest subset should be much larger than the median.
        let mut weights: Vec<f64> = u.subsets.iter().map(|s| s.weight).collect();
        weights.sort_by(|a, b| b.total_cmp(a));
        assert!(weights[0] > 4.0 * weights[weights.len() / 2]);
        // Weight equals member count (frequency) for this generator.
        for s in &u.subsets {
            assert_eq!(s.weight as usize, s.members.len());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_openimages(&PublicScale::P1K.config(7));
        let b = generate_openimages(&PublicScale::P1K.config(7));
        assert_eq!(a.costs, b.costs);
        assert_eq!(a.subsets.len(), b.subsets.len());
        assert_eq!(a.subsets[0].members, b.subsets[0].members);
    }

    #[test]
    fn rendered_fidelity_works_on_small_corpus() {
        let cfg = OpenImagesConfig {
            name: "P-tiny".into(),
            photos: 40,
            target_subsets: 12,
            fidelity: Fidelity::Rendered,
            seed: 3,
            ..Default::default()
        };
        let u = generate_openimages(&cfg);
        assert_eq!(u.num_photos(), 40);
        // Rendered costs come from the JPEG model (≥ base 4 KB).
        assert!(u.costs.iter().all(|&c| c >= 4_000));
        assert!(u.embeddings.iter().all(|e| e.dim() == cfg.embed_dim));
    }

    #[test]
    fn required_fraction_marks_photos() {
        let cfg = OpenImagesConfig {
            photos: 500,
            required_fraction: 0.05,
            seed: 9,
            ..Default::default()
        };
        let u = generate_openimages(&cfg);
        let frac = u.required.len() as f64 / 500.0;
        assert!((0.01..0.12).contains(&frac), "required fraction {frac}");
    }

    #[test]
    fn confidences_are_valid_relevance() {
        let u = generate_openimages(&PublicScale::P1K.config(5));
        for s in &u.subsets {
            for &r in &s.relevance {
                assert!((0.5..=1.0).contains(&r), "confidence {r}");
            }
        }
    }
}
