//! Fixture: a suppressed `unsafe` site with documented invariants.

pub fn peek(p: *const u32) -> u32 {
    unsafe { *p } // phocus-lint: allow(no-unsafe) — fixture: audited shim with documented invariants
}
