//! Property tests for the GFL formulation: the bipartite objective equals
//! the PAR objective on arbitrary instances and arbitrary selections, and
//! sparsification commutes with the conversion.

use par_core::fixtures::{random_instance, RandomInstanceConfig, SplitMix64};
use par_core::{exact_score, PhotoId};
use par_sparse::GflInstance;
use proptest::prelude::*;

fn instance_strategy() -> impl Strategy<Value = (par_core::Instance, u64)> {
    (any::<u64>(), 8usize..40, 3usize..10).prop_map(|(seed, photos, subsets)| {
        let cfg = RandomInstanceConfig {
            photos,
            subsets,
            subset_size: (1, photos.min(7)),
            cost_range: (10, 300),
            budget_fraction: 0.5,
            required_prob: 0.0,
        };
        (random_instance(seed, &cfg), seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gfl_objective_equals_par_objective((inst, seed) in instance_strategy()) {
        let gfl = GflInstance::from_instance(&inst);
        let mut rng = SplitMix64::new(seed ^ 0x6F1);
        let set: Vec<PhotoId> = (0..inst.num_photos() as u32)
            .map(PhotoId)
            .filter(|_| rng.next_f64() < 0.4)
            .collect();
        let g = exact_score(&inst, &set);
        let f = gfl.score(&set);
        prop_assert!((g - f).abs() < 1e-6, "G={g} F={f}");
    }

    #[test]
    fn sparsify_commutes_with_gfl((inst, seed) in instance_strategy()) {
        // GFL(sparsify(inst)) and sparsify(GFL(inst)) score identically.
        let tau = 0.5;
        let via_instance = GflInstance::from_instance(&inst.sparsify(tau));
        let via_graph = GflInstance::from_instance(&inst).sparsify(tau);
        let mut rng = SplitMix64::new(seed ^ 0x6F2);
        let set: Vec<PhotoId> = (0..inst.num_photos() as u32)
            .map(PhotoId)
            .filter(|_| rng.next_f64() < 0.4)
            .collect();
        let a = via_instance.score(&set);
        let b = via_graph.score(&set);
        prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn total_right_weight_is_weight_sum((inst, _seed) in instance_strategy()) {
        let gfl = GflInstance::from_instance(&inst);
        prop_assert!((gfl.total_right_weight() - inst.max_score()).abs() < 1e-9);
        // Full selection attains the total weight.
        let all: Vec<PhotoId> = (0..inst.num_photos() as u32).map(PhotoId).collect();
        prop_assert!((gfl.score(&all) - gfl.total_right_weight()).abs() < 1e-6);
    }
}
