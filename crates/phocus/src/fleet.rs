//! The multi-tenant fleet engine: many PAR instances, one set of arenas.
//!
//! A photo platform does not solve one archival instance — it solves one per
//! user. Library sizes are heavy-tailed (most users hold a few dozen photos,
//! a few hold thousands), so a naive loop that allocates a fresh evaluator
//! and fresh solver state per tenant spends a large share of its time in the
//! allocator, and a naive front-to-back schedule leaves the largest library
//! straggling at the end of the batch.
//!
//! [`FleetEngine`] fixes both:
//!
//! * **Shared scratch arenas.** Every worker owns one
//!   [`par_algo::SolveScratch`] for the whole batch; each tenant's
//!   represent→solve→recycle cycle draws all evaluator and solver buffers
//!   from it and returns the capacity afterwards. The arenas are *capacity
//!   only*: every buffer is cleared and fully rewritten by the same
//!   arithmetic a fresh allocation would run, so a tenant's outcome is
//!   bit-identical whether its scratch is freshly allocated or has already
//!   served a thousand other tenants (see
//!   [`PhocusConfig`](crate::PhocusConfig) for the single-instance analogue
//!   and `DESIGN.md` §13 for the invariant).
//! * **Largest-first scheduling.** Tenants are dispatched to the persistent
//!   worker pool (via [`par_exec::par_map_dynamic`]) in descending library
//!   size, so the heavy tail starts first and small libraries backfill the
//!   idle workers — the classical LPT heuristic. Outcomes are returned in
//!   *input* order regardless of the schedule, and each outcome is a pure
//!   function of its tenant, so the batch result is independent of worker
//!   count and dispatch order.
//!
//! Failures are per-tenant: a tenant whose representation fails (e.g. its
//! required set alone exceeds its budget) yields an `Err` outcome while the
//! rest of the fleet solves normally. The `phocus serve-batch` CLI surfaces
//! this as one status line per tenant and exit code 5 when some — but not
//! all — tenants failed.

use crate::error::{PhocusError, Result};
use crate::representation::{represent, RepresentationConfig};
use par_algo::{
    main_algorithm_packed, main_algorithm_scratch, main_algorithm_sharded, GreedyRule,
    SolveScratch,
};
use par_core::{PackedInstance, PhotoId};
use par_datasets::Universe;
use par_exec::Parallelism;
use std::time::{Duration, Instant};

/// Configuration of a fleet batch run.
#[derive(Debug, Clone)]
pub struct FleetEngineConfig {
    /// Representation choices applied to every tenant.
    pub representation: RepresentationConfig,
    /// Worker threads for tenant dispatch (installed as the process-wide
    /// default for the duration of the batch, like a single PHOcus run).
    pub parallelism: Parallelism,
    /// Draw per-tenant solver state from reusable arenas (default). Turning
    /// this off allocates fresh evaluator/solver state per tenant — the
    /// baseline the fleet bench compares against; outcomes are bit-identical
    /// either way.
    pub reuse_arenas: bool,
}

impl Default for FleetEngineConfig {
    fn default() -> Self {
        FleetEngineConfig {
            representation: RepresentationConfig::default(),
            parallelism: Parallelism::default(),
            reuse_arenas: true,
        }
    }
}

/// One unit of fleet work: a tenant's library and its byte budget.
#[derive(Debug, Clone)]
pub struct FleetTenant {
    /// The tenant's photo library.
    pub universe: Universe,
    /// The tenant's storage budget in bytes.
    pub budget: u64,
}

/// The solution for one tenant.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Retained photos (including `S₀`), in selection order.
    pub selected: Vec<PhotoId>,
    /// Objective value on the tenant's selection instance.
    pub score: f64,
    /// Solution cost in bytes.
    pub cost: u64,
    /// Which greedy rule won inside Algorithm 1.
    pub winner: GreedyRule,
}

/// Per-tenant outcome: solution or typed failure, plus the solve latency.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    /// The tenant's name (from its universe).
    pub name: String,
    /// Photos in the tenant's library.
    pub photos: usize,
    /// The solution, or why this tenant failed. A failed tenant never fails
    /// the batch.
    pub result: Result<TenantReport>,
    /// Wall-clock represent+solve time for this tenant.
    pub latency: Duration,
}

impl TenantOutcome {
    fn failed(tenant: &FleetTenant, error: PhocusError) -> Self {
        TenantOutcome {
            name: tenant.universe.name.clone(),
            photos: tenant.universe.num_photos(),
            result: Err(error),
            latency: Duration::ZERO,
        }
    }
}

/// One unit of catalog-backed fleet work: a tenant already represented,
/// loaded from a `phocus-pack` file with its shard labels alongside. The
/// [`FleetEngine::run_packed`] path skips text parsing, validation, the
/// representation pipeline, *and* the solver's union-find — the cold start
/// the catalog exists to eliminate.
#[derive(Debug, Clone)]
pub struct PackedTenant {
    /// Tenant name (from the catalog index).
    pub name: String,
    /// The loaded pack: instance + evaluator layout + shard labels.
    pub packed: PackedInstance,
}

/// The fleet engine: holds a configuration, solves batches of tenants.
#[derive(Debug, Clone, Default)]
pub struct FleetEngine {
    /// The batch configuration.
    pub config: FleetEngineConfig,
}

impl FleetEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: FleetEngineConfig) -> Self {
        FleetEngine { config }
    }

    /// Solves every tenant and returns the outcomes **in input order**.
    ///
    /// Tenants are scheduled largest-first across the worker pool; each
    /// worker reuses one [`SolveScratch`] across all tenants it serves (when
    /// [`FleetEngineConfig::reuse_arenas`] is on). Outcomes are bit-identical
    /// to solving each tenant alone with [`crate::Phocus`] under the same
    /// representation.
    pub fn run(&self, tenants: &[FleetTenant]) -> Vec<TenantOutcome> {
        let prev = self.config.parallelism.install_global();
        let outcomes = self.run_inner(tenants);
        prev.install_global();
        outcomes
    }

    fn run_inner(&self, tenants: &[FleetTenant]) -> Vec<TenantOutcome> {
        // Largest-first (LPT): descending photo count, ties by input order,
        // so the schedule is deterministic.
        let mut order: Vec<usize> = (0..tenants.len()).collect();
        order.sort_by(|&a, &b| {
            tenants[b]
                .universe
                .num_photos()
                .cmp(&tenants[a].universe.num_photos())
                .then(a.cmp(&b))
        });
        // Each pool participant owns one scratch for its whole stream of
        // tenants; every outcome is a pure function of the tenant (the
        // arena-reset invariant), so the nondeterministic work assignment
        // cannot leak into results.
        let mut indexed: Vec<(usize, TenantOutcome)> =
            par_exec::par_map_dynamic(order.len(), SolveScratch::default, |scratch, k| {
                let i = order[k];
                (i, self.solve_tenant(&tenants[i], scratch))
            });
        indexed.sort_unstable_by_key(|&(i, _)| i);
        indexed.into_iter().map(|(_, o)| o).collect()
    }

    /// Solves a batch of **pre-represented** tenants (catalog pack loads),
    /// outcomes in input order. Scheduling, arena reuse, and failure
    /// isolation match [`run`](Self::run); the per-tenant work drops the
    /// representation pipeline and (with arena reuse on) the component
    /// union-find, both of which the pack already paid at write time.
    /// Outcomes are bit-identical to [`run`](Self::run) over the universes
    /// the packs were built from, under the same representation.
    pub fn run_packed(&self, tenants: &[PackedTenant]) -> Vec<TenantOutcome> {
        let prev = self.config.parallelism.install_global();
        let mut order: Vec<usize> = (0..tenants.len()).collect();
        order.sort_by(|&a, &b| {
            tenants[b]
                .packed
                .instance
                .num_photos()
                .cmp(&tenants[a].packed.instance.num_photos())
                .then(a.cmp(&b))
        });
        let mut indexed: Vec<(usize, TenantOutcome)> =
            par_exec::par_map_dynamic(order.len(), SolveScratch::default, |scratch, k| {
                let i = order[k];
                (i, self.solve_packed_tenant(&tenants[i], scratch))
            });
        indexed.sort_unstable_by_key(|&(i, _)| i);
        let outcomes = indexed.into_iter().map(|(_, o)| o).collect();
        prev.install_global();
        outcomes
    }

    fn solve_packed_tenant(&self, tenant: &PackedTenant, scratch: &mut SolveScratch) -> TenantOutcome {
        let t0 = Instant::now(); // phocus-lint: allow(wall-clock) — fills the reported latency field only
        let inst = &tenant.packed.instance;
        let outcome = if self.config.reuse_arenas {
            main_algorithm_packed(inst, tenant.packed.labels.clone(), scratch)
        } else {
            main_algorithm_sharded(inst)
        };
        TenantOutcome {
            name: tenant.name.clone(),
            photos: inst.num_photos(),
            result: Ok(TenantReport {
                selected: outcome.best.selected,
                score: outcome.best.score,
                cost: outcome.best.cost,
                winner: outcome.winner,
            }),
            latency: t0.elapsed(),
        }
    }

    fn solve_tenant(&self, tenant: &FleetTenant, scratch: &mut SolveScratch) -> TenantOutcome {
        let t0 = Instant::now(); // phocus-lint: allow(wall-clock) — fills the reported latency field only
        let inst = match represent(&tenant.universe, tenant.budget, &self.config.representation) {
            Ok(inst) => inst,
            Err(e) => return TenantOutcome::failed(tenant, e),
        };
        let outcome = if self.config.reuse_arenas {
            main_algorithm_scratch(&inst, scratch)
        } else {
            main_algorithm_sharded(&inst)
        };
        TenantOutcome {
            name: tenant.universe.name.clone(),
            photos: tenant.universe.num_photos(),
            result: Ok(TenantReport {
                selected: outcome.best.selected,
                score: outcome.best.score,
                cost: outcome.best.cost,
                winner: outcome.winner,
            }),
            latency: t0.elapsed(),
        }
    }
}

/// Budgets a fleet uniformly: each tenant gets `fraction` of its own
/// archive's total byte size (clamped to at least one byte so tiny archives
/// stay representable).
pub fn budget_by_fraction(universes: Vec<Universe>, fraction: f64) -> Vec<FleetTenant> {
    universes
        .into_iter()
        .map(|universe| {
            let budget = ((universe.total_cost() as f64 * fraction) as u64).max(1);
            FleetTenant { universe, budget }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use par_datasets::{generate_fleet, FleetConfig};

    fn small_fleet() -> Vec<FleetTenant> {
        let universes = generate_fleet(&FleetConfig {
            tenants: 8,
            min_photos: 12,
            max_photos: 200,
            seed: 11,
            ..Default::default()
        });
        budget_by_fraction(universes, 0.3)
    }

    #[test]
    fn outcomes_come_back_in_input_order() {
        let tenants = small_fleet();
        let outcomes = FleetEngine::default().run(&tenants);
        assert_eq!(outcomes.len(), tenants.len());
        for (t, o) in tenants.iter().zip(&outcomes) {
            assert_eq!(t.universe.name, o.name);
            assert_eq!(t.universe.num_photos(), o.photos);
        }
    }

    #[test]
    fn arena_reuse_is_bit_identical_to_fresh_allocation() {
        let tenants = small_fleet();
        let with = |reuse_arenas: bool| {
            FleetEngine::new(FleetEngineConfig {
                reuse_arenas,
                ..Default::default()
            })
            .run(&tenants)
        };
        let reused = with(true);
        let fresh = with(false);
        for (a, b) in reused.iter().zip(&fresh) {
            let ra = a.result.as_ref().expect("fleet tenant solves");
            let rb = b.result.as_ref().expect("fleet tenant solves");
            assert_eq!(ra.selected, rb.selected);
            assert_eq!(ra.score.to_bits(), rb.score.to_bits());
            assert_eq!(ra.cost, rb.cost);
            assert_eq!(ra.winner, rb.winner);
        }
    }

    #[test]
    fn batch_matches_solo_solves() {
        let tenants = small_fleet();
        let outcomes = FleetEngine::default().run(&tenants);
        for (t, o) in tenants.iter().zip(&outcomes) {
            let solo = crate::Phocus::default()
                .solve(&t.universe, t.budget)
                .expect("solo solve succeeds");
            let batch = o.result.as_ref().expect("batch solve succeeds");
            assert_eq!(batch.selected, solo.selected);
            assert_eq!(batch.score.to_bits(), solo.score.to_bits());
            assert_eq!(batch.cost, solo.cost);
        }
    }

    #[test]
    fn a_failing_tenant_does_not_fail_the_batch() {
        let mut tenants = small_fleet();
        // Starve one tenant: a one-byte budget is below any required set or
        // representable solution only when photos cost more than a byte, but
        // represent() itself succeeds — so instead poison the universe with
        // an unsatisfiable required set by shrinking the budget below the
        // required photos' cost.
        let victim = 2;
        let required_cost: u64 = tenants[victim]
            .universe
            .required
            .iter()
            .map(|&i| tenants[victim].universe.costs[i as usize])
            .sum();
        if required_cost == 0 {
            // Ensure the victim actually has a required photo to starve.
            tenants[victim].universe.required.push(0);
        }
        tenants[victim].budget = 1;
        let outcomes = FleetEngine::default().run(&tenants);
        assert!(outcomes[victim].result.is_err(), "starved tenant fails");
        for (i, o) in outcomes.iter().enumerate() {
            if i != victim {
                assert!(o.result.is_ok(), "tenant {i} unaffected");
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_outcomes() {
        let tenants = small_fleet();
        let with = |threads: usize| {
            FleetEngine::new(FleetEngineConfig {
                parallelism: Parallelism::with_threads(threads),
                ..Default::default()
            })
            .run(&tenants)
        };
        let serial = with(1);
        let parallel = with(4);
        for (a, b) in serial.iter().zip(&parallel) {
            let ra = a.result.as_ref().expect("solves");
            let rb = b.result.as_ref().expect("solves");
            assert_eq!(ra.selected, rb.selected);
            assert_eq!(ra.score.to_bits(), rb.score.to_bits());
        }
    }
}
