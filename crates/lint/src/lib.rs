//! # par-lint — `phocus-lint`, the workspace static-analysis engine
//!
//! PRs 1–4 established invariants by hand: bit-identical serial/parallel
//! solver transcripts, `f64::total_cmp` in every float comparator, a typed
//! error / no-panic discipline, and a layered crate DAG. This crate
//! machine-checks them, so the next refactor cannot silently reintroduce a
//! `partial_cmp().unwrap()` or an order-nondeterministic `HashMap`
//! iteration into a solver path and break the golden transcripts that the
//! Figure 5 / Table 1–2 reproductions depend on.
//!
//! The engine is a lightweight self-contained Rust [`lexer`] (the workspace
//! builds offline; no syn/proc-macro dependencies) feeding two analysis
//! depths: flat token-sequence [`rules`], and a brace-aware [`tree`] layer
//! with fn-[`scope`] tracking and an intra-crate [`callgraph`] for the
//! rules that need to reason across functions. Both are walked over every
//! non-vendor crate discovered from the workspace manifest. Findings are
//! typed [`diag::Diagnostic`]s with `file:line:col` spans, suppressible per
//! site or per file — a suppression must carry a written rationale:
//!
//! ```text
//! // phocus-lint: allow(hash-iter) — keys are collected and sort-deduped below
//! // phocus-lint: allow-file(wall-clock) — the figure-suite timing harness
//! // phocus-lint: hot-kernel — inner CELF loop, arena discipline applies
//! ```
//!
//! Rule families (full rationale in DESIGN.md §12 and §17):
//!
//! | rule           | protects                                             |
//! |----------------|------------------------------------------------------|
//! | `float-ord`    | total-order float comparisons (PR 4)                 |
//! | `hash-iter`    | hash-iteration-order independence (PR 1/3 goldens)   |
//! | `wall-clock`   | time-independent solver decisions                    |
//! | `crate-dag`    | the declared crate layering (DESIGN §3)              |
//! | `parallel-cfg` | the serial/parallel equivalence boundary (PR 1)      |
//! | `no-print`     | silent library code; output via CLI/reporters only   |
//! | `no-unsafe`    | `#![forbid(unsafe_code)]` everywhere but vendor      |
//! | `ci-gate`      | metadata-derived panic-freedom gate coverage (PR 4)  |
//! | `alloc-hot`    | allocation-free hot kernels + crate-local callees    |
//! | `cast-bounds`  | locally-evidenced narrowing casts in library code    |
//! | `reduce-order` | index-ordered float merges under parallel fan-out    |
//! | `lint-meta`    | well-formed, justified suppression pragmas           |
//!
//! The `phocus-lint` binary exits 0 when clean, 1 on violations, 2 on
//! usage errors, 3 on I/O failures; `--json` emits a stable v2 document,
//! `rules` prints the registry (ci.sh diffs it against `lint-rules.txt`),
//! and `gate-crates` prints the panic-gate crate list that `ci.sh`
//! consumes.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod context;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod scope;
pub mod tree;

pub use context::{CrateCategory, FileContext, FileKind, FileSpec};
pub use diag::Diagnostic;
pub use engine::{gate_crates, run, LintError, Report};

/// Lints a single in-memory source file — the fixture-test entry point.
/// Runs every file-scoped rule plus the crate-scoped rules on the file as a
/// singleton crate, and returns the surviving diagnostics.
pub fn lint_source(spec: FileSpec<'_>, src: &str) -> Vec<Diagnostic> {
    let ctx = FileContext::new(spec, src);
    let mut out = rules::run_file_rules(&ctx);
    let files = [ctx];
    out.extend(rules::run_crate_rules(&files));
    out
}
