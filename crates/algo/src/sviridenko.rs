//! Sviridenko's partial-enumeration greedy — the optimal `(1 − 1/e)`
//! approximation for monotone submodular maximization under a knapsack
//! constraint (Theorem 4.4/4.6 of the paper).
//!
//! The scheme enumerates every seed set of `d = 3` optional photos, completes
//! each seed with the density (cost-benefit) greedy — *skipping* elements that
//! would overflow the budget rather than stopping — and returns the best
//! completion, also considering all solutions of cardinality `< d` directly.
//! The price of optimality is a `Θ(n^{d})`-seed enumeration with a full
//! greedy run per seed (the `Ω(B·n⁴)` the paper deems unscalable), so this
//! solver is only practical for small instances; it exists as the guarantee
//! reference and to validate the CELF solver empirically.

use crate::types::{GreedyOutcome, RunStats};
use par_core::{Evaluator, Instance, PhotoId};
use std::time::Instant;

/// Configuration for [`sviridenko`].
#[derive(Debug, Clone)]
pub struct SviridenkoConfig {
    /// Seed cardinality `d`. The classical guarantee needs `d = 3`; smaller
    /// values trade the guarantee for speed.
    pub seed_size: usize,
    /// Hard cap on photos; larger instances are refused.
    pub max_photos: usize,
}

impl Default for SviridenkoConfig {
    fn default() -> Self {
        SviridenkoConfig {
            seed_size: 3,
            max_photos: 64,
        }
    }
}

/// Error returned when the instance exceeds the configured size cap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TooLarge {
    /// Photos in the instance.
    pub photos: usize,
    /// Configured cap.
    pub limit: usize,
}

impl std::fmt::Display for TooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "instance has {} photos, Sviridenko solver capped at {}",
            self.photos, self.limit
        )
    }
}

impl std::error::Error for TooLarge {}

/// Density-greedy completion: repeatedly add the affordable photo with the
/// best `gain/cost` ratio, skipping unaffordable photos, until none helps.
fn complete_greedy(inst: &Instance, ev: &mut Evaluator<'_>) {
    let budget = inst.budget();
    loop {
        let mut best: Option<(f64, PhotoId)> = None;
        let candidates: Vec<PhotoId> = (0..inst.num_photos() as u32)
            .map(PhotoId)
            .filter(|&p| !ev.is_selected(p) && ev.fits(p, budget))
            .collect();
        // Parallel batch scan; the argmax walks results in candidate order
        // so ties break exactly as the serial loop did.
        let gains = ev.batch_gains(&candidates);
        for (&p, &g) in candidates.iter().zip(&gains) {
            let density = g / inst.cost(p) as f64;
            if density <= 0.0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((bd, bp)) => density > bd || (density == bd && p < bp),
            };
            if better {
                best = Some((density, p));
            }
        }
        match best {
            Some((_, p)) => {
                ev.add(p);
            }
            None => return,
        }
    }
}

/// Runs the partial-enumeration scheme on `inst` with its budget.
///
/// Policy-retained photos (`S₀`) are pre-selected in every branch and do not
/// count toward the seed cardinality.
pub fn sviridenko(inst: &Instance, cfg: &SviridenkoConfig) -> Result<GreedyOutcome, TooLarge> {
    if inst.num_photos() > cfg.max_photos {
        return Err(TooLarge {
            photos: inst.num_photos(),
            limit: cfg.max_photos,
        });
    }
    let start = Instant::now(); // phocus-lint: allow(wall-clock) — fills the reported timing field only
    let optional: Vec<PhotoId> = (0..inst.num_photos() as u32)
        .map(PhotoId)
        .filter(|&p| !inst.is_required(p))
        .collect();
    let budget = inst.budget();
    let base = Evaluator::with_required(inst);

    let mut best_score = base.score();
    let mut best_set: Vec<PhotoId> = base.selected_ids().to_vec();
    let mut gain_evals = 0u64;
    let mut sim_ops = 0u64;

    let consider = |ev: &Evaluator<'_>, best_score: &mut f64, best_set: &mut Vec<PhotoId>| {
        if ev.score() > *best_score + 1e-12 {
            *best_score = ev.score();
            *best_set = ev.selected_ids().to_vec();
        }
    };

    // Small solutions: every feasible seed of cardinality < d is itself a
    // candidate answer (required for the guarantee when OPT is tiny).
    // Seeds of cardinality exactly d are greedily completed.
    let d = cfg.seed_size.min(optional.len());
    let mut stack: Vec<(usize, Evaluator<'_>, usize)> = vec![(0, base, 0)];
    while let Some((next_idx, ev, size)) = stack.pop() {
        consider(&ev, &mut best_score, &mut best_set);
        if size == d {
            let mut completed = ev.clone();
            complete_greedy(inst, &mut completed);
            let st = completed.stats();
            gain_evals += st.gain_evals;
            sim_ops += st.sim_ops;
            consider(&completed, &mut best_score, &mut best_set);
            continue;
        }
        for (k, &p) in optional.iter().enumerate().skip(next_idx) {
            if ev.is_selected(p) || !ev.fits(p, budget) {
                continue;
            }
            let mut child = ev.clone();
            child.add(p);
            stack.push((k + 1, child, size + 1));
        }
    }

    let mut final_ev = Evaluator::new(inst);
    for &p in &best_set {
        final_ev.add(p);
    }
    Ok(GreedyOutcome {
        selected: best_set,
        score: final_ev.score(),
        cost: final_ev.cost(),
        stats: RunStats {
            gain_evals,
            sim_ops,
            pq_pops: 0,
            lazy_accepts: 0,
            elapsed: start.elapsed(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{brute_force, main_algorithm, BruteForceConfig};
    use par_core::fixtures::{figure1_instance, random_instance, RandomInstanceConfig, MB};
    use par_core::Solution;

    #[test]
    fn achieves_1_minus_1_over_e_on_random_instances() {
        let cfg = RandomInstanceConfig {
            photos: 10,
            subsets: 4,
            budget_fraction: 0.35,
            ..Default::default()
        };
        let guarantee = 1.0 - 1.0 / std::f64::consts::E;
        for seed in 0..6 {
            let inst = random_instance(seed, &cfg);
            let sv = sviridenko(&inst, &SviridenkoConfig::default()).unwrap();
            let opt = brute_force(&inst, &BruteForceConfig::default()).unwrap();
            assert!(
                sv.score + 1e-9 >= guarantee * opt.score,
                "seed {seed}: {} < {} · {}",
                sv.score,
                guarantee,
                opt.score
            );
        }
    }

    #[test]
    fn at_least_as_good_as_main_algorithm_typically() {
        let inst = figure1_instance(3 * MB);
        let sv = sviridenko(&inst, &SviridenkoConfig::default()).unwrap();
        let ma = main_algorithm(&inst);
        assert!(sv.score + 1e-9 >= ma.best.score);
    }

    #[test]
    fn feasible_and_respects_required() {
        let cfg = RandomInstanceConfig {
            photos: 12,
            subsets: 5,
            required_prob: 0.15,
            budget_fraction: 0.4,
            ..Default::default()
        };
        let inst = random_instance(5, &cfg);
        let sv = sviridenko(&inst, &SviridenkoConfig::default()).unwrap();
        let sol = Solution::new(&inst, sv.selected.clone()).unwrap();
        assert!(sol.cost() <= inst.budget());
    }

    #[test]
    fn refuses_oversized() {
        let cfg = RandomInstanceConfig {
            photos: 30,
            ..Default::default()
        };
        let inst = random_instance(1, &cfg);
        let res = sviridenko(
            &inst,
            &SviridenkoConfig {
                seed_size: 3,
                max_photos: 20,
            },
        );
        assert!(res.is_err());
    }

    #[test]
    fn seed_size_one_degrades_gracefully() {
        let inst = figure1_instance(3 * MB);
        let sv = sviridenko(
            &inst,
            &SviridenkoConfig {
                seed_size: 1,
                max_photos: 64,
            },
        )
        .unwrap();
        assert!(sv.cost <= 3 * MB);
        assert!(sv.score > 0.0);
    }
}
