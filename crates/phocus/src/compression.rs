//! Multi-action archival — keep, recompress@ℓ, or delete — the paper's §6
//! future work promoted to a first-class layer on the sharded solver:
//! *"consider which photos to compress (i.e., to sacrifice quality to gain
//! space) rather than to remove. We believe that our model can already
//! capture this problem."*
//!
//! It can, and this module shows how. A validated [`ActionLadder`] expands
//! each photo into a set of *variants* — the original plus one rendition per
//! ladder level, with smaller cost and degraded quality — so PAR's ground
//! set becomes photo × action and the plain budgeted solve picks one action
//! per photo. A variant joins its parent's subsets as a selectable
//! *representative*, not as content to be represented: its own relevance is
//! an ε (renditions we invent create no demand), while its similarity to any
//! photo is the parent's scaled by the rendition's quality factor — in
//! particular a variant covers its own parent at `SIM = quality`, not 1. No
//! mutual-exclusion constraint is needed: once the original is selected a
//! variant's coverage is dominated (`quality·SIM ≤ SIM`), so by
//! submodularity the greedy never wastes budget stacking variants of one
//! photo — `tests` verify this, along with the headline effect: at tight
//! budgets the solver trades full-quality originals for cheap renditions and
//! ends up with *higher* total quality than remove-only archival.
//!
//! The expanded instance runs through the same component-sharded machinery
//! as every other solve ([`par_algo::main_algorithm_sharded`]): variants
//! share their parent's embedding, so every stored pair keeps them in the
//! parent's connected component and the union-find/CELF/staleness machinery
//! carries over unchanged, transcript-bit-identical to the global solver.
//! Reported scores are ε-free ([`epsilon_free_score`]): measured over the
//! *original* photos' demand only, so remove-only and multi-action numbers
//! are directly comparable and the invented renditions' ε relevance never
//! inflates a headline gain.

use crate::error::{PhocusError, Result};
use crate::representation::{represent, RepresentationConfig};
use par_algo::{main_algorithm_with, quality_curve};
use par_core::{Instance, PhotoId};
use par_datasets::{SubsetDef, Universe};

/// One compression rendition: retained size fraction and quality factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionLevel {
    /// Fraction of the original byte cost this rendition occupies, in
    /// `(0, 1)`.
    pub size_fraction: f64,
    /// Quality factor in `(0, 1)`: how well the rendition stands in for the
    /// original (scales relevance and similarity).
    pub quality: f64,
}

/// A sensible default ladder: a strong recompression and a thumbnail.
pub const DEFAULT_LADDER: [CompressionLevel; 2] = [
    CompressionLevel {
        size_fraction: 0.35,
        quality: 0.85,
    },
    CompressionLevel {
        size_fraction: 0.10,
        quality: 0.55,
    },
];

/// A validated set of per-photo storage actions: keep (implicit),
/// recompress at each level, or delete (don't select any variant).
///
/// Construction is the *only* place level values are checked — every
/// `size_fraction` and `quality` must be finite and in `(0, 1)` — so the
/// expansion itself never asserts on user data. The empty ladder is valid
/// and degenerates to the remove-only model: no variants, same instance,
/// same solution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ActionLadder {
    levels: Vec<CompressionLevel>,
}

impl ActionLadder {
    /// Validates `levels` into a ladder.
    ///
    /// # Errors
    /// [`PhocusError::InvalidLadder`] naming the first offending level if
    /// any `size_fraction` or `quality` is non-finite or outside `(0, 1)`.
    pub fn new(levels: Vec<CompressionLevel>) -> Result<Self> {
        for (k, lvl) in levels.iter().enumerate() {
            if !(lvl.size_fraction > 0.0 && lvl.size_fraction < 1.0) {
                return Err(PhocusError::InvalidLadder {
                    level: k,
                    message: format!("size fraction {} is not in (0, 1)", lvl.size_fraction),
                });
            }
            if !(lvl.quality > 0.0 && lvl.quality < 1.0) {
                return Err(PhocusError::InvalidLadder {
                    level: k,
                    message: format!("quality {} is not in (0, 1)", lvl.quality),
                });
            }
        }
        Ok(ActionLadder { levels })
    }

    /// The degenerate delete-only ladder: no renditions, remove-only model.
    pub fn delete_only() -> Self {
        ActionLadder { levels: Vec::new() }
    }

    /// The built-in [`DEFAULT_LADDER`] (a strong recompression and a
    /// thumbnail).
    pub fn standard() -> Self {
        ActionLadder {
            levels: DEFAULT_LADDER.to_vec(),
        }
    }

    /// The recompression paper's measured ladder
    /// ([`par_datasets::RECOMPRESSION_LEVELS`]), strongest rung first.
    pub fn measured() -> Self {
        ActionLadder {
            levels: par_datasets::RECOMPRESSION_LEVELS
                .iter()
                .map(|&(size_fraction, quality)| CompressionLevel {
                    size_fraction,
                    quality,
                })
                .collect(),
        }
    }

    /// Parses a `quality:size_fraction[,quality:size_fraction...]` spec (the
    /// CLI's `--ladder` format). An empty or all-whitespace spec, or the
    /// word `none`, is the delete-only ladder; `paper` is the measured one.
    ///
    /// # Errors
    /// [`PhocusError::InvalidLadder`] naming the first entry that does not
    /// parse or validate.
    pub fn parse(spec: &str) -> Result<Self> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "none" {
            return Ok(Self::delete_only());
        }
        if spec == "paper" {
            return Ok(Self::measured());
        }
        let mut levels = Vec::new();
        for (k, entry) in spec.split(',').enumerate() {
            let invalid = |message: String| PhocusError::InvalidLadder { level: k, message };
            let Some((q, frac)) = entry.trim().split_once(':') else {
                return Err(invalid(format!(
                    "`{entry}` is not a quality:size_fraction pair"
                )));
            };
            let parse_f64 = |field: &str, text: &str| -> Result<f64> {
                text.trim()
                    .parse()
                    .map_err(|_| invalid(format!("{field} `{text}` is not a number")))
            };
            levels.push(CompressionLevel {
                quality: parse_f64("quality", q)?,
                size_fraction: parse_f64("size fraction", frac)?,
            });
        }
        Self::new(levels)
    }

    /// The validated levels, in ladder order.
    pub fn levels(&self) -> &[CompressionLevel] {
        &self.levels
    }

    /// Number of rungs.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether this is the degenerate delete-only ladder.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Quality factor of a variant at `level` (originals are `None` → 1).
    fn quality_of(&self, level: Option<usize>) -> f64 {
        match level {
            None => 1.0,
            Some(k) => self.levels[k].quality,
        }
    }
}

/// Maps variant indices back to original photos.
#[derive(Debug, Clone)]
pub struct VariantMap {
    /// `parent[i]` = index of variant `i`'s original photo in the source
    /// universe (originals map to themselves).
    pub parent: Vec<u32>,
    /// `level[i]` = `None` for originals, `Some(k)` for ladder level `k`.
    pub level: Vec<Option<usize>>,
}

impl VariantMap {
    /// The identity map over `n` original photos — what an expansion with
    /// the delete-only ladder produces.
    pub fn identity(n: usize) -> Self {
        VariantMap {
            parent: (0..n as u32).collect(),
            level: vec![None; n],
        }
    }

    /// Whether variant `i` is an unmodified original.
    pub fn is_original(&self, i: usize) -> bool {
        self.level[i].is_none()
    }
}

/// Expands every photo of `universe` with the given compression ladder.
///
/// Original photos keep their indices (`0..n`); variants are appended. Each
/// variant joins every subset its parent belongs to, with relevance scaled
/// by its quality. Policy-required photos are *not* expanded into cheaper
/// variants: policy requires the original. The delete-only ladder returns
/// the universe unchanged (plus the identity map).
pub fn expand_with_variants(universe: &Universe, ladder: &ActionLadder) -> (Universe, VariantMap) {
    let n = universe.num_photos();
    if ladder.is_empty() {
        return (universe.clone(), VariantMap::identity(n));
    }
    let mut names = universe.names.clone();
    let mut costs = universe.costs.clone();
    let mut embeddings = universe.embeddings.clone();
    let mut exif = universe.exif.clone();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    let mut level: Vec<Option<usize>> = vec![None; n];
    let required: std::collections::HashSet<u32> = universe.required.iter().copied().collect();

    // variant_of[p][k] = index of photo p's level-k variant.
    let mut variant_of: Vec<Vec<u32>> = vec![Vec::new(); n];
    for p in 0..n {
        if required.contains(&(p as u32)) {
            continue;
        }
        for (k, lvl) in ladder.levels().iter().enumerate() {
            // phocus-lint: allow(cast-bounds) — ≤ n·levels variants of a u32-id universe
            let idx = names.len() as u32;
            names.push(format!("{}@q{}", universe.names[p], k));
            costs.push(
                ((universe.costs[p] as f64) * lvl.size_fraction)
                    .ceil()
                    .max(1.0) as u64,
            );
            // The rendition depicts the same content: same embedding. Its
            // degraded fidelity enters through scaled relevance/similarity,
            // not through a perturbed embedding.
            embeddings.push(universe.embeddings[p].clone());
            if let Some(e) = &mut exif {
                e.push(e[p].clone());
            }
            parent.push(p as u32);
            level.push(Some(k));
            variant_of[p].push(idx);
        }
    }

    // Subsets: each variant joins its parent's subsets as a selectable
    // representative. Its own demand is an ε of the parent's relevance —
    // strictly positive (the model requires it) but negligible, so inventing
    // renditions does not dilute the real content's relevance mass.
    const VARIANT_DEMAND_EPS: f64 = 1e-6;
    let subsets = universe
        .subsets
        .iter()
        .map(|s| {
            let mut members = s.members.clone();
            let mut relevance = s.relevance.clone();
            for (&m, &r) in s.members.iter().zip(&s.relevance) {
                for &v in &variant_of[m as usize] {
                    members.push(v);
                    relevance.push(r * VARIANT_DEMAND_EPS);
                }
            }
            SubsetDef {
                label: s.label.clone(),
                weight: s.weight,
                members,
                relevance,
            }
        })
        .collect();

    let expanded = Universe {
        name: format!("{}+compress", universe.name),
        names,
        costs,
        embeddings,
        exif,
        subsets,
        required: universe.required.clone(),
    };
    debug_assert!(
        expanded.validate().is_ok(),
        "expanded universe remains valid"
    );
    (expanded, VariantMap { parent, level })
}

/// Represents an expanded universe with a similarity that scales each pair
/// by the quality factors of the variants involved: for variants `a, b` of
/// parents `A, B` at qualities `qa, qb`,
/// `SIM(q, a, b) = qa · qb · SIM_base(q, A, B)` (with `SIM(a, a) = 1` as the
/// model requires — a retained variant represents itself perfectly, but
/// represents its *parent* only at `qa`).
pub fn represent_with_variants(
    expanded: &Universe,
    map: &VariantMap,
    ladder: &ActionLadder,
    budget: u64,
    cfg: &RepresentationConfig,
) -> Result<Instance> {
    // Build the instance on the expanded universe (embeddings equal within a
    // variant family, so base contextual similarity is the parent's), then
    // rescale stored similarities by quality factors.
    let inst = represent(expanded, budget, cfg)?;
    let quality = |i: usize| -> f64 { ladder.quality_of(map.level[i]) };
    let mut sims = Vec::with_capacity(inst.num_subsets());
    for q in inst.subsets() {
        let store = inst.sim(q.id);
        let n = q.members.len();
        let mut pairs = Vec::new();
        let push_pair = |pairs: &mut Vec<(u32, u32, f64)>, i: usize, j: usize, s: f64| {
            let a = q.members[i].index();
            let b = q.members[j].index();
            let scaled = s * quality(a) * quality(b);
            if scaled > 0.0 {
                // phocus-lint: allow(cast-bounds) — member positions; subsets are u32-indexed
                pairs.push((i as u32, j as u32, scaled));
            }
        };
        if let par_core::ContextSim::Sparse(sp) = store {
            // CSR rows are sorted, so the upper-triangle suffix of row `i`
            // enumerates each unordered pair exactly once.
            for i in 0..n {
                let (ids, sims) = sp.neighbors(i);
                let upper = ids.partition_point(|&j| (j as usize) <= i);
                for (&j, &s) in ids[upper..].iter().zip(&sims[upper..]) {
                    push_pair(&mut pairs, i, j as usize, s as f64);
                }
            }
        } else {
            for i in 0..n {
                store.for_neighbors(i, |j, s| {
                    if j > i {
                        push_pair(&mut pairs, i, j, s); // each unordered pair once
                    }
                });
            }
        }
        sims.push(par_core::ContextSim::Sparse(
            par_core::SparseSim::from_pairs(q.id, n, pairs)?,
        ));
    }
    Ok(inst.with_sims(sims))
}

/// The ε-free objective: PAR's quality measured over the *original* photos'
/// demand only, ignoring the ε relevance that invented renditions carry.
///
/// For each subset, only members that are originals contribute demand; their
/// relevance is renormalized over the original members (restoring the base
/// instance's `Σ R(q,·) = 1` up to f64 re-association), while *coverage*
/// still comes from every selected variant through the quality-scaled stored
/// similarities. On an unexpanded instance (identity map) this is exactly
/// [`par_core::exact_score`] modulo summation order, so remove-only and
/// multi-action solutions are compared on one objective.
pub fn epsilon_free_score(inst: &Instance, map: &VariantMap, selected: &[PhotoId]) -> f64 {
    debug_assert_eq!(map.level.len(), inst.num_photos(), "map matches instance");
    let mut sel = vec![false; inst.num_photos()];
    for &p in selected {
        sel[p.index()] = true;
    }
    let mut total = 0.0;
    for q in inst.subsets() {
        let store = inst.sim(q.id);
        let mut mass = 0.0;
        let mut covered = 0.0;
        for (i, (&m, &r)) in q.members.iter().zip(q.relevance.iter()).enumerate() {
            if !map.is_original(m.index()) {
                continue;
            }
            mass += r;
            let mut best = 0.0;
            if sel[m.index()] {
                best = 1.0;
            } else {
                store.for_neighbors(i, |j, s| {
                    if sel[q.members[j].index()] && s > best {
                        best = s;
                    }
                });
            }
            covered += r * best;
        }
        if mass > 0.0 {
            total += q.weight * covered / mass;
        }
    }
    total
}

/// Drops superseded renditions from a selection and greedily refills the
/// freed budget.
///
/// The monotone greedy never *removes*, so when a cheap rendition selected
/// early is later upgraded (by a better rendition or the original of the
/// same photo), its bytes stay stranded in the solution. This repair pass
/// keeps exactly one representative per selected photo — the highest-quality
/// selected variant, ties broken by lowest index, so duplicate-quality
/// ladder rungs never retain redundant copies — then resumes the
/// cost-benefit lazy greedy with the recovered budget (through the sharded
/// solver, bit-identical to the global one). Monotonicity guarantees the
/// result never scores worse than the input selection minus the ε-demand of
/// the pruned renditions.
pub fn prune_and_refill(
    inst: &Instance,
    map: &VariantMap,
    ladder: &ActionLadder,
    selected: &[PhotoId],
) -> Vec<PhotoId> {
    let prune = |sel: &[PhotoId]| -> Vec<PhotoId> {
        // keeper[parent] = selected variant with the highest quality,
        // lowest index on ties (the original, when selected: quality 1 > any
        // rendition's). HashMap lookups only — no iteration order leaks.
        let mut keeper: std::collections::HashMap<u32, (f64, u32)> =
            std::collections::HashMap::new();
        for &p in sel {
            let parent = map.parent[p.index()];
            let q = ladder.quality_of(map.level[p.index()]);
            let entry = keeper.entry(parent).or_insert((q, p.0));
            if q > entry.0 || (q == entry.0 && p.0 < entry.1) {
                *entry = (q, p.0);
            }
        }
        sel.iter()
            .copied()
            .filter(|&p| keeper.get(&map.parent[p.index()]).map(|e| e.1) == Some(p.0))
            .collect()
    };
    let kept = prune(selected);
    let refilled =
        par_algo::sharded_lazy_greedy_from(inst, &kept, par_algo::GreedyRule::CostBenefit).selected;
    // Algorithm 2 fills the budget even with near-zero gains, which can
    // re-introduce dominated renditions as filler; a final prune leaves
    // that budget unused instead of stored as junk.
    prune(&refilled)
}

/// A multi-action solve: the expanded instance, its variant map, and the
/// repaired selection with its ε-free quality.
#[derive(Debug, Clone)]
pub struct MultiActionSolve {
    /// The solved instance — expanded when the ladder has rungs, the plain
    /// remove-only instance for the delete-only ladder.
    pub instance: Instance,
    /// Variant-to-parent map for `instance` (identity when delete-only).
    pub map: VariantMap,
    /// The chosen actions, in selection (transcript) order: an original
    /// means *keep*, a variant means *recompress@level*, an absent photo
    /// means *delete*.
    pub selected: Vec<PhotoId>,
    /// ε-free quality of `selected` ([`epsilon_free_score`]).
    pub score: f64,
    /// Photos kept at full quality.
    pub kept_original: usize,
    /// Compressed renditions retained.
    pub kept_compressed: usize,
}

/// Solves the multi-action PAR model: expand with `ladder`, solve the
/// expanded instance (Algorithm 1 on the component-sharded solver when
/// `sharding`, the global one otherwise — bit-identical transcripts), then
/// apply the [`prune_and_refill`] repair, reporting whichever of the raw and
/// repaired selections scores higher on the ε-free objective (repaired on
/// ties).
///
/// The delete-only ladder takes the unexpanded path — same representation,
/// same solver, no repair — so its solution reproduces remove-only archival
/// *exactly*, bit for bit.
pub fn solve_multi_action(
    universe: &Universe,
    budget: u64,
    ladder: &ActionLadder,
    cfg: &RepresentationConfig,
    sharding: bool,
) -> Result<MultiActionSolve> {
    if ladder.is_empty() {
        let inst = represent(universe, budget, cfg)?;
        let out = main_algorithm_with(&inst, sharding);
        let map = VariantMap::identity(inst.num_photos());
        let kept_original = out.best.selected.len();
        return Ok(MultiActionSolve {
            map,
            selected: out.best.selected,
            score: out.best.score,
            kept_original,
            kept_compressed: 0,
            instance: inst,
        });
    }
    let (expanded, map) = expand_with_variants(universe, ladder);
    let inst = represent_with_variants(&expanded, &map, ladder, budget, cfg)?;
    let out = main_algorithm_with(&inst, sharding);
    let repaired = prune_and_refill(&inst, &map, ladder, &out.best.selected);
    let repaired_score = epsilon_free_score(&inst, &map, &repaired);
    let raw_score = epsilon_free_score(&inst, &map, &out.best.selected);
    let (selected, score) = if repaired_score >= raw_score {
        (repaired, repaired_score)
    } else {
        (out.best.selected, raw_score)
    };
    let mut kept_original = 0;
    let mut kept_compressed = 0;
    for &p in &selected {
        if map.is_original(p.index()) {
            kept_original += 1;
        } else {
            kept_compressed += 1;
        }
    }
    Ok(MultiActionSolve {
        instance: inst,
        map,
        selected,
        score,
        kept_original,
        kept_compressed,
    })
}

/// Outcome of the remove-vs-compress comparison. Both scores are measured
/// on the ε-free objective ([`epsilon_free_score`]), so they are directly
/// comparable.
#[derive(Debug, Clone)]
pub struct CompressionComparison {
    /// Quality of the remove-only solution (original model).
    pub remove_only: f64,
    /// ε-free quality of the multi-action solution on the expanded
    /// instance.
    pub with_compression: f64,
    /// Photos kept at full quality in the multi-action solution.
    pub kept_original: usize,
    /// Number of compressed renditions retained.
    pub kept_compressed: usize,
}

/// Runs the future-work experiment: same universe, same budget, with and
/// without the compression ladder, on the component-sharded solver.
pub fn compare_remove_vs_compress(
    universe: &Universe,
    budget: u64,
    ladder: &ActionLadder,
    cfg: &RepresentationConfig,
) -> Result<CompressionComparison> {
    compare_remove_vs_compress_with(universe, budget, ladder, cfg, true)
}

/// [`compare_remove_vs_compress`] with an explicit sharding choice (the
/// CLI's `--no-sharding` parity knob; transcripts are bit-identical either
/// way).
pub fn compare_remove_vs_compress_with(
    universe: &Universe,
    budget: u64,
    ladder: &ActionLadder,
    cfg: &RepresentationConfig,
    sharding: bool,
) -> Result<CompressionComparison> {
    let base = represent(universe, budget, cfg)?;
    let remove_only = main_algorithm_with(&base, sharding).best.score;
    let ma = solve_multi_action(universe, budget, ladder, cfg, sharding)?;
    Ok(CompressionComparison {
        remove_only,
        with_compression: ma.score,
        kept_original: ma.kept_original,
        kept_compressed: ma.kept_compressed,
    })
}

/// One point of a delete-only vs multi-action quality frontier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierPoint {
    /// The budget (bytes).
    pub budget: u64,
    /// Remove-only quality at this budget.
    pub delete_only: f64,
    /// Multi-action quality at this budget, on the expanded instance.
    /// Carries the renditions' ε relevance (bounded by the ladder size ×
    /// 1e-6, relative) — negligible at figure scale.
    pub multi_action: f64,
}

/// Figure-5-style frontier curves: delete-only vs multi-action quality
/// across `budgets`, each side swept with [`par_algo::quality_curve`]'s
/// prepared-decomposition path (one sharded preparation plus cheap prefix
/// evaluations per side, instead of one solve per budget per side).
pub fn multi_action_frontier(
    universe: &Universe,
    budgets: &[u64],
    ladder: &ActionLadder,
    cfg: &RepresentationConfig,
) -> Result<Vec<FrontierPoint>> {
    let max_budget = budgets.iter().copied().max().unwrap_or(1).max(1);
    let base = represent(universe, max_budget, cfg)?;
    let delete_only = quality_curve(&base, budgets);
    let multi = if ladder.is_empty() {
        delete_only.clone()
    } else {
        let (expanded, map) = expand_with_variants(universe, ladder);
        let inst = represent_with_variants(&expanded, &map, ladder, max_budget, cfg)?;
        quality_curve(&inst, budgets)
    };
    Ok(delete_only
        .iter()
        .zip(&multi)
        .map(|(d, m)| FrontierPoint {
            budget: d.budget,
            delete_only: d.score,
            multi_action: m.score,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use par_core::{Evaluator, Solution};
    use par_datasets::{generate_openimages, OpenImagesConfig};

    fn universe() -> Universe {
        generate_openimages(&OpenImagesConfig {
            name: "cmp".into(),
            photos: 120,
            target_subsets: 25,
            seed: 55,
            ..Default::default()
        })
    }

    #[test]
    fn ladder_validates_at_construction() {
        for (frac, quality) in [
            (0.0, 0.5),
            (1.0, 0.5),
            (-0.3, 0.5),
            (f64::NAN, 0.5),
            (f64::INFINITY, 0.5),
            (0.5, 0.0),
            (0.5, 1.0),
            (0.5, -1.0),
            (0.5, f64::NAN),
        ] {
            let err = ActionLadder::new(vec![CompressionLevel {
                size_fraction: frac,
                quality,
            }]);
            assert!(
                matches!(err, Err(PhocusError::InvalidLadder { level: 0, .. })),
                "({frac}, {quality}) must be rejected, got {err:?}"
            );
        }
        assert!(ActionLadder::new(DEFAULT_LADDER.to_vec()).is_ok());
        assert!(ActionLadder::new(Vec::new()).is_ok(), "empty ladder is valid");
        // The measured ladder passes its own validator.
        assert!(ActionLadder::new(ActionLadder::measured().levels().to_vec()).is_ok());
    }

    #[test]
    fn ladder_parses_the_cli_spec() {
        let l = ActionLadder::parse("0.85:0.35, 0.55:0.10").unwrap();
        assert_eq!(l.levels(), ActionLadder::standard().levels());
        assert!(ActionLadder::parse("").unwrap().is_empty());
        assert!(ActionLadder::parse("none").unwrap().is_empty());
        assert_eq!(ActionLadder::parse("paper").unwrap(), ActionLadder::measured());
        for bad in ["0.85", "a:b", "0.85:0.35,oops", "2.0:0.5", "0.5:nan"] {
            assert!(
                matches!(
                    ActionLadder::parse(bad),
                    Err(PhocusError::InvalidLadder { .. })
                ),
                "`{bad}` must be rejected"
            );
        }
        // The error names the offending entry, not just "entry 0".
        let Err(PhocusError::InvalidLadder { level, .. }) =
            ActionLadder::parse("0.85:0.35,broken")
        else {
            panic!("malformed second entry must fail");
        };
        assert_eq!(level, 1);
    }

    #[test]
    fn expansion_shape() {
        let u = universe();
        let (x, map) = expand_with_variants(&u, &ActionLadder::standard());
        assert_eq!(x.num_photos(), 120 * 3);
        assert_eq!(map.parent.len(), 360);
        assert!(map.is_original(0));
        assert!(!map.is_original(120));
        // Variant costs are fractions of the parent's.
        let p = map.parent[121] as usize;
        assert!(x.costs[121] < u.costs[p]);
        // Variants join their parent's subsets.
        assert!(x.subsets[0].members.len() > u.subsets[0].members.len());
    }

    #[test]
    fn delete_only_expansion_is_the_identity() {
        let u = universe();
        let (x, map) = expand_with_variants(&u, &ActionLadder::delete_only());
        assert_eq!(x.name, u.name, "no +compress suffix on the identity path");
        assert_eq!(x.names, u.names);
        assert_eq!(x.costs, u.costs);
        assert_eq!(x.subsets.len(), u.subsets.len());
        assert_eq!(map.parent.len(), u.num_photos());
        assert!((0..u.num_photos()).all(|i| map.is_original(i)));
    }

    #[test]
    fn required_photos_are_not_expanded() {
        let mut u = universe();
        u.required = vec![0, 1];
        let (x, map) = expand_with_variants(&u, &ActionLadder::standard());
        for (i, &p) in map.parent.iter().enumerate() {
            if !map.is_original(i) {
                assert!(p != 0 && p != 1, "required photo {p} got a variant");
            }
        }
        assert_eq!(x.required, vec![0, 1]);
    }

    #[test]
    fn compression_never_hurts_and_usually_helps_tight_budgets() {
        let u = universe();
        let budget = u.total_cost() / 12; // tight: compression should shine
        let cmp = compare_remove_vs_compress(
            &u,
            budget,
            &ActionLadder::standard(),
            &RepresentationConfig::default(),
        )
        .unwrap();
        assert!(
            cmp.with_compression >= cmp.remove_only - 1e-9,
            "compression made things worse: {} < {}",
            cmp.with_compression,
            cmp.remove_only
        );
        assert!(
            cmp.kept_compressed > 0,
            "ladder never used at a tight budget"
        );
        assert!(
            cmp.with_compression > 1.02 * cmp.remove_only,
            "expected a visible gain: {} vs {}",
            cmp.with_compression,
            cmp.remove_only
        );
        // Pinned ε-free numbers (both sides on the original photos'
        // demand): the old comparison read the expanded instance's exact
        // score — renditions' ε-demand included — so the headline was
        // slightly inflated and, worse, not on the same objective as the
        // remove-only side. These are the corrected values.
        let close = |x: f64, pin: f64| (x - pin).abs() <= 1e-6 * pin;
        assert!(
            close(cmp.remove_only, 149.72709166561123),
            "remove-only drifted: {}",
            cmp.remove_only
        );
        assert!(
            close(cmp.with_compression, 185.30881724362274),
            "multi-action drifted: {}",
            cmp.with_compression
        );
        assert_eq!((cmp.kept_original, cmp.kept_compressed), (2, 63));
    }

    #[test]
    fn epsilon_free_score_matches_exact_score_on_unexpanded_instances() {
        let u = universe();
        let budget = u.total_cost() / 10;
        let inst = represent(&u, budget, &RepresentationConfig::default()).unwrap();
        let out = par_algo::main_algorithm(&inst);
        let map = VariantMap::identity(inst.num_photos());
        let eps_free = epsilon_free_score(&inst, &map, &out.best.selected);
        let exact = par_core::exact_score(&inst, &out.best.selected);
        assert!(
            (eps_free - exact).abs() <= 1e-9 * exact.max(1.0),
            "{eps_free} vs {exact}"
        );
    }

    #[test]
    fn epsilon_free_score_discounts_rendition_demand() {
        // A selected variant's own ε-demand contributes to the expanded
        // instance's exact_score but not to the ε-free objective: scoring
        // the set of *all* variants (no originals) must differ between the
        // two exactly by the ε terms, i.e. the ε-free score only counts
        // their quality-scaled coverage of the originals.
        let u = universe();
        let ladder = ActionLadder::standard();
        let (x, map) = expand_with_variants(&u, &ladder);
        let inst = represent_with_variants(
            &x,
            &map,
            &ladder,
            x.total_cost(),
            &RepresentationConfig::default(),
        )
        .unwrap();
        let variants: Vec<PhotoId> = (0..inst.num_photos() as u32)
            .map(PhotoId)
            .filter(|p| !map.is_original(p.index()))
            .collect();
        let eps_free = epsilon_free_score(&inst, &map, &variants);
        let inflated = par_core::exact_score(&inst, &variants);
        assert!(eps_free > 0.0, "variants do cover the originals");
        assert!(
            eps_free < inflated,
            "ε-demand must inflate exact_score: {eps_free} vs {inflated}"
        );
        // The best rendition's quality bounds per-query coverage, so the
        // ε-free score of variants-only can never reach the top quality
        // (sims are stored as f32, so the bound quantizes with them).
        let total_weight: f64 = inst.subsets().iter().map(|q| q.weight).sum();
        assert!(eps_free <= (0.85f32 as f64) * total_weight + 1e-6);
    }

    #[test]
    fn prune_breaks_equal_quality_ties_by_lowest_index() {
        // A ladder with duplicate quality rungs: both renditions of one
        // parent tie on quality, and the old `quality >= best` filter kept
        // both. The fix keeps exactly one — the lowest-index twin.
        let dup = ActionLadder::new(vec![
            CompressionLevel {
                size_fraction: 0.30,
                quality: 0.70,
            },
            CompressionLevel {
                size_fraction: 0.25,
                quality: 0.70,
            },
        ])
        .unwrap();
        let u = universe();
        let (x, map) = expand_with_variants(&u, &dup);
        // Both same-quality renditions of photo 0, selected together. The
        // budget covers exactly the twins, so the refill pass cannot afford
        // the full-quality original — the prune's own tie-break decides.
        let twins: Vec<u32> = (0..x.num_photos() as u32)
            .filter(|&p| map.parent[p as usize] == 0 && !map.is_original(p as usize))
            .collect();
        assert_eq!(twins.len(), 2);
        let budget: u64 = twins.iter().map(|&p| x.costs[p as usize]).sum();
        let inst =
            represent_with_variants(&x, &map, &dup, budget, &RepresentationConfig::default())
                .unwrap();
        let twins: Vec<PhotoId> = twins.into_iter().map(PhotoId).collect();
        let repaired = prune_and_refill(&inst, &map, &dup, &twins);
        let kept_of_parent0: Vec<PhotoId> = repaired
            .iter()
            .copied()
            .filter(|p| map.parent[p.index()] == 0)
            .collect();
        assert_eq!(
            kept_of_parent0.len(),
            1,
            "equal-quality twins must collapse to one: {kept_of_parent0:?}"
        );
        assert_eq!(
            kept_of_parent0[0],
            *twins.iter().min().unwrap(),
            "ties break to the lowest index"
        );
    }

    #[test]
    fn greedy_does_not_keep_variants_alongside_originals() {
        // After the original is selected, any variant's coverage is fully
        // dominated (quality·SIM ≤ SIM), so original+variant pairs must not
        // occur. Two *compressed* renditions of one photo can legitimately
        // co-exist as an upgrade path (the thumbnail selected early, a
        // better rendition later) — a modeling artifact of PAR's lack of an
        // exclusivity constraint, documented in EXPERIMENTS.md.
        let u = universe();
        let budget = u.total_cost() / 12;
        let ladder = ActionLadder::standard();
        let (x, map) = expand_with_variants(&u, &ladder);
        let inst = represent_with_variants(
            &x,
            &map,
            &ladder,
            budget,
            &RepresentationConfig::default(),
        )
        .unwrap();
        let out = par_algo::main_algorithm(&inst);
        let repaired = prune_and_refill(&inst, &map, &ladder, &out.best.selected);
        // The repair pass never lowers the true objective (beyond the
        // pruned renditions' own ε-demand).
        let before = par_core::exact_score(&inst, &out.best.selected);
        let after = par_core::exact_score(&inst, &repaired);
        assert!(
            after >= before - 1e-3,
            "repair lost quality: {after} < {before}"
        );
        let mut kept_original = std::collections::HashSet::new();
        let mut kept_variant_parents = Vec::new();
        for &p in &repaired {
            if map.is_original(p.index()) {
                kept_original.insert(map.parent[p.index()]);
            } else {
                kept_variant_parents.push(map.parent[p.index()]);
            }
        }
        let redundant = kept_variant_parents
            .iter()
            .filter(|p| kept_original.contains(p))
            .count();
        assert_eq!(
            redundant, 0,
            "{redundant} variants kept alongside their full-quality original"
        );
        // The repaired selection keeps at most one action per photo.
        let mut seen = std::collections::HashSet::new();
        for &p in &repaired {
            assert!(
                seen.insert(map.parent[p.index()]),
                "two actions retained for parent {}",
                map.parent[p.index()]
            );
        }
    }

    #[test]
    fn variant_gain_is_dominated_after_original() {
        let u = universe();
        let ladder = ActionLadder::standard();
        let (x, map) = expand_with_variants(&u, &ladder);
        let inst = represent_with_variants(
            &x,
            &map,
            &ladder,
            x.total_cost(),
            &RepresentationConfig::default(),
        )
        .unwrap();
        let mut ev = Evaluator::new(&inst);
        // Pick a parent with variants: photo 0 (not required).
        let parent = par_core::PhotoId(0);
        let variant = par_core::PhotoId(
            map.parent
                .iter()
                .enumerate()
                .position(|(i, &p)| p == 0 && !map.is_original(i))
                .unwrap() as u32,
        );
        let gain_variant_alone = ev.gain(variant);
        ev.add(parent);
        let gain_variant_after = ev.gain(variant);
        assert!(gain_variant_after <= gain_variant_alone + 1e-9);
        // After the original, the variant only covers *itself* (its own
        // membership entries), which carry its scaled relevance.
        assert!(gain_variant_after < 0.5 * gain_variant_alone + 1e-9);
    }

    #[test]
    fn expanded_solutions_remain_feasible() {
        let u = universe();
        let budget = u.total_cost() / 10;
        let ladder = ActionLadder::standard();
        let (x, map) = expand_with_variants(&u, &ladder);
        let inst = represent_with_variants(
            &x,
            &map,
            &ladder,
            budget,
            &RepresentationConfig::default(),
        )
        .unwrap();
        let out = par_algo::main_algorithm(&inst);
        let sol = Solution::new(&inst, out.best.selected).unwrap();
        assert!(sol.cost() <= budget);
    }

    #[test]
    fn delete_only_solve_reproduces_remove_only_exactly() {
        let u = universe();
        let budget = u.total_cost() / 8;
        let cfg = RepresentationConfig::default();
        let base = represent(&u, budget, &cfg).unwrap();
        let remove_only = par_algo::main_algorithm_sharded(&base);
        let ma = solve_multi_action(&u, budget, &ActionLadder::delete_only(), &cfg, true).unwrap();
        assert_eq!(ma.selected, remove_only.best.selected);
        assert_eq!(ma.score.to_bits(), remove_only.best.score.to_bits());
        assert_eq!(ma.kept_original, remove_only.best.selected.len());
        assert_eq!(ma.kept_compressed, 0);
    }

    #[test]
    fn frontier_multi_action_dominates_delete_only() {
        let u = universe();
        let total = u.total_cost();
        let budgets: Vec<u64> = [24u64, 12, 8, 4, 2]
            .iter()
            .map(|d| total / d)
            .collect();
        let frontier = multi_action_frontier(
            &u,
            &budgets,
            &ActionLadder::standard(),
            &RepresentationConfig::default(),
        )
        .unwrap();
        assert_eq!(frontier.len(), budgets.len());
        // Both curves are prefix heuristics (a few percent below the true
        // greedy, bounded by the curve tests), so dominance holds up to
        // that slack rather than pointwise exactly.
        for p in &frontier {
            assert!(
                p.multi_action >= 0.97 * p.delete_only,
                "multi-action fell below delete-only at {}: {} vs {}",
                p.budget,
                p.multi_action,
                p.delete_only
            );
        }
        // At the tightest budgets (the first points — the frontier follows
        // the input budget order) the ladder visibly wins.
        assert!(
            frontier[0].multi_action > frontier[0].delete_only
                || frontier[1].multi_action > frontier[1].delete_only,
            "no visible frontier gap at tight budgets: {frontier:?}"
        );
        // Degenerate ladder: the two curves coincide.
        let flat = multi_action_frontier(
            &u,
            &budgets,
            &ActionLadder::delete_only(),
            &RepresentationConfig::default(),
        )
        .unwrap();
        for p in &flat {
            assert_eq!(p.delete_only.to_bits(), p.multi_action.to_bits());
        }
    }
}
