//! Epoch-resident archive sessions.
//!
//! A photo archive is not solved once: photos arrive and leave, query logs
//! drift, budgets change. [`ArchiveSession`] keeps a represented instance
//! *and* the warm solver state of [`par_algo::IncrementalSolver`] resident
//! across epochs, so each epoch costs a dirty-component re-solve plus cheap
//! transcript replay for the untouched components — while staying
//! bit-identical to a from-scratch solve of the post-delta instance.
//!
//! ```
//! use par_core::fixtures::{figure1_instance, MB};
//! use par_core::EpochDelta;
//! use phocus::ArchiveSession;
//!
//! let mut session = ArchiveSession::new(figure1_instance(4 * MB));
//! let first = session.resolve();
//! assert_eq!(first.epoch, 0);
//!
//! // A budget cut arrives; the chainable form applies and re-solves.
//! let delta = EpochDelta {
//!     set_budget: Some(3 * MB),
//!     ..EpochDelta::default()
//! };
//! let second = session.apply_delta(&delta).unwrap().resolve();
//! assert_eq!(second.epoch, 1);
//! assert!(second.outcome.best.cost <= 3 * MB);
//! ```
//!
//! Failure isolation mirrors `phocus serve-batch`: a delta that does not
//! apply (unknown id, budget below the required set, …) is rejected
//! atomically — the session keeps its instance, labels, and stream caches,
//! and the next delta applies against the unchanged state.

use crate::error::Result;
use par_algo::{DeltaStats, EpochReport, IncrementalSolver, MainOutcome};
use par_core::{EpochDelta, Instance};

/// One epoch's solve: the Algorithm 1 outcome plus the incremental-solver
/// instrumentation for this epoch.
#[derive(Debug, Clone)]
pub struct EpochSolve {
    /// 0-based epoch index (0 = the initial solve).
    pub epoch: usize,
    /// The Algorithm 1 outcome — bit-identical to a from-scratch sharded
    /// solve of the current instance.
    pub outcome: MainOutcome,
    /// Replay/live stream counts and gain-evaluation work for this epoch.
    pub report: EpochReport,
}

/// A resident archive session: a live instance plus warm per-component
/// solver state, advanced epoch by epoch via [`EpochDelta`]s.
#[derive(Debug, Clone)]
pub struct ArchiveSession {
    solver: IncrementalSolver,
    epoch: usize,
    last_delta: Option<DeltaStats>,
}

impl ArchiveSession {
    /// Opens a session on a represented instance. No solve happens yet;
    /// call [`resolve`](Self::resolve) for the initial solution.
    pub fn new(inst: Instance) -> Self {
        ArchiveSession {
            solver: IncrementalSolver::new(inst),
            epoch: 0,
            last_delta: None,
        }
    }

    /// Opens a session from a loaded `phocus-pack` image: the epoch-0 warm
    /// start. The instance and its component labels arrive prebuilt, so
    /// residence costs no text parse, no representation, and no union-find —
    /// the first [`resolve`](Self::resolve) goes straight to live solving
    /// and later epochs replay exactly as with [`new`](Self::new).
    pub fn from_packed(packed: par_core::PackedInstance) -> Self {
        ArchiveSession {
            solver: IncrementalSolver::with_labels(packed.instance, packed.labels),
            epoch: 0,
            last_delta: None,
        }
    }

    /// The live (post-all-applied-deltas) instance.
    pub fn instance(&self) -> &Instance {
        self.solver.instance()
    }

    /// 0-based index of the epoch the *next* [`resolve`](Self::resolve)
    /// will report.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Dirty-marking statistics of the most recent successful delta, if any.
    pub fn last_delta_stats(&self) -> Option<DeltaStats> {
        self.last_delta
    }

    /// Applies one epoch's changes. Returns `&mut self` so a delta and its
    /// re-solve chain naturally: `session.apply_delta(&d)?.resolve()`.
    ///
    /// On error the session is untouched — same instance, same warm caches —
    /// so callers can isolate a bad epoch and continue with the next one.
    pub fn apply_delta(&mut self, delta: &EpochDelta) -> Result<&mut Self> {
        let stats = self.solver.apply_delta(delta)?;
        self.last_delta = Some(stats);
        Ok(self)
    }

    /// Re-solves the current instance, replaying cached component streams
    /// where the last deltas left them clean. Advances the epoch counter.
    pub fn resolve(&mut self) -> EpochSolve {
        let outcome = self.solver.resolve();
        let report = *self.solver.last_report();
        let epoch = self.epoch;
        self.epoch += 1;
        EpochSolve {
            epoch,
            outcome,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use par_algo::main_algorithm_sharded;
    use par_core::fixtures::{random_instance, RandomInstanceConfig};
    use par_core::PhotoId;
    use par_datasets::{generate_churn, resolve_epoch, ChurnConfig};

    fn base(seed: u64) -> Instance {
        random_instance(
            seed,
            &RandomInstanceConfig {
                photos: 50,
                subsets: 16,
                subset_size: (2, 6),
                cost_range: (100, 900),
                budget_fraction: 0.5,
                required_prob: 0.05,
            },
        )
    }

    #[test]
    fn churn_trace_replay_matches_from_scratch() {
        let inst = base(21);
        let trace = generate_churn(
            &inst,
            &ChurnConfig {
                epochs: 6,
                removal_fraction: 0.04,
                arrivals_mean: 2.0,
                budget_wobble: 0.1,
                ..ChurnConfig::default()
            },
        )
        .unwrap();
        let mut session = ArchiveSession::new(inst);
        let first = session.resolve();
        assert_eq!(first.epoch, 0);
        for ops in &trace.epochs {
            let delta = resolve_epoch(ops, session.instance()).unwrap();
            let solve = session.apply_delta(&delta).unwrap().resolve();
            let scratch = main_algorithm_sharded(session.instance());
            assert_eq!(solve.outcome.best.selected, scratch.best.selected);
            assert_eq!(
                solve.outcome.best.score.to_bits(),
                scratch.best.score.to_bits()
            );
            assert_eq!(solve.outcome.winner, scratch.winner);
        }
        assert_eq!(session.epoch(), trace.epochs.len() + 1);
    }

    #[test]
    fn failed_delta_leaves_session_resident() {
        let mut session = ArchiveSession::new(base(33));
        session.resolve();
        let replayed_before = {
            let again = session.resolve();
            again.report.replayed_streams
        };
        let bad = EpochDelta {
            remove_photos: vec![PhotoId(10_000)],
            ..EpochDelta::default()
        };
        assert!(session.apply_delta(&bad).is_err());
        assert!(session.last_delta_stats().is_none());
        // The warm caches survived the rejected delta: everything replays.
        let after = session.resolve();
        assert_eq!(after.report.live_streams, 0);
        assert_eq!(after.report.replayed_streams, replayed_before);
    }
}
