//! Gain-kernel layout microbenchmarks: the straight-line memory-efficiency
//! numbers behind `BENCH_layout.json`.
//!
//! Every kernel is timed under an installed *serial* [`Parallelism`] so the
//! rows isolate data-layout effects (CSR/SoA similarity stores, flattened
//! evaluator arenas, fused `W(q)·R(q,j)` weights) from thread-count effects —
//! layout wins must hold on a single-core runner.
//!
//! Groups:
//!
//! * `layout_batch_gains` — all-candidate marginal-gain sweep on the 10k
//!   public slice, dense and τ-sparsified stores (the CELF seeding pattern);
//! * `layout_exact_score` — from-scratch scoring of a half-full solution
//!   (the verification / baseline-scoring pattern);
//! * `layout_add_remove` — incremental solution mutation round-trips (the
//!   local-search pattern).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use par_bench::{dataset, DatasetId, Scale};
use par_core::{exact_score, Evaluator, Instance, PhotoId};
use par_exec::Parallelism;
use phocus::{represent, RepresentationConfig, Sparsification};

/// Dense and τ-sparsified instances over the P-10K public slice.
fn instances() -> Vec<(&'static str, Instance)> {
    let u = dataset(DatasetId::P10K, Scale::Scaled);
    let budget = u.total_cost() / 5;
    let dense = represent(&u, budget, &RepresentationConfig::default()).unwrap();
    let sparse = represent(
        &u,
        budget,
        &RepresentationConfig {
            sparsification: Sparsification::Threshold { tau: 0.7 },
            ..Default::default()
        },
    )
    .unwrap();
    vec![("dense", dense), ("sparse", sparse)]
}

/// Evaluator with a half-full solution: realistic mid-run state.
fn half_full(inst: &Instance) -> Evaluator<'_> {
    let mut ev = Evaluator::new(inst);
    for p in (0..inst.num_photos() as u32).step_by(2) {
        ev.add(PhotoId(p));
    }
    ev
}

fn bench_batch_gains(c: &mut Criterion) {
    let prev = Parallelism::serial().install_global();
    let mut group = c.benchmark_group("layout_batch_gains");
    for (name, inst) in instances() {
        let ev = half_full(&inst);
        let all: Vec<PhotoId> = (0..inst.num_photos() as u32).map(PhotoId).collect();
        group.bench_with_input(BenchmarkId::new("batch_gains/10k", name), &ev, |b, ev| {
            b.iter(|| std::hint::black_box(ev.batch_gains(&all)))
        });
    }
    group.finish();
    prev.install_global();
}

fn bench_exact_score(c: &mut Criterion) {
    let prev = Parallelism::serial().install_global();
    let mut group = c.benchmark_group("layout_exact_score");
    for (name, inst) in instances() {
        let half: Vec<PhotoId> = (0..inst.num_photos() as u32)
            .step_by(2)
            .map(PhotoId)
            .collect();
        group.bench_function(BenchmarkId::new("exact_score/10k", name), |b| {
            b.iter(|| std::hint::black_box(exact_score(&inst, &half)))
        });
    }
    group.finish();
    prev.install_global();
}

fn bench_add_remove(c: &mut Criterion) {
    let prev = Parallelism::serial().install_global();
    let mut group = c.benchmark_group("layout_add_remove");
    for (name, inst) in instances() {
        let ev = half_full(&inst);
        // Round-trip the odd photos through the solution: every iteration
        // starts and ends at the same state, so the measured work is stable.
        let odds: Vec<PhotoId> = (1..inst.num_photos() as u32)
            .step_by(20)
            .map(PhotoId)
            .collect();
        group.bench_function(BenchmarkId::new("add_remove/10k", name), |b| {
            let mut ev = ev.clone();
            b.iter(|| {
                for &p in &odds {
                    ev.add(p);
                }
                for &p in &odds {
                    ev.remove(p);
                }
                std::hint::black_box(ev.score())
            })
        });
    }
    group.finish();
    prev.install_global();
}

criterion_group!(
    layout_benches,
    bench_batch_gains,
    bench_exact_score,
    bench_add_remove
);
criterion_main!(layout_benches);
