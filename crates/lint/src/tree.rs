//! Brace-aware token trees over the flat lexer stream.
//!
//! The PR 5 rules matched flat token *sequences*; the deeper rules
//! (`alloc-hot`, `cast-bounds`, `reduce-order`) need structure: which
//! tokens form a `fn` body, a call's argument list, a closure literal. A
//! [`Node`] tree supplies exactly that while staying an index view — every
//! node points back into the caller's `Vec<Tok>`, so spans are the lexer's
//! spans by construction and flattening a tree recovers the original token
//! order exactly (property-tested in `tests/fixtures.rs`).
//!
//! Error tolerance mirrors the lexer's: a stray closing delimiter becomes a
//! leaf, an unclosed group runs to end of input with `close: None`. The
//! compiler is the authority on well-formedness; the tree only needs to be
//! loss-free.

use crate::lexer::Tok;

/// One node of the token tree. Indices refer to the token slice the tree
/// was built from.
#[derive(Debug, Clone)]
pub enum Node {
    /// A non-delimiter token.
    Leaf(usize),
    /// A delimited group.
    Group(Group),
}

/// A `(…)`, `[…]`, or `{…}` group.
#[derive(Debug, Clone)]
pub struct Group {
    /// The opening delimiter: `(`, `[`, or `{`.
    pub delim: char,
    /// Token index of the opening delimiter.
    pub open: usize,
    /// Token index of the closing delimiter; `None` when the group is
    /// unterminated at end of input.
    pub close: Option<usize>,
    /// Child nodes between the delimiters, in source order.
    pub children: Vec<Node>,
}

fn closer_of(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

/// Builds the token tree for `code` (a comment-free token slice).
pub fn build(code: &[Tok]) -> Vec<Node> {
    // Stack of open groups; the bottom sink is the root sequence.
    let mut root: Vec<Node> = Vec::new();
    let mut stack: Vec<Group> = Vec::new();
    for (i, t) in code.iter().enumerate() {
        let c = t.text.chars().next().unwrap_or('\0');
        let is_open = t.is_punct('(') || t.is_punct('[') || t.is_punct('{');
        let is_close = t.is_punct(')') || t.is_punct(']') || t.is_punct('}');
        if is_open {
            stack.push(Group {
                delim: c,
                open: i,
                close: None,
                children: Vec::new(),
            });
        } else if is_close {
            match stack.pop() {
                Some(mut g) if closer_of(g.delim) == c => {
                    g.close = Some(i);
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(Node::Group(g)),
                        None => root.push(Node::Group(g)),
                    }
                }
                popped => {
                    // Mismatched or extra closer: keep it as a leaf so the
                    // flattened tree still reproduces the input.
                    if let Some(g) = popped {
                        stack.push(g);
                    }
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(Node::Leaf(i)),
                        None => root.push(Node::Leaf(i)),
                    }
                }
            }
        } else {
            match stack.last_mut() {
                Some(parent) => parent.children.push(Node::Leaf(i)),
                None => root.push(Node::Leaf(i)),
            }
        }
    }
    // Unterminated groups: close at end of input, then fold into parents.
    while let Some(g) = stack.pop() {
        match stack.last_mut() {
            Some(parent) => parent.children.push(Node::Group(g)),
            None => root.push(Node::Group(g)),
        }
    }
    root
}

/// Appends every token index of `nodes` to `out` in source order. On any
/// tree built by [`build`], the result is exactly `0..code.len()`.
pub fn flatten(nodes: &[Node], out: &mut Vec<usize>) {
    for n in nodes {
        match n {
            Node::Leaf(i) => out.push(*i),
            Node::Group(g) => {
                out.push(g.open);
                flatten(&g.children, out);
                if let Some(c) = g.close {
                    out.push(c);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn code(src: &str) -> Vec<Tok> {
        lex(src).into_iter().filter(|t| !t.is_comment()).collect()
    }

    fn roundtrip(src: &str) {
        let toks = code(src);
        let tree = build(&toks);
        let mut flat = Vec::new();
        flatten(&tree, &mut flat);
        assert_eq!(flat, (0..toks.len()).collect::<Vec<_>>(), "src: {src:?}");
    }

    #[test]
    fn nested_groups_roundtrip() {
        roundtrip("fn f(a: &[u32]) -> Vec<u32> { a.iter().map(|x| x + 1).collect() }");
    }

    #[test]
    fn stray_closers_and_unclosed_groups_roundtrip() {
        roundtrip(") } ] fn f( { [");
        roundtrip("fn f() { ( [ }");
    }

    #[test]
    fn body_group_is_found() {
        let toks = code("fn f(x: u32) { x + 1 }");
        let tree = build(&toks);
        let groups: Vec<&Group> = tree
            .iter()
            .filter_map(|n| match n {
                Node::Group(g) => Some(g),
                Node::Leaf(_) => None,
            })
            .collect();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].delim, '(');
        assert_eq!(groups[1].delim, '{');
        assert!(groups[1].close.is_some());
    }
}
