//! The Generalized Facility Location (GFL) formulation of a PAR instance
//! (Section 4.3, Figure 2 of the paper).
//!
//! The bipartite graph has left nodes `T_L = P` (weight = photo cost) and
//! right nodes `T_R = {(q, p) | p ∈ q}` (weight `w_R(q,p) = W(q)·R(q,p)`).
//! For every context `q` and members `p₁, p₂ ∈ q` there are edges
//! `p₁ → (q, p₂)` and `p₂ → (q, p₁)` of weight `SIM(q, p₁, p₂)`, plus the
//! unit self-edge `p → (q, p)`. The GFL objective
//!
//! ```text
//! F(S) = Σ_{(q,p) ∈ T_R} max_{edge (s, (q,p)), s ∈ S} weight(s, (q,p))
//! ```
//!
//! equals the PAR objective `G(S)` for every `S` (verified by tests); with
//! all weights 1 the formulation collapses to classical Facility Location —
//! the special case whose sparsification bounds the paper generalizes.

use par_core::{ContextSim, Instance, PhotoId, SubsetId};

/// A right node of the GFL bipartite graph: the pair `(q, p)` with weight
/// `W(q) · R(q, p)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RightNode {
    /// The context subset `q`.
    pub subset: SubsetId,
    /// Local index of `p` within `q`'s member list.
    pub local: u32,
    /// Node weight `W(q) · R(q, p)`.
    pub weight: f64,
}

/// The GFL formulation of a PAR instance.
#[derive(Debug, Clone)]
pub struct GflInstance {
    /// Left-node (photo) weights: storage costs in bytes.
    pub left_weights: Vec<u64>,
    /// Right nodes `(q, p)` with their weights.
    pub right: Vec<RightNode>,
    /// `edges[p]` lists `(right_index, weight)` for every edge incident to
    /// left node `p`, including the unit self-edge.
    pub edges: Vec<Vec<(u32, f32)>>,
    /// Budget on the total weight of selected left nodes.
    pub budget: u64,
}

impl GflInstance {
    /// Builds the GFL graph from a PAR instance, using the instance's stored
    /// (possibly sparsified) similarities as edge weights. Zero-weight edges
    /// are omitted — exactly mirroring sparse similarity storage.
    pub fn from_instance(inst: &Instance) -> Self {
        let n = inst.num_photos();
        let mut right = Vec::new();
        let mut edges: Vec<Vec<(u32, f32)>> = vec![Vec::new(); n];
        for q in inst.subsets() {
            let sim = inst.sim(q.id);
            for (local, (&p, &r)) in q.members.iter().zip(q.relevance.iter()).enumerate() {
                // phocus-lint: allow(cast-bounds) — right nodes = member_total, ≤ u32::MAX at pack time
                let right_idx = right.len() as u32;
                right.push(RightNode {
                    subset: q.id,
                    local: local as u32,
                    weight: q.weight * r,
                });
                // Self edge of weight 1.
                edges[p.index()].push((right_idx, 1.0));
                // Edges from each co-member with nonzero similarity. The
                // CSR store holds only nonzero entries, so its rows map to
                // edges directly without the zero filter.
                if let ContextSim::Sparse(sp) = sim {
                    let (ids, sims) = sp.neighbors(local);
                    for (&j, &s) in ids.iter().zip(sims) {
                        edges[q.members[j as usize].index()].push((right_idx, s));
                    }
                } else {
                    sim.for_neighbors(local, |j, s| {
                        if s > 0.0 {
                            edges[q.members[j].index()].push((right_idx, s as f32));
                        }
                    });
                }
            }
        }
        GflInstance {
            left_weights: inst.photos().iter().map(|p| p.cost).collect(),
            right,
            edges,
            budget: inst.budget(),
        }
    }

    /// Number of left nodes (photos).
    pub fn num_left(&self) -> usize {
        self.left_weights.len()
    }

    /// Number of right nodes (subset memberships).
    pub fn num_right(&self) -> usize {
        self.right.len()
    }

    /// Total right-node weight `W_R = Σ w_R(q,p)` — equals `Σ_q W(q)` since
    /// relevance is normalized per subset.
    pub fn total_right_weight(&self) -> f64 {
        self.right.iter().map(|r| r.weight).sum()
    }

    /// The GFL objective `F(S)` for a set of left nodes.
    pub fn score(&self, set: &[PhotoId]) -> f64 {
        let mut best = vec![0.0f64; self.right.len()];
        for &p in set {
            for &(ri, w) in &self.edges[p.index()] {
                let w = w as f64;
                if w > best[ri as usize] {
                    best[ri as usize] = w;
                }
            }
        }
        self.right
            .iter()
            .zip(&best)
            .map(|(r, &b)| r.weight * b)
            .sum()
    }

    /// Drops every non-self edge with weight `< tau` — the τ-sparsified GFL
    /// graph used by Theorem 4.8's coverage certificate.
    pub fn sparsify(&self, tau: f64) -> GflInstance {
        // Per-left-node edge filtering is independent; each filtered list
        // lands at its own index, identical to the serial pass.
        let edges = par_exec::par_map_slice(&self.edges, |l| {
            l.iter()
                .copied()
                .filter(|&(_, w)| w as f64 >= tau)
                .collect()
        });
        GflInstance {
            left_weights: self.left_weights.clone(),
            right: self.right.clone(),
            edges,
            budget: self.budget,
        }
    }

    /// Converts to a coverage instance: left node `p` covers right node `v`
    /// iff an edge `p → v` exists (weights ignored beyond existence). This is
    /// the Budgeted-Max-Coverage instance of Theorem 4.8.
    pub fn to_coverage(&self) -> crate::bmc::CoverageInstance {
        crate::bmc::CoverageInstance {
            element_weights: self.right.iter().map(|r| r.weight).collect(),
            set_costs: self.left_weights.clone(),
            covers: self
                .edges
                .iter()
                .map(|l| l.iter().map(|&(ri, _)| ri).collect())
                .collect(),
            budget: self.budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use par_core::exact_score;
    use par_core::fixtures::{figure1_instance, random_instance, RandomInstanceConfig, MB};

    #[test]
    fn figure1_gfl_shape_matches_figure2() {
        let inst = figure1_instance(4 * MB);
        let gfl = GflInstance::from_instance(&inst);
        assert_eq!(gfl.num_left(), 7);
        // T_R: q1 has 3 members, q2 has 3, q3 has 1, q4 has 2 → 9 nodes.
        assert_eq!(gfl.num_right(), 9);
        // w_R((q1,p1)) = 9 · 0.5 = 4.5.
        let r0 = gfl.right[0];
        assert_eq!(r0.subset, SubsetId(0));
        assert!((r0.weight - 4.5).abs() < 1e-12);
        // W_R = Σ W(q) = 14.
        assert!((gfl.total_right_weight() - 14.0).abs() < 1e-9);
    }

    #[test]
    fn gfl_objective_equals_par_objective() {
        let inst = figure1_instance(u64::MAX);
        let gfl = GflInstance::from_instance(&inst);
        let sets: Vec<Vec<PhotoId>> = vec![
            vec![],
            vec![PhotoId(0)],
            vec![PhotoId(0), PhotoId(5)],
            vec![PhotoId(1), PhotoId(3), PhotoId(6)],
            (0..7).map(PhotoId).collect(),
        ];
        for set in sets {
            let g = exact_score(&inst, &set);
            let f = gfl.score(&set);
            assert!((g - f).abs() < 1e-9, "G={g} F={f} for {set:?}");
        }
    }

    #[test]
    fn gfl_equivalence_on_random_instances() {
        let cfg = RandomInstanceConfig::default();
        for seed in 0..5 {
            let inst = random_instance(seed, &cfg);
            let gfl = GflInstance::from_instance(&inst);
            let set: Vec<PhotoId> = (0..inst.num_photos() as u32)
                .filter(|i| i % 3 == 0)
                .map(PhotoId)
                .collect();
            let g = exact_score(&inst, &set);
            let f = gfl.score(&set);
            assert!((g - f).abs() < 1e-6, "seed {seed}: G={g} F={f}");
        }
    }

    #[test]
    fn sparsify_keeps_self_edges() {
        let inst = figure1_instance(u64::MAX);
        let gfl = GflInstance::from_instance(&inst).sparsify(0.75);
        // Every photo still covers its own right nodes.
        for (p, edges) in gfl.edges.iter().enumerate() {
            let self_edges = edges.iter().filter(|&&(_, w)| w == 1.0).count();
            assert!(
                self_edges >= inst.memberships(PhotoId(p as u32)).len(),
                "photo {p} lost self edges"
            );
        }
        // SIM(q1,p1,p2)=0.7 < 0.75 is dropped; SIM(q1,p1,p3)=0.8 kept.
        let score_p1 = gfl.score(&[PhotoId(0)]);
        // p1 covers (q1,p1)=4.5·1 and (q1,p3)=1.8·0.8; (q1,p2) dropped.
        assert!((score_p1 - (4.5 + 1.8 * 0.8)).abs() < 1e-6, "{score_p1}");
    }

    #[test]
    fn coverage_conversion_counts_neighbors() {
        let inst = figure1_instance(u64::MAX);
        let cov = GflInstance::from_instance(&inst).to_coverage();
        assert_eq!(cov.covers.len(), 7);
        assert_eq!(cov.element_weights.len(), 9);
        // p6 (index 5) has self-edges in q2, q3, q4 plus neighbor edges to
        // (q2,p4), (q2,p5), (q4,p7).
        assert_eq!(cov.covers[5].len(), 6);
    }
}
