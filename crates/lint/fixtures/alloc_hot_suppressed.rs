//! Fixture: a hot-kernel allocation carrying a per-site rationale.

// phocus-lint: hot-kernel — fixture: per-pop scoring loop
pub fn score(xs: &[f64]) -> Vec<f64> {
    // phocus-lint: allow(alloc-hot) — fixture: single sized pass producing the return value
    xs.iter().map(|x| x * 2.0).collect()
}
