//! The [`Universe`]: a generated dataset *before* similarity materialization.
//!
//! A universe carries everything the paper's Data Representation Module
//! consumes — photos with names/costs/embeddings (and optional EXIF), subset
//! definitions with raw relevance scores and weights, and the policy-retained
//! set — but deliberately no similarity stores: committing to dense
//! (PHOcus-NS) or LSH-sparsified (PHOcus) similarities is the representation
//! module's job (`phocus::representation`).

use crate::error::DatasetError;
use par_embed::{Embedding, ExifData};

/// Definition of one pre-defined subset, by photo indices into the universe.
#[derive(Debug, Clone, PartialEq)]
pub struct SubsetDef {
    /// Human-readable label (query text, Open-Images label name, …).
    pub label: String,
    /// Importance weight `W(q)` (e.g. raw query/label frequency).
    pub weight: f64,
    /// Member photo indices.
    pub members: Vec<u32>,
    /// Raw (unnormalized) relevance scores parallel to `members`
    /// (e.g. label confidences or BM25 retrieval scores).
    pub relevance: Vec<f64>,
}

/// A generated photo corpus plus subset structure.
#[derive(Debug, Clone)]
pub struct Universe {
    /// Dataset name (e.g. `"P-5K"` or `"EC-Fashion"`).
    pub name: String,
    /// Photo names (file names / product titles).
    pub names: Vec<String>,
    /// Photo costs in bytes.
    pub costs: Vec<u64>,
    /// Global embeddings, one per photo.
    pub embeddings: Vec<Embedding>,
    /// Optional EXIF-like metadata, one per photo.
    pub exif: Option<Vec<ExifData>>,
    /// Pre-defined subset definitions.
    pub subsets: Vec<SubsetDef>,
    /// Indices of policy-retained photos (`S₀`).
    pub required: Vec<u32>,
}

impl Universe {
    /// Number of photos.
    pub fn num_photos(&self) -> usize {
        self.names.len()
    }

    /// Number of subsets.
    pub fn num_subsets(&self) -> usize {
        self.subsets.len()
    }

    /// Total archive cost in bytes. Saturates instead of wrapping on
    /// un-validated universes; [`Universe::validate`] rejects any corpus
    /// whose true total exceeds `u64`.
    pub fn total_cost(&self) -> u64 {
        self.costs.iter().fold(0u64, |acc, &c| acc.saturating_add(c))
    }

    /// Mean photo cost in bytes.
    pub fn mean_cost(&self) -> f64 {
        if self.costs.is_empty() {
            0.0
        } else {
            self.total_cost() as f64 / self.costs.len() as f64
        }
    }

    /// Mean subset size.
    pub fn mean_subset_size(&self) -> f64 {
        if self.subsets.is_empty() {
            0.0
        } else {
            self.subsets.iter().map(|s| s.members.len()).sum::<usize>() as f64
                / self.subsets.len() as f64
        }
    }

    /// Validates internal consistency (indices in range, parallel arrays,
    /// non-empty subsets, finite positive weights/relevances, no cost-sum
    /// overflow). Generators call this before returning; [`crate::from_text`]
    /// calls it on every parsed file, so malformed input surfaces as a typed
    /// [`DatasetError`] instead of a panic deeper in the pipeline.
    pub fn validate(&self) -> Result<(), DatasetError> {
        let invalid = |msg: String| Err(DatasetError::InvalidUniverse(msg));
        let n = self.num_photos();
        if self.costs.len() != n || self.embeddings.len() != n {
            return invalid("parallel photo arrays disagree in length".into());
        }
        if let Some(exif) = &self.exif {
            if exif.len() != n {
                return invalid("EXIF array length mismatch".into());
            }
        }
        let mut total: u64 = 0;
        for &c in &self.costs {
            total = match total.checked_add(c) {
                Some(t) => t,
                None => return Err(DatasetError::CostOverflow),
            };
        }
        for (i, s) in self.subsets.iter().enumerate() {
            if s.members.is_empty() {
                return invalid(format!("subset {i} ({}) is empty", s.label));
            }
            if s.members.len() != s.relevance.len() {
                return invalid(format!("subset {i} relevance length mismatch"));
            }
            if s.weight <= 0.0 || !s.weight.is_finite() {
                return invalid(format!("subset {i} has invalid weight {}", s.weight));
            }
            let mut seen = std::collections::HashSet::new();
            for &m in &s.members {
                if m as usize >= n {
                    return invalid(format!("subset {i} references photo {m} ≥ {n}"));
                }
                if !seen.insert(m) {
                    return invalid(format!("subset {i} repeats photo {m}"));
                }
            }
            for &r in &s.relevance {
                if r <= 0.0 || !r.is_finite() {
                    return invalid(format!("subset {i} has invalid relevance {r}"));
                }
            }
        }
        for &r in &self.required {
            if r as usize >= n {
                return invalid(format!("required photo {r} out of range"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use par_embed::Embedding;

    fn tiny() -> Universe {
        Universe {
            name: "tiny".into(),
            names: vec!["a".into(), "b".into()],
            costs: vec![10, 20],
            embeddings: vec![
                Embedding::new(vec![1.0, 0.0]),
                Embedding::new(vec![0.0, 1.0]),
            ],
            exif: None,
            subsets: vec![SubsetDef {
                label: "q".into(),
                weight: 2.0,
                members: vec![0, 1],
                relevance: vec![1.0, 3.0],
            }],
            required: vec![0],
        }
    }

    #[test]
    fn valid_universe_passes() {
        assert!(tiny().validate().is_ok());
        assert_eq!(tiny().num_photos(), 2);
        assert_eq!(tiny().total_cost(), 30);
        assert!((tiny().mean_cost() - 15.0).abs() < 1e-12);
        assert!((tiny().mean_subset_size() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detects_bad_member_index() {
        let mut u = tiny();
        u.subsets[0].members[1] = 9;
        assert!(u.validate().is_err());
    }

    #[test]
    fn detects_duplicate_member() {
        let mut u = tiny();
        u.subsets[0].members[1] = 0;
        assert!(u.validate().is_err());
    }

    #[test]
    fn detects_negative_relevance() {
        let mut u = tiny();
        u.subsets[0].relevance[0] = -1.0;
        assert!(u.validate().is_err());
    }

    #[test]
    fn detects_out_of_range_required() {
        let mut u = tiny();
        u.required = vec![5];
        assert!(u.validate().is_err());
    }
}
