//! Offline shim of a scoped thread pool: a fixed set of persistent, parked
//! worker threads that can run *borrowed* (non-`'static`) closures.
//!
//! The workspace's parallel kernels are called millions of times per fleet
//! run; spawning and joining OS threads per call (as `std::thread::scope`
//! does) taxes every invocation. This shim keeps workers resident: they park
//! on a condvar-guarded queue and wake only to run dispatched tasks, so a
//! `scoped` round trip is two mutex operations per task instead of a thread
//! spawn + join.
//!
//! # Safety
//!
//! Running borrowed closures on threads that outlive the borrow is not
//! expressible in safe Rust; every scoped-pool crate (rayon,
//! `scoped_threadpool`, crossbeam's scope) performs the same lifetime
//! erasure this shim does. The workspace's no-unsafe policy routes that
//! unavoidable `unsafe` here, into a vendored shim with the invariants
//! written down:
//!
//! * **Single erasure site.** The only `unsafe` in the crate is one
//!   `transmute` in [`Scope::execute`] that widens a task's lifetime from
//!   `'scope` to `'static` so it can cross the channel to a worker.
//! * **The scope outlives every task.** [`Pool::scoped`] does not return —
//!   even when the scope body unwinds — until every dispatched task has
//!   finished running. A drop guard performs the wait, so unwinding cannot
//!   skip it. Therefore no task can observe its borrows after they expire,
//!   which is exactly the property the transmute asserts.
//! * **`'scope` is pinned by the caller.** The scope body is bounded by
//!   `'scope` (mirroring `std::thread::scope` / rayon), so borrowck proves
//!   every capture lives at least as long as the `scoped` call itself.
//! * **Panics don't leak tasks.** Workers run each task under
//!   `catch_unwind`; completion is signalled from a drop-safe path, and the
//!   first captured payload is re-raised on the caller once all tasks are
//!   accounted for.

use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// A task after lifetime erasure, as the queue stores it.
type Task = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is one of a [`Pool`]'s worker threads.
///
/// Callers use this to break potential deadlocks: a task that itself tries
/// to fan work out through the pool could block waiting for workers that are
/// all busy (possibly on *it*). Checking this flag and falling back to a
/// serial path keeps workers from ever blocking on pool capacity.
pub fn current_thread_is_worker() -> bool {
    IS_POOL_WORKER.with(Cell::get)
}

/// Recovers the guard from a poisoned mutex.
///
/// Workers run tasks under `catch_unwind`, so the queue mutex is never held
/// across user code and poisoning is practically unreachable; if it does
/// happen, the queue's state (a `VecDeque` of boxed closures) is valid after
/// any partial operation, so continuing is sound.
fn lock_queue(m: &Mutex<QueueState>) -> MutexGuard<'_, QueueState> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct QueueState {
    tasks: VecDeque<Task>,
}

struct Queue {
    state: Mutex<QueueState>,
    available: Condvar,
}

impl Queue {
    fn push(&self, task: Task) {
        lock_queue(&self.state).tasks.push_back(task);
        self.available.notify_one();
    }

    /// Blocks (parking the calling worker) until a task is available.
    fn pop(&self) -> Task {
        let mut guard = lock_queue(&self.state);
        loop {
            if let Some(task) = guard.tasks.pop_front() {
                return task;
            }
            guard = self
                .available
                .wait(guard)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// Tracks the in-flight tasks of one `scoped` call and the first panic
/// payload any of them produced.
struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeState {
    fn new() -> Self {
        ScopeState {
            pending: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn task_started(&self) {
        *self
            .pending
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) += 1;
    }

    fn task_finished(&self, payload: Option<Box<dyn std::any::Any + Send>>) {
        if let Some(p) = payload {
            let mut slot = self
                .panic
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if slot.is_none() {
                *slot = Some(p);
            }
        }
        let mut pending = self
            .pending
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every dispatched task of this scope has finished.
    fn wait_all(&self) {
        let mut pending = self
            .pending
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while *pending > 0 {
            pending = self
                .done
                .wait(pending)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.panic
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
    }
}

/// Waits for all of a scope's tasks even if the scope body unwinds.
///
/// This guard is the soundness linchpin: `Scope::execute`'s lifetime erasure
/// is only valid because *nothing* — including a panic in the scope body —
/// can return control past this wait while tasks still run on borrows.
struct WaitGuard<'a>(&'a ScopeState);

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        self.0.wait_all();
    }
}

/// Dispatch handle passed to the body of [`Pool::scoped`].
///
/// `'scope` is invariant (via the `*mut` marker) so the compiler cannot
/// shrink it below the region the caller's borrows require — the same trick
/// `std::thread::Scope` uses.
pub struct Scope<'pool, 'scope> {
    pool: &'pool Pool,
    state: Arc<ScopeState>,
    _invariant: PhantomData<*mut &'scope ()>,
}

impl<'scope> Scope<'_, 'scope> {
    /// Dispatches `f` to a pool worker. Returns immediately; the enclosing
    /// [`Pool::scoped`] call waits for completion.
    ///
    /// If the pool has no workers (spawn failure at construction), `f` runs
    /// inline on the caller so the scope still makes progress.
    pub fn execute<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        if self.pool.workers == 0 {
            f();
            return;
        }
        let erased: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: this widens the closure's lifetime from `'scope` to
        // `'static` so it can be queued for a persistent worker. The
        // enclosing `Pool::scoped` call is bounded by `'scope` and cannot
        // return (normally or by unwind — see `WaitGuard`) until
        // `ScopeState::wait_all` observes this task finished, so the closure
        // never runs, and is dropped, after any of its borrows expire.
        let erased: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(
                erased,
            )
        };
        self.state.task_started();
        let state = Arc::clone(&self.state);
        self.pool.queue.push(Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(erased));
            state.task_finished(result.err());
        }));
    }
}

/// A fixed-size pool of persistent, parked worker threads.
///
/// Workers are spawned once at construction and never exit; they park on a
/// condvar when the queue is empty. The pool is meant to be stored in a
/// process-wide `OnceLock` and shared by reference.
pub struct Pool {
    queue: Arc<Queue>,
    workers: usize,
}

impl Pool {
    /// Spawns `workers` parked worker threads.
    ///
    /// If the OS refuses some spawns the pool holds however many succeeded
    /// (possibly zero — `scoped` then degrades to inline execution).
    pub fn new(workers: usize) -> Pool {
        let queue = Arc::new(Queue {
            state: Mutex::new(QueueState {
                tasks: VecDeque::new(),
            }),
            available: Condvar::new(),
        });
        let mut spawned = 0;
        for k in 0..workers {
            let q = Arc::clone(&queue);
            let spawn = std::thread::Builder::new()
                .name(format!("scoped-pool-{k}"))
                .spawn(move || {
                    IS_POOL_WORKER.with(|f| f.set(true));
                    loop {
                        let task = q.pop();
                        task();
                    }
                });
            if spawn.is_ok() {
                spawned += 1;
            }
        }
        Pool {
            queue,
            workers: spawned,
        }
    }

    /// The number of live worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `body` with a [`Scope`] that can dispatch borrowed closures to
    /// the pool, and waits for every dispatched task before returning.
    ///
    /// If any task panicked, the first payload is re-raised here after all
    /// tasks finish (mirroring `std::thread::scope`). If `body` itself
    /// panics, the wait still happens — see [`WaitGuard`] — and `body`'s
    /// panic wins.
    pub fn scoped<'pool, 'scope, F, R>(&'pool self, body: F) -> R
    where
        F: FnOnce(&Scope<'pool, 'scope>) -> R,
    {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState::new()),
            _invariant: PhantomData,
        };
        let ret = {
            let _guard = WaitGuard(&scope.state);
            body(&scope)
            // `_guard` drops here: blocks until all dispatched tasks are
            // done, whether `body` returned or is unwinding.
        };
        if let Some(payload) = scope.state.take_panic() {
            resume_unwind(payload);
        }
        ret
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.workers)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_borrowed_closures() {
        let pool = Pool::new(2);
        let mut data = vec![0u32; 8];
        pool.scoped(|scope| {
            for (i, slot) in data.iter_mut().enumerate() {
                scope.execute(move || *slot = i as u32 * 10);
            }
        });
        assert_eq!(data, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn reuse_across_many_scopes() {
        let pool = Pool::new(2);
        let counter = AtomicUsize::new(0);
        for _ in 0..500 {
            pool.scoped(|scope| {
                scope.execute(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
                scope.execute(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn worker_flag_is_set_on_workers_only() {
        let pool = Pool::new(1);
        assert!(!current_thread_is_worker());
        let mut on_worker = false;
        pool.scoped(|scope| {
            scope.execute(|| on_worker = current_thread_is_worker());
        });
        assert!(on_worker);
        assert!(!current_thread_is_worker());
    }

    #[test]
    fn task_panic_propagates_after_all_tasks_finish() {
        let pool = Pool::new(2);
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|scope| {
                scope.execute(|| panic!("task boom"));
                for _ in 0..8 {
                    scope.execute(|| {
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "task panic must surface on the caller");
        assert_eq!(finished.load(Ordering::Relaxed), 8);
        // The pool must survive a panicked task.
        let mut x = 0;
        pool.scoped(|scope| scope.execute(|| x = 7));
        assert_eq!(x, 7);
    }

    #[test]
    fn body_panic_still_waits_for_tasks() {
        let pool = Pool::new(1);
        let data = Mutex::new(Vec::new());
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|scope| {
                scope.execute(|| {
                    data.lock().unwrap().push(1u8);
                });
                panic!("body boom");
            });
        }));
        assert!(result.is_err());
        // The task referenced `data`, a local of this frame; reaching this
        // line with the push visible proves the scope waited before unwind
        // crossed the borrow.
        assert_eq!(*data.lock().unwrap(), vec![1u8]);
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = Pool {
            queue: Arc::new(Queue {
                state: Mutex::new(QueueState {
                    tasks: VecDeque::new(),
                }),
                available: Condvar::new(),
            }),
            workers: 0,
        };
        let mut x = 0;
        pool.scoped(|scope| scope.execute(|| x = 42));
        assert_eq!(x, 42);
    }
}
