//! Offline, dependency-free shim of the `criterion` API surface used by this
//! workspace's benches.
//!
//! The real criterion crate cannot be fetched in this build environment.
//! This shim keeps the bench sources compiling unchanged and produces honest
//! (if statistically simpler) measurements: each benchmark is warmed up,
//! then timed over enough iterations to pass a minimum measurement window,
//! and the per-iteration mean, minimum and maximum are printed in a
//! criterion-like format.
//!
//! Set `CRITERION_QUICK=1` to shrink the measurement window (used by CI
//! smoke runs); set `CRITERION_JSON=path` to append one JSON line per
//! benchmark for machine-readable capture.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-exported measurement hint (mirrors `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier composed of a function name and a parameter
/// (mirrors `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates `"{name}/{parameter}"`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing driver handed to bench closures (mirrors
/// `criterion::Bencher`).
pub struct Bencher {
    samples: Vec<Duration>,
    measure_for: Duration,
}

impl Bencher {
    /// Times `f` repeatedly and records per-iteration durations.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warmup: one untimed call (plus JIT-free Rust means this mostly
        // warms caches and the allocator).
        black_box(f());
        let window = self.measure_for;
        let started = Instant::now();
        while started.elapsed() < window || self.samples.len() < 5 {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
            if self.samples.len() >= 1_000_000 {
                break;
            }
        }
    }
}

/// A group of related benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes its sample window by
    /// wall-clock, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measure_for = t.min(Duration::from_secs(2));
        self
    }

    /// Runs a named benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Runs a named benchmark receiving a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Ends the group (mirrors criterion; nothing to flush in the shim).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point (mirrors `criterion::Criterion`).
pub struct Criterion {
    measure_for: Duration,
    json_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0");
        Criterion {
            measure_for: if quick {
                Duration::from_millis(60)
            } else {
                Duration::from_millis(400)
            },
            json_path: std::env::var("CRITERION_JSON").ok(),
        }
    }
}

impl Criterion {
    /// Runs a top-level named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(name, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    fn run_one(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            measure_for: self.measure_for,
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{name:<48} (no samples)");
            return;
        }
        let total: Duration = b.samples.iter().sum();
        let mean = total / b.samples.len() as u32;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        let max = b.samples.iter().max().copied().unwrap_or_default();
        println!(
            "{name:<48} time: [{} {} {}]  ({} samples)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            b.samples.len()
        );
        if let Some(path) = &self.json_path {
            let mut line = String::new();
            let _ = write!(
                line,
                "{{\"bench\":\"{name}\",\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{}}}",
                mean.as_nanos(),
                min.as_nanos(),
                max.as_nanos(),
                b.samples.len()
            );
            let _ = append_line(path, &line);
        }
    }
}

fn append_line(path: &str, line: &str) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{line}")
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Collects bench functions into a runnable group (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups (mirrors
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; skip the actual
            // measurement there so test runs stay fast.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion {
            measure_for: Duration::from_millis(5),
            json_path: None,
        };
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| black_box(2 * 2)));
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(5)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).contains('s'));
    }
}
