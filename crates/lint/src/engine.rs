//! Workspace discovery and the lint driver.
//!
//! Crates are discovered from the root `Cargo.toml`'s `workspace.members`
//! list — never from a hard-coded inventory — so a newly added crate is
//! audited (and panic-gated, via [`gate_crates`]) automatically.

use crate::context::{CrateCategory, FileContext, FileKind, FileSpec};
use crate::diag::Diagnostic;
use crate::manifest::{parse_crate_manifest, parse_members, CrateManifest};
use crate::rules;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Engine failure: the workspace itself could not be read or understood.
/// (Rule findings are [`Diagnostic`]s, not errors.)
#[derive(Debug)]
pub enum LintError {
    /// A file the engine needs could not be read.
    Io {
        /// The offending path.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The root manifest has no usable `workspace.members`.
    Workspace {
        /// What was wrong.
        msg: String,
    },
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, source } => write!(f, "{path}: {source}"),
            LintError::Workspace { msg } => write!(f, "workspace: {msg}"),
        }
    }
}

impl std::error::Error for LintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LintError::Io { source, .. } => Some(source),
            LintError::Workspace { .. } => None,
        }
    }
}

/// Outcome of a full workspace run.
#[derive(Debug)]
pub struct Report {
    /// All surviving diagnostics, sorted by (path, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of workspace crates discovered (vendor shims included).
    pub crates: usize,
}

struct CrateInfo {
    /// Workspace-relative member path (e.g. `crates/algo`).
    member: String,
    manifest: CrateManifest,
    category: CrateCategory,
}

fn categorize(member: &str) -> CrateCategory {
    if member.starts_with("crates/vendor") {
        CrateCategory::Vendor
    } else if member == "crates/bench" {
        CrateCategory::BenchHarness
    } else if member == "examples" {
        CrateCategory::Examples
    } else if member == "tests" {
        CrateCategory::TestCrate
    } else {
        CrateCategory::Library
    }
}

fn read(path: &Path) -> Result<String, LintError> {
    fs::read_to_string(path).map_err(|source| LintError::Io {
        path: path.display().to_string(),
        source,
    })
}

fn discover(root: &Path) -> Result<Vec<CrateInfo>, LintError> {
    let root_manifest = read(&root.join("Cargo.toml"))?;
    let members = parse_members(&root_manifest);
    if members.is_empty() {
        return Err(LintError::Workspace {
            msg: format!(
                "no workspace.members found in {}",
                root.join("Cargo.toml").display()
            ),
        });
    }
    let mut crates = Vec::with_capacity(members.len());
    for member in members {
        let manifest = parse_crate_manifest(&read(&root.join(&member).join("Cargo.toml"))?);
        let category = categorize(&member);
        crates.push(CrateInfo {
            member,
            manifest,
            category,
        });
    }
    Ok(crates)
}

/// The panic-freedom gate list: every non-vendor library crate under
/// `crates/` (the bench harness is exempt by policy — its benches and
/// runner binaries are perf instrumentation, like tests). Sorted.
pub fn gate_crates(root: &Path) -> Result<Vec<String>, LintError> {
    let crates = discover(root)?;
    let mut names: Vec<String> = crates
        .iter()
        .filter(|c| c.category == CrateCategory::Library)
        .map(|c| c.manifest.name.clone())
        .collect();
    names.sort();
    Ok(names)
}

/// Recursively collects `.rs` files under `dir`, sorted by path so the
/// diagnostic order never depends on directory-entry order.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(ref e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(source) => {
            return Err(LintError::Io {
                path: dir.display().to_string(),
                source,
            })
        }
    };
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| LintError::Io {
            path: dir.display().to_string(),
            source,
        })?;
        paths.push(entry.path());
    }
    paths.sort();
    for p in paths {
        if p.is_dir() {
            rs_files(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Runs every rule over the workspace rooted at `root`.
pub fn run(root: &Path) -> Result<Report, LintError> {
    let crates = discover(root)?;
    let gate = {
        let mut names: Vec<String> = crates
            .iter()
            .filter(|c| c.category == CrateCategory::Library)
            .map(|c| c.manifest.name.clone())
            .collect();
        names.sort();
        names
    };

    let mut diagnostics: Vec<Diagnostic> = Vec::new();

    // Workspace-level rules: the crate DAG and the CI gate.
    for c in &crates {
        let manifest_path = format!("{}/Cargo.toml", c.member);
        rules::architecture::check_dag(&manifest_path, &c.manifest, &mut diagnostics);
    }
    match fs::read_to_string(root.join("ci.sh")) {
        Ok(ci_src) => rules::ci::check_ci("ci.sh", &ci_src, &gate, &mut diagnostics),
        Err(_) => diagnostics.push(Diagnostic {
            rule: "ci-gate",
            path: "ci.sh".to_string(),
            line: 1,
            col: 1,
            message: "ci.sh not found at the workspace root".to_string(),
        }),
    }

    // File- and crate-level rules over every non-vendor crate. Sources are
    // gathered first so the crate-scoped rules (call graph, scopes) can see
    // every file of a crate at once.
    let mut files_scanned = 0usize;
    for c in &crates {
        if c.category == CrateCategory::Vendor {
            continue;
        }
        let mut sources: Vec<(String, FileKind, String)> = Vec::new();
        for (sub, default_kind) in [
            ("src", FileKind::Lib),
            ("benches", FileKind::Bench),
            ("tests", FileKind::Test),
        ] {
            let mut files = Vec::new();
            rs_files(&root.join(&c.member).join(sub), &mut files)?;
            for file in files {
                let rel = file
                    .strip_prefix(root)
                    .unwrap_or(&file)
                    .display()
                    .to_string();
                let kind = if c.category == CrateCategory::TestCrate {
                    FileKind::Test
                } else if sub == "src" && rel.contains("/bin/") {
                    FileKind::Bin
                } else {
                    default_kind
                };
                let src = read(&file)?;
                sources.push((rel, kind, src));
            }
        }
        let contexts: Vec<FileContext<'_>> = sources
            .iter()
            .map(|(rel, kind, src)| {
                FileContext::new(
                    FileSpec {
                        path: rel,
                        crate_name: &c.manifest.name,
                        category: c.category,
                        kind: *kind,
                    },
                    src,
                )
            })
            .collect();
        for ctx in &contexts {
            diagnostics.extend(rules::run_file_rules(ctx));
            files_scanned += 1;
        }
        diagnostics.extend(rules::run_crate_rules(&contexts));
    }

    diagnostics.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok(Report {
        diagnostics,
        files_scanned,
        crates: crates.len(),
    })
}
