//! Table 2 of the paper: dataset statistics (name, photo count, subset
//! count), paper-reported vs measured for our generators.

use crate::ecommerce::{generate_ecommerce, EcConfig, EcDomain};
use crate::openimages::{generate_openimages, PublicScale};

/// One row of Table 2, paper numbers alongside generator numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Dataset name.
    pub name: String,
    /// Photos as reported in the paper.
    pub paper_photos: usize,
    /// Subsets as reported in the paper.
    pub paper_subsets: usize,
    /// Photos produced by our generator.
    pub measured_photos: usize,
    /// Subsets produced by our generator.
    pub measured_subsets: usize,
}

/// Generates all eight datasets and returns the Table 2 rows.
///
/// `full` regenerates at paper scale (P-100K takes a while); otherwise the
/// public family is generated at paper scale up to P-10K and the two largest
/// public scales plus the EC domains are scaled down by `scale_divisor`.
pub fn table2_rows(full: bool, seed: u64) -> Vec<Table2Row> {
    let mut rows = Vec::new();
    for scale in [
        PublicScale::P1K,
        PublicScale::P5K,
        PublicScale::P10K,
        PublicScale::P50K,
        PublicScale::P100K,
    ] {
        let mut cfg = scale.config(seed);
        if !full && scale.photos() > 10_000 {
            let div = scale.photos() / 10_000;
            cfg.photos /= div;
            cfg.target_subsets /= div;
        }
        let u = generate_openimages(&cfg);
        rows.push(Table2Row {
            name: scale.name().to_string(),
            paper_photos: scale.photos(),
            paper_subsets: scale.paper_subsets(),
            measured_photos: u.num_photos(),
            measured_subsets: u.num_subsets(),
        });
    }
    for (salt, domain) in [
        EcDomain::Fashion,
        EcDomain::Electronics,
        EcDomain::HomeGarden,
    ]
    .into_iter()
    .enumerate()
    {
        let seed = seed ^ ((salt as u64 + 1) << 32);
        let cfg = if full {
            EcConfig::paper(domain, seed)
        } else {
            EcConfig::small(domain, seed)
        };
        let u = generate_ecommerce(&cfg);
        rows.push(Table2Row {
            name: domain.name().to_string(),
            paper_photos: domain.paper_photos(),
            paper_subsets: 250,
            measured_photos: u.num_photos(),
            measured_subsets: u.num_subsets(),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_table_has_eight_rows() {
        let rows = table2_rows(false, 11);
        assert_eq!(rows.len(), 8);
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "P-1K",
                "P-5K",
                "P-10K",
                "P-50K",
                "P-100K",
                "EC-Fashion",
                "EC-Electronics",
                "EC-Home & Garden"
            ]
        );
        for r in &rows {
            assert!(r.measured_photos > 0 && r.measured_subsets > 0);
        }
    }

    #[test]
    fn small_public_scales_match_paper_photo_counts() {
        let rows = table2_rows(false, 2);
        assert_eq!(rows[0].measured_photos, 1_000);
        assert_eq!(rows[1].measured_photos, 5_000);
        assert_eq!(rows[2].measured_photos, 10_000);
    }
}
