//! The validated PAR [`Instance`] and its [`InstanceBuilder`].
//!
//! An instance is the paper's tuple `⟨P, S₀, Q, C, W, R, SIM, B⟩` in
//! materialized form. Construction goes through [`InstanceBuilder`], which
//! normalizes relevance scores, validates every invariant of Section 3.1, and
//! materializes per-subset similarity stores from a
//! [`SimilarityProvider`] (or accepts pre-built
//! [`ContextSim`] stores, e.g. from an LSH pipeline).
//!
//! The heavyweight parts of an instance (photos, subsets, similarities, the
//! membership reverse-index) live behind an [`Arc`], so deriving variants —
//! a different budget for a sweep, a τ-sparsified similarity, a unit-similarity
//! view for the Greedy-NR baseline — is cheap.

use crate::sim::{ContextSim, DenseSim};
use crate::{ModelError, Photo, PhotoId, Result, SimilarityProvider, Subset, SubsetId};
use std::sync::Arc;

/// One entry of the photo → subset reverse index: photo appears in `subset`
/// at local member index `local`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Membership {
    /// The subset containing the photo.
    pub subset: SubsetId,
    /// The photo's local index within that subset's member list.
    pub local: u32,
}

/// Immutable core of an instance, shared between budget/similarity variants.
#[derive(Debug)]
struct Core {
    photos: Vec<Photo>,
    required: Vec<bool>,
    required_ids: Vec<PhotoId>,
    required_cost: u64,
    subsets: Vec<Subset>,
    /// CSR reverse index: photo `p`'s memberships are
    /// `membership_data[membership_offsets[p] .. membership_offsets[p + 1]]`.
    /// Flat storage keeps the per-epoch instance rebuild of
    /// [`crate::delta`] to two allocations and the hot coverage loops of
    /// [`crate::objective`] on one contiguous buffer.
    membership_offsets: Vec<u32>,
    membership_data: Vec<Membership>,
    total_cost: u64,
}

/// A validated PAR problem instance.
///
/// Cheap to clone: similarity stores and the core share `Arc`s. Use
/// [`Instance::with_budget`] for budget sweeps and [`Instance::sparsify`] /
/// [`Instance::with_sims`] to derive similarity variants over the same data.
#[derive(Debug, Clone)]
pub struct Instance {
    core: Arc<Core>,
    /// One store per subset; each store is individually `Arc`ed so component
    /// sub-views (see [`crate::components`]) can share unsplit stores with
    /// their parent instance.
    sims: Arc<Vec<Arc<ContextSim>>>,
    budget: u64,
}

impl Instance {
    /// Number of photos `n = |P|`.
    #[inline]
    pub fn num_photos(&self) -> usize {
        self.core.photos.len()
    }

    /// Number of pre-defined subsets `|Q|`.
    #[inline]
    pub fn num_subsets(&self) -> usize {
        self.core.subsets.len()
    }

    /// All photos, indexed by [`PhotoId`].
    #[inline]
    pub fn photos(&self) -> &[Photo] {
        &self.core.photos
    }

    /// The photo with the given id.
    #[inline]
    pub fn photo(&self, id: PhotoId) -> &Photo {
        &self.core.photos[id.index()]
    }

    /// Storage cost `C(p)` in bytes.
    #[inline]
    pub fn cost(&self, id: PhotoId) -> u64 {
        self.core.photos[id.index()].cost
    }

    /// All pre-defined subsets, indexed by [`SubsetId`].
    #[inline]
    pub fn subsets(&self) -> &[Subset] {
        &self.core.subsets
    }

    /// The subset with the given id.
    #[inline]
    pub fn subset(&self, id: SubsetId) -> &Subset {
        &self.core.subsets[id.index()]
    }

    /// The similarity store for the given subset (context).
    #[inline]
    pub fn sim(&self, id: SubsetId) -> &ContextSim {
        &self.sims[id.index()]
    }

    /// All similarity stores, parallel to [`Instance::subsets`]. Each store
    /// sits behind its own `Arc` so derived sub-views can share it.
    #[inline]
    pub fn sims(&self) -> &[Arc<ContextSim>] {
        &self.sims
    }

    /// The shared handle to a subset's similarity store (for building
    /// sub-views that alias the parent's store).
    #[inline]
    pub(crate) fn sim_arc(&self, id: SubsetId) -> &Arc<ContextSim> {
        &self.sims[id.index()]
    }

    /// The storage budget `B` in bytes.
    #[inline]
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Whether policy requires `p` to be retained (`p ∈ S₀`).
    #[inline]
    pub fn is_required(&self, p: PhotoId) -> bool {
        self.core.required[p.index()]
    }

    /// The policy-retained photos `S₀`.
    #[inline]
    pub fn required(&self) -> &[PhotoId] {
        &self.core.required_ids
    }

    /// Total cost of `S₀` in bytes.
    #[inline]
    pub fn required_cost(&self) -> u64 {
        self.core.required_cost
    }

    /// Total cost `C(P)` of the full archive in bytes.
    #[inline]
    pub fn total_cost(&self) -> u64 {
        self.core.total_cost
    }

    /// Every (subset, local index) membership of photo `p`.
    #[inline]
    pub fn memberships(&self, p: PhotoId) -> &[Membership] {
        let lo = self.core.membership_offsets[p.index()] as usize;
        let hi = self.core.membership_offsets[p.index() + 1] as usize;
        &self.core.membership_data[lo..hi]
    }

    /// The maximum attainable objective value `Σ_q W(q)`, achieved by
    /// retaining all photos (each subset then scores exactly 1).
    pub fn max_score(&self) -> f64 {
        self.core.subsets.iter().map(|q| q.weight).sum()
    }

    /// Derives an instance with a different budget, sharing all data.
    pub fn with_budget(&self, budget: u64) -> Result<Self> {
        if self.core.required_cost > budget {
            return Err(ModelError::RequiredSetOverBudget {
                required_cost: self.core.required_cost,
                budget,
            });
        }
        Ok(Instance {
            core: Arc::clone(&self.core),
            sims: Arc::clone(&self.sims),
            budget,
        })
    }

    /// Derives an instance with replaced similarity stores (e.g. the
    /// non-contextual stores of the Greedy-NCS baseline). Stores must be
    /// parallel to the subsets and sized to match each member list.
    pub fn with_sims(&self, sims: Vec<ContextSim>) -> Self {
        assert_eq!(sims.len(), self.core.subsets.len());
        for (q, s) in self.core.subsets.iter().zip(&sims) {
            assert_eq!(q.members.len(), s.len(), "similarity store size mismatch");
        }
        Instance {
            core: Arc::clone(&self.core),
            sims: Arc::new(sims.into_iter().map(Arc::new).collect()),
            budget: self.budget,
        }
    }

    /// Derives the τ-sparsified instance of Section 4.3: all similarities
    /// below `tau` are rounded down to 0.
    pub fn sparsify(&self, tau: f64) -> Self {
        let sims = self.sims.iter().map(|s| Arc::new(s.sparsify(tau))).collect();
        Instance {
            core: Arc::clone(&self.core),
            sims: Arc::new(sims),
            budget: self.budget,
        }
    }

    /// Derives the unit-similarity view used by the Greedy-NR baseline:
    /// `SIM(q, p, p') = 1` for all co-members, turning the objective into
    /// weighted subset coverage.
    pub fn with_unit_sims(&self) -> Self {
        let sims = self
            .core
            .subsets
            .iter()
            .map(|q| Arc::new(ContextSim::Unit(q.members.len())))
            .collect();
        Instance {
            core: Arc::clone(&self.core),
            sims: Arc::new(sims),
            budget: self.budget,
        }
    }

    /// Total number of stored nonzero similarity pairs across all contexts —
    /// the size measure that τ-sparsification reduces.
    pub fn stored_pairs(&self) -> usize {
        self.sims.iter().map(|s| s.nonzero_pairs()).sum()
    }

    /// Assembles an instance from already-validated parts, building the
    /// membership reverse-index and cost totals but performing **no**
    /// validation and **no** relevance normalization.
    ///
    /// This is the shared tail of the builder (whose `validate` has already
    /// normalized) and the entry point for [`crate::components`] sub-views,
    /// which must copy parent relevance bit-exactly — re-normalizing a
    /// query fragment would change `W·R` products and break the sharded
    /// solver's bit-identity with the global one.
    pub(crate) fn assemble(
        photos: Vec<Photo>,
        required: Vec<PhotoId>,
        subsets: Vec<Subset>,
        budget: u64,
        sims: Vec<Arc<ContextSim>>,
    ) -> Instance {
        let n = photos.len();
        // Two-pass CSR build: count per-photo degrees, prefix-sum into
        // offsets, then scatter (restoring offsets afterwards). Subset order
        // within a photo's slice matches the old per-photo push order
        // because subsets are visited ascending both times.
        let mut membership_offsets = vec![0u32; n + 1];
        for q in &subsets {
            for &m in &q.members {
                membership_offsets[m.index() + 1] += 1;
            }
        }
        for i in 0..n {
            membership_offsets[i + 1] += membership_offsets[i];
        }
        let total_members = membership_offsets[n] as usize;
        let mut membership_data = vec![
            Membership {
                subset: SubsetId(0),
                local: 0,
            };
            total_members
        ];
        let mut cursor = membership_offsets.clone();
        for q in &subsets {
            for (local, &m) in q.members.iter().enumerate() {
                let slot = cursor[m.index()] as usize;
                cursor[m.index()] += 1;
                membership_data[slot] = Membership {
                    subset: q.id,
                    local: local as u32,
                };
            }
        }
        let mut required_flags = vec![false; n];
        for &r in &required {
            required_flags[r.index()] = true;
        }
        let required_cost = required.iter().map(|&r| photos[r.index()].cost).sum();
        let total_cost = photos.iter().map(|p| p.cost).sum();
        Instance {
            core: Arc::new(Core {
                photos,
                required: required_flags,
                required_ids: required,
                required_cost,
                subsets,
                membership_offsets,
                membership_data,
                total_cost,
            }),
            sims: Arc::new(sims),
            budget,
        }
    }

    /// The membership reverse-index CSR arenas `(offsets, data)`, exposed to
    /// the `phocus-pack` writer ([`crate::pack`]) for verbatim section dumps.
    pub(crate) fn membership_csr(&self) -> (&[u32], &[Membership]) {
        (&self.core.membership_offsets, &self.core.membership_data)
    }

    /// Reassembles an instance from arenas bulk-read out of a `phocus-pack`
    /// file ([`crate::pack`]): unlike [`assemble`](Self::assemble), the
    /// membership reverse-index and cost totals arrive prebuilt and are
    /// installed verbatim — **no derivation, sorting, or validation** runs
    /// here beyond the O(|S₀|) required-flag scatter. The pack reader has
    /// already length- and range-checked every array against the section
    /// table.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_packed_parts(
        photos: Vec<Photo>,
        required_ids: Vec<PhotoId>,
        required_cost: u64,
        subsets: Vec<Subset>,
        membership_offsets: Vec<u32>,
        membership_data: Vec<Membership>,
        total_cost: u64,
        budget: u64,
        sims: Vec<Arc<ContextSim>>,
    ) -> Instance {
        let mut required_flags = vec![false; photos.len()];
        for &r in &required_ids {
            required_flags[r.index()] = true;
        }
        Instance {
            core: Arc::new(Core {
                photos,
                required: required_flags,
                required_ids,
                required_cost,
                subsets,
                membership_offsets,
                membership_data,
                total_cost,
            }),
            sims: Arc::new(sims),
            budget,
        }
    }
}

/// Photos, required ids, normalized subsets and budget, post-validation.
type ValidatedParts = (Vec<Photo>, Vec<PhotoId>, Vec<Subset>, u64);

/// Builder for [`Instance`], performing validation and relevance
/// normalization.
#[derive(Debug, Default)]
pub struct InstanceBuilder {
    photos: Vec<Photo>,
    required: Vec<PhotoId>,
    subsets: Vec<Subset>,
    budget: u64,
}

impl InstanceBuilder {
    /// Creates a builder with the given storage budget `B` (bytes).
    pub fn new(budget: u64) -> Self {
        InstanceBuilder {
            budget,
            ..Default::default()
        }
    }

    /// Adds a photo with the given human-readable name and byte cost,
    /// returning its id.
    pub fn add_photo(&mut self, name: impl Into<Arc<str>>, cost: u64) -> PhotoId {
        // phocus-lint: allow(cast-bounds) — builder append; pack/build validate n ≤ u32::MAX
        let id = PhotoId(self.photos.len() as u32);
        self.photos.push(Photo::new(id, name, cost));
        id
    }

    /// Marks a photo as policy-retained (`p ∈ S₀`).
    pub fn require(&mut self, p: PhotoId) -> &mut Self {
        self.required.push(p);
        self
    }

    /// Adds a pre-defined subset with raw (unnormalized) relevance scores.
    ///
    /// Relevance scores are normalized to sum to 1 at [`build`] time; they
    /// must be strictly positive and finite. Passing an empty `relevance`
    /// vector assigns uniform relevance to all members.
    ///
    /// [`build`]: InstanceBuilder::build_with_provider
    pub fn add_subset(
        &mut self,
        label: impl Into<Arc<str>>,
        weight: f64,
        members: Vec<PhotoId>,
        relevance: Vec<f64>,
    ) -> SubsetId {
        // phocus-lint: allow(cast-bounds) — builder append; pack/build validate m ≤ u32::MAX
        let id = SubsetId(self.subsets.len() as u32);
        let relevance = if relevance.is_empty() {
            vec![1.0; members.len()]
        } else {
            relevance
        };
        self.subsets.push(Subset {
            id,
            label: label.into(),
            weight,
            members,
            relevance: relevance.into(),
        });
        id
    }

    /// Current number of photos added.
    pub fn num_photos(&self) -> usize {
        self.photos.len()
    }

    /// Replaces the storage budget declared at construction.
    pub fn set_budget(&mut self, budget: u64) -> &mut Self {
        self.budget = budget;
        self
    }

    /// Validates the declared model and normalizes relevance scores,
    /// returning the parts needed to finish construction.
    fn validate(mut self) -> Result<ValidatedParts> {
        if self.photos.is_empty() {
            return Err(ModelError::NoPhotos);
        }
        let n = self.photos.len();
        // Total archive cost must fit u64. Every later accumulation — the
        // required-set cost, a solution's C(S), the evaluator's running
        // cost — is a sub-sum over distinct photos, so this single check
        // makes all of them overflow-free.
        let mut total: u64 = 0;
        for p in &self.photos {
            if p.cost == 0 {
                return Err(ModelError::ZeroCostPhoto(p.id));
            }
            total = total
                .checked_add(p.cost)
                .ok_or(ModelError::CostOverflow)?;
        }
        self.required.sort_unstable();
        self.required.dedup();
        for &r in &self.required {
            if r.index() >= n {
                return Err(ModelError::UnknownPhoto(r));
            }
        }
        let required_cost: u64 = self
            .required
            .iter()
            .map(|&r| self.photos[r.index()].cost)
            .sum();
        if required_cost > self.budget {
            return Err(ModelError::RequiredSetOverBudget {
                required_cost,
                budget: self.budget,
            });
        }
        for q in &mut self.subsets {
            if q.members.is_empty() {
                return Err(ModelError::EmptySubset(q.id));
            }
            if q.members.len() != q.relevance.len() {
                return Err(ModelError::RelevanceLengthMismatch {
                    subset: q.id,
                    members: q.members.len(),
                    relevances: q.relevance.len(),
                });
            }
            if !q.weight.is_finite() || q.weight <= 0.0 {
                return Err(ModelError::InvalidWeight {
                    subset: q.id,
                    value: q.weight,
                });
            }
            let mut seen = vec![false; n];
            for &m in &q.members {
                if m.index() >= n {
                    return Err(ModelError::UnknownPhoto(m));
                }
                if seen[m.index()] {
                    return Err(ModelError::DuplicateMember {
                        subset: q.id,
                        photo: m,
                    });
                }
                seen[m.index()] = true;
            }
            let mut sum = 0.0;
            for &r in q.relevance.iter() {
                if !r.is_finite() || r <= 0.0 {
                    return Err(ModelError::InvalidRelevance {
                        subset: q.id,
                        value: r,
                    });
                }
                sum += r;
            }
            // Normalize so Σ_{p∈q} R(q,p) = 1 (Section 3.1).
            q.relevance = q.relevance.iter().map(|r| r / sum).collect();
        }
        Ok((self.photos, self.required, self.subsets, self.budget))
    }

    /// Finishes construction, materializing dense all-pairs similarity stores
    /// from `provider` (the PHOcus-NS representation). Costs `Σ_q |q|²`
    /// provider calls.
    pub fn build_with_provider<P: SimilarityProvider + ?Sized>(
        self,
        provider: &P,
    ) -> Result<Instance> {
        let (photos, required, subsets, budget) = self.validate()?;
        let mut sims = Vec::with_capacity(subsets.len());
        for q in &subsets {
            sims.push(Arc::new(ContextSim::Dense(DenseSim::from_provider(
                q, provider,
            )?)));
        }
        Ok(Instance::assemble(photos, required, subsets, budget, sims))
    }

    /// Finishes construction with pre-built similarity stores (e.g. sparse
    /// stores produced by an LSH pipeline). Stores must be parallel to the
    /// subsets, in declaration order, and sized to each member list.
    pub fn build_with_sims(self, sims: Vec<ContextSim>) -> Result<Instance> {
        let (photos, required, subsets, budget) = self.validate()?;
        assert_eq!(sims.len(), subsets.len(), "one store per subset required");
        for (q, s) in subsets.iter().zip(&sims) {
            assert_eq!(q.members.len(), s.len(), "similarity store size mismatch");
        }
        let sims = sims.into_iter().map(Arc::new).collect();
        Ok(Instance::assemble(photos, required, subsets, budget, sims))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::UnitSimilarity;

    fn builder() -> InstanceBuilder {
        let mut b = InstanceBuilder::new(100);
        let p0 = b.add_photo("a", 10);
        let p1 = b.add_photo("b", 20);
        let p2 = b.add_photo("c", 30);
        b.add_subset("s", 2.0, vec![p0, p1, p2], vec![1.0, 1.0, 2.0]);
        b
    }

    #[test]
    fn build_normalizes_relevance() {
        let inst = builder().build_with_provider(&UnitSimilarity).unwrap();
        let q = inst.subset(SubsetId(0));
        assert!((q.relevance[0] - 0.25).abs() < 1e-12);
        assert!((q.relevance[2] - 0.5).abs() < 1e-12);
        let sum: f64 = q.relevance.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn memberships_reverse_index() {
        let mut b = InstanceBuilder::new(100);
        let p0 = b.add_photo("a", 1);
        let p1 = b.add_photo("b", 1);
        b.add_subset("q0", 1.0, vec![p0, p1], vec![]);
        b.add_subset("q1", 1.0, vec![p1], vec![]);
        let inst = b.build_with_provider(&UnitSimilarity).unwrap();
        assert_eq!(inst.memberships(p0).len(), 1);
        assert_eq!(inst.memberships(p1).len(), 2);
        assert_eq!(inst.memberships(p1)[1].subset, SubsetId(1));
        assert_eq!(inst.memberships(p1)[1].local, 0);
    }

    #[test]
    fn rejects_duplicate_member() {
        let mut b = InstanceBuilder::new(100);
        let p0 = b.add_photo("a", 1);
        b.add_subset("q", 1.0, vec![p0, p0], vec![]);
        assert!(matches!(
            b.build_with_provider(&UnitSimilarity),
            Err(ModelError::DuplicateMember { .. })
        ));
    }

    #[test]
    fn rejects_required_over_budget() {
        let mut b = InstanceBuilder::new(5);
        let p0 = b.add_photo("a", 10);
        b.require(p0);
        b.add_subset("q", 1.0, vec![p0], vec![]);
        assert!(matches!(
            b.build_with_provider(&UnitSimilarity),
            Err(ModelError::RequiredSetOverBudget { .. })
        ));
    }

    #[test]
    fn rejects_zero_cost_and_bad_weight() {
        let mut b = InstanceBuilder::new(5);
        let p0 = b.add_photo("a", 0);
        b.add_subset("q", 1.0, vec![p0], vec![]);
        assert!(matches!(
            b.build_with_provider(&UnitSimilarity),
            Err(ModelError::ZeroCostPhoto(_))
        ));

        let mut b = InstanceBuilder::new(5);
        let p0 = b.add_photo("a", 1);
        b.add_subset("q", -1.0, vec![p0], vec![]);
        assert!(matches!(
            b.build_with_provider(&UnitSimilarity),
            Err(ModelError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn with_budget_shares_core() {
        let inst = builder().build_with_provider(&UnitSimilarity).unwrap();
        let inst2 = inst.with_budget(50).unwrap();
        assert_eq!(inst2.budget(), 50);
        assert_eq!(inst2.num_photos(), inst.num_photos());
        assert!(inst.with_budget(0).is_err() || inst.required_cost() == 0);
    }

    #[test]
    fn unit_sim_view_and_max_score() {
        let inst = builder().build_with_provider(&UnitSimilarity).unwrap();
        assert_eq!(inst.max_score(), 2.0);
        let unit = inst.with_unit_sims();
        assert_eq!(unit.sim(SubsetId(0)).sim(0, 2), 1.0);
    }

    #[test]
    fn total_and_required_cost() {
        let mut b = InstanceBuilder::new(100);
        let p0 = b.add_photo("a", 10);
        let p1 = b.add_photo("b", 20);
        b.require(p1);
        b.add_subset("q", 1.0, vec![p0, p1], vec![]);
        let inst = b.build_with_provider(&UnitSimilarity).unwrap();
        assert_eq!(inst.total_cost(), 30);
        assert_eq!(inst.required_cost(), 20);
        assert!(inst.is_required(p1));
        assert!(!inst.is_required(p0));
    }
}
