//! Diagnostics: the typed finding every rule emits, plus human and JSON
//! rendering.

use std::fmt;

/// One finding, anchored to a file/line/column span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (e.g. `"float-ord"`), one of [`crate::rules::RULES`].
    pub rule: &'static str,
    /// Path relative to the workspace root (or a fixture label in tests).
    pub path: String,
    /// 1-based line of the offending token (0 for file-level findings).
    pub line: u32,
    /// 1-based column of the offending token (0 for file-level findings).
    pub col: u32,
    /// What went wrong and what the sanctioned alternative is.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Escapes a string for inclusion in a JSON string literal. Non-ASCII
/// characters pass through raw (JSON is UTF-8); quotes, backslashes, and
/// control characters are escaped.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a diagnostic list as the stable `--json` document (schema v2;
/// v2 added the `rules` registry array so CI can detect rule-set drift):
///
/// ```json
/// {"version":2,"rules":["float-ord",…],"violations":N,
///  "diagnostics":[{"rule":…,"path":…,"line":…,"col":…,"message":…}]}
/// ```
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\"version\":2,\"rules\":[");
    for (i, r) in crate::rules::RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&json_escape(r));
        out.push('"');
    }
    out.push_str("],\"violations\":");
    out.push_str(&diags.len().to_string());
    out.push_str(",\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            json_escape(d.rule),
            json_escape(&d.path),
            d.line,
            d.col,
            json_escape(&d.message)
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_spanned() {
        let d = Diagnostic {
            rule: "float-ord",
            path: "crates/algo/src/celf.rs".into(),
            line: 7,
            col: 3,
            message: "m".into(),
        };
        assert_eq!(d.to_string(), "crates/algo/src/celf.rs:7:3: [float-ord] m");
    }

    #[test]
    fn json_escapes_specials() {
        let d = Diagnostic {
            rule: "no-print",
            path: "a\"b".into(),
            line: 1,
            col: 2,
            message: "tab\there — dash".into(),
        };
        let j = to_json(&[d]);
        assert!(j.contains("\\\"") && j.contains("\\t") && j.contains("— dash"));
        assert!(j.starts_with("{\"version\":2,\"rules\":["));
        assert!(j.contains(",\"violations\":1,"));
    }

    #[test]
    fn empty_report_lists_the_registry() {
        let j = to_json(&[]);
        assert!(j.starts_with("{\"version\":2,\"rules\":[\"float-ord\","));
        assert!(j.ends_with(",\"violations\":0,\"diagnostics\":[]}"));
        for rule in crate::rules::RULES {
            assert!(j.contains(&format!("\"{rule}\"")), "missing {rule}");
        }
    }
}
