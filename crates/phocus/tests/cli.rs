//! Smoke tests for the `phocus` CLI binary.

use std::process::Command;

fn phocus(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_phocus"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn demo_prints_figure1_report() {
    let out = phocus(&["demo"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Figure 1"));
    assert!(text.contains("PHOcus run report"));
    assert!(text.contains("selection order"));
}

#[test]
fn table2_lists_eight_datasets() {
    let out = phocus(&["table2"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["P-1K", "P-100K", "EC-Fashion", "EC-Home & Garden"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn solve_tiny_dataset() {
    let out = phocus(&[
        "solve",
        "--dataset",
        "tiny",
        "--budget-mb",
        "3",
        "--tau",
        "0.6",
        "--seed",
        "7",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("retained"));
    assert!(text.contains("online bound"));
    assert!(text.contains("sparsification"));
}

#[test]
fn suite_tiny_dataset() {
    let out = phocus(&[
        "suite",
        "--dataset",
        "tiny",
        "--budget-mb",
        "2",
        "--seed",
        "3",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("PHOcus"));
    assert!(text.contains("RAND-A"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = phocus(&["frobnicate"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("USAGE"));
}

#[test]
fn help_prints_usage() {
    let out = phocus(&["--help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn missing_dataset_argument_errors() {
    let out = phocus(&["solve", "--budget-mb", "5"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--dataset"));
}

#[test]
fn malformed_file_exits_nonzero_with_readable_message() {
    let path = std::env::temp_dir().join("phocus_cli_malformed.universe");
    std::fs::write(&path, "photo\t0\tnot-a-number\tbroken\n").unwrap();
    let out = phocus(&[
        "solve",
        "--dataset",
        &format!("file:{}", path.display()),
        "--budget-mb",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(3), "bad data exits 3");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.starts_with("error:"), "diagnostic prefix: {err}");
    assert!(err.contains("line 1"), "points at the offending line: {err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn nan_weight_file_is_rejected_as_invalid_data() {
    let path = std::env::temp_dir().join("phocus_cli_nan.universe");
    std::fs::write(
        &path,
        "photo\t0\t100\ta\nembedding\t0\t1.0\nsubset\tq\tNaN\t0:1\n",
    )
    .unwrap();
    let out = phocus(&[
        "solve",
        "--dataset",
        &format!("file:{}", path.display()),
        "--budget-mb",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("weight"), "names the bad field: {err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_file_exits_with_io_code() {
    let out = phocus(&[
        "solve",
        "--dataset",
        "file:/nonexistent/phocus.universe",
        "--budget-mb",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(4), "I/O failure exits 4");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("/nonexistent/phocus.universe"), "names the path: {err}");
}

#[test]
fn bad_flag_value_exits_with_usage_code() {
    let out = phocus(&["solve", "--dataset", "tiny", "--budget-mb", "lots"]);
    assert_eq!(out.status.code(), Some(2), "usage error exits 2");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--budget-mb"));
}

#[test]
fn compress_compares_remove_vs_compress() {
    let out = phocus(&[
        "compress",
        "--dataset",
        "tiny",
        "--budget-mb",
        "1.5",
        "--seed",
        "4",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("remove-only quality"));
    assert!(text.contains("compressed renditions"));
}

#[test]
fn solve_writes_retained_list() {
    let out_path = std::env::temp_dir().join("phocus_cli_retained.tsv");
    let out = phocus(&[
        "solve",
        "--dataset",
        "tiny",
        "--budget-mb",
        "2",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let content = std::fs::read_to_string(&out_path).unwrap();
    assert!(!content.is_empty());
    // Each line: id \t cost \t name.
    let first = content.lines().next().unwrap();
    assert_eq!(first.split('\t').count(), 3);
    std::fs::remove_file(&out_path).ok();
}

#[test]
fn export_then_solve_from_file() {
    let path = std::env::temp_dir().join("phocus_cli_export.universe");
    let out = phocus(&[
        "export",
        "--dataset",
        "tiny",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = phocus(&[
        "solve",
        "--dataset",
        &format!("file:{}", path.display()),
        "--budget-mb",
        "2",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(&path).ok();
}
