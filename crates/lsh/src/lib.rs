//! # par-lsh — SimHash locality-sensitive hashing
//!
//! Implements the randomized sparsification front-end of Section 4.3: instead
//! of computing all `Θ(|q|²)` pairwise cosine similarities per context, hash
//! each embedding a constant number of times with random hyperplanes
//! (SimHash, Charikar 2002) and only verify pairs whose signatures collide in
//! at least one band. With parameters tuned by the [`planner`], this finds —
//! with probability arbitrarily close to 1 — almost all pairs of cosine
//! similarity at least `τ` in roughly linear time.
//!
//! * [`simhash`] — random-hyperplane signatures and Hamming/cosine estimates;
//! * [`tables`] — banded multi-table index producing candidate pairs;
//! * [`planner`] — chooses (rows per band, number of bands) to hit a target
//!   recall at threshold `τ`;
//! * [`similar_pairs`] — the end-to-end convenience pipeline: plan → hash →
//!   bucket → verify with exact cosine.

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod error;
pub mod planner;
pub mod simhash;
pub mod tables;

pub use error::LshError;
pub use planner::{plan, LshPlan};

pub use simhash::{cosine, Signature, SimHasher};
pub use tables::LshIndex;

/// Finds (almost) all pairs of vectors with cosine similarity at least `tau`.
///
/// Plans the band structure for the given `target_recall`, hashes all
/// vectors, collects banded candidate pairs, and verifies each candidate with
/// an exact cosine computation. Returns `(i, j, cosine)` triples with
/// `i < j` and `cosine ≥ tau`.
///
/// Runtime is `O(n · bits)` hashing plus candidate verification — near-linear
/// when the similarity graph is sparse, versus `Θ(n²)` for exhaustive
/// comparison.
///
/// Returns [`LshError`] if `tau` is not a cosine value in `[-1, 1]` or
/// `target_recall` is not in `(0, 1]`.
pub fn similar_pairs(
    vectors: &[impl AsRef<[f32]> + Sync],
    tau: f64,
    target_recall: f64,
    seed: u64,
) -> Result<Vec<(u32, u32, f64)>, LshError> {
    Ok(similar_pairs_with_plan(
        vectors,
        tau,
        plan(tau, target_recall)?,
        seed,
    ))
}

/// [`similar_pairs`] with an explicit banding plan.
///
/// Use this when the planner's strict recall target would demand more
/// signature bits than the application wants to pay for — candidates are
/// verified exactly either way, so a cheaper plan only *misses* marginal
/// pairs, it never admits false ones.
pub fn similar_pairs_with_plan(
    vectors: &[impl AsRef<[f32]> + Sync],
    tau: f64,
    plan: LshPlan,
    seed: u64,
) -> Vec<(u32, u32, f64)> {
    if vectors.is_empty() {
        return Vec::new();
    }
    let dim = vectors[0].as_ref().len();
    let hasher = SimHasher::new(dim, plan.total_bits(), seed);
    let signatures = hasher.sign_batch(vectors);
    let index = LshIndex::build(&signatures, plan.rows, plan.bands);
    // Candidate pairs arrive sorted and deduplicated; verify them with exact
    // cosine in parallel, then filter in pair order — the output is
    // identical to the serial verify loop.
    let mut candidates: Vec<(u32, u32)> = Vec::new();
    index.for_candidate_pairs(|i, j| candidates.push((i, j)));
    par_exec::par_map_slice(&candidates, |&(i, j)| {
        (
            i,
            j,
            cosine(vectors[i as usize].as_ref(), vectors[j as usize].as_ref()),
        )
    })
    .into_iter()
    .filter(|&(_, _, c)| c >= tau)
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(angle: f32) -> Vec<f32> {
        vec![angle.cos(), angle.sin(), 0.0, 0.0]
    }

    #[test]
    fn similar_pairs_finds_close_vectors() {
        // Three tight clusters on the unit circle.
        let mut vecs = Vec::new();
        for c in 0..3 {
            let base = c as f32 * 2.0;
            for k in 0..5 {
                vecs.push(unit(base + 0.02 * k as f32));
            }
        }
        let pairs = similar_pairs(&vecs, 0.95, 0.95, 42).unwrap();
        // All within-cluster pairs have cosine ≈ 1; expect ≥ 90% of the 30.
        let within = pairs.iter().filter(|&&(i, j, _)| i / 5 == j / 5).count();
        assert!(
            within >= 27,
            "found only {within} of 30 within-cluster pairs"
        );
        // No cross-cluster pair passes the τ=0.95 verification.
        assert!(pairs.iter().all(|&(i, j, _)| i / 5 == j / 5));
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<Vec<f32>> = Vec::new();
        assert!(similar_pairs(&v, 0.9, 0.9, 1).unwrap().is_empty());
    }

    #[test]
    fn verification_filters_false_positives() {
        // Orthogonal vectors can collide in a band but never pass cosine ≥ τ.
        let vecs = vec![
            vec![1.0f32, 0.0],
            vec![0.0, 1.0],
            vec![-1.0, 0.0],
            vec![0.0, -1.0],
        ];
        let pairs = similar_pairs(&vecs, 0.9, 0.99, 7).unwrap();
        assert!(pairs.is_empty());
    }
}
