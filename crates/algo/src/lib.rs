//! # par-algo — approximation algorithms for the PAR problem
//!
//! Implements every solver evaluated in the paper:
//!
//! * [`lazy_greedy`] — the CELF-style lazy greedy of Leskovec et al.
//!   (Algorithm 2 of the paper) with the unit-cost (`UC`) and cost-benefit
//!   (`CB`) selection rules, plus an [`eager_greedy`] reference used to
//!   quantify the lazy-evaluation speedup;
//! * [`main_algorithm`] — Algorithm 1: run both rules, keep the better
//!   solution, for a `(1 − 1/e)/2` worst-case guarantee;
//! * [`sharded`] — a component-sharded CELF driver: one lazy stream per
//!   connected component of the photo–query graph, merged by a budget-aware
//!   coordinator, with a bit-identical transcript to [`lazy_greedy`];
//! * [`incremental`] — an epoch-resident solver that applies
//!   [`par_core::delta`] epoch deltas and replays the cached CELF stream
//!   transcripts of clean components, bit-identical to a from-scratch
//!   sharded solve of the post-delta instance;
//! * [`sviridenko()`](sviridenko::sviridenko) — partial-enumeration greedy with the optimal
//!   `(1 − 1/e)` guarantee (Theorem 4.6), exponential in the seed size and
//!   practical only for small instances;
//! * [`brute_force()`](brute_force::brute_force) — exact branch-and-bound with a submodular
//!   fractional-knapsack upper bound (the paper's Figure 5d reference);
//! * [`baselines`] — RAND-A, RAND-D, Greedy-NR and Greedy-NCS, each
//!   *selecting* under its simplified objective but *scored* under the true
//!   one;
//! * [`online_bound()`](online_bound::online_bound) — the data-dependent a-posteriori bound of Leskovec et
//!   al., used to certify that practical performance far exceeds the
//!   worst-case guarantee;
//! * [`streaming`] — one-pass sieve solvers for streamed archives;
//! * [`local_search`] — a 1-swap polish pass for any feasible solution.
//!
//! # Example
//!
//! ```
//! use par_core::fixtures::{figure1_instance, MB};
//!
//! // The paper's Figure 1 instance under a 4 MB budget.
//! let inst = figure1_instance(4 * MB);
//! let outcome = par_algo::main_algorithm(&inst); // Algorithm 1
//! assert!(outcome.best.cost <= 4 * MB);
//!
//! // Certify the run a posteriori: how close to OPT are we provably?
//! let cert = par_algo::online_bound(&inst, &outcome.best.selected);
//! assert!(cert.ratio > 0.9); // far above the a-priori (1-1/e)/2
//! ```

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod baselines;
pub mod brute_force;
pub mod celf;
pub mod curve;
pub mod error;
pub mod incremental;
pub mod local_search;
pub mod main_alg;
pub mod online_bound;
pub mod sharded;
pub mod streaming;
pub mod sviridenko;
pub mod types;

pub use baselines::{greedy_ncs, greedy_nr, greedy_select, rand_a, rand_d};
pub use brute_force::{brute_force, brute_force_anytime, BruteForceConfig};
pub use celf::{eager_greedy, lazy_greedy, lazy_greedy_from, GreedyRule};
pub use curve::{quality_curve, CurvePoint};
pub use error::SolveError;
pub use incremental::{DeltaStats, EpochReport, IncrementalSolver};
pub use local_search::{swap_local_search, LocalSearchConfig};
pub use main_alg::{
    main_algorithm, main_algorithm_packed, main_algorithm_scratch, main_algorithm_sharded,
    main_algorithm_with, MainOutcome,
};
pub use online_bound::{online_bound, OnlineBound};
pub use sharded::{sharded_lazy_greedy, sharded_lazy_greedy_from, ShardedSolver, SolveScratch};
pub use streaming::{density_sieve, sieve_streaming};
pub use sviridenko::{sviridenko, SviridenkoConfig};
pub use types::{GreedyOutcome, RunStats};
