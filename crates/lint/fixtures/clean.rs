//! Fixture: idiomatic code every rule accepts with zero pragmas —
//! collect-then-sort over a hash map, and wall-clock reads confined to a
//! `#[cfg(test)]` module.

use std::collections::HashMap;

pub fn histogram(xs: &[u32]) -> Vec<(u32, u32)> {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    let mut out: Vec<(u32, u32)> = counts.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn timing_in_tests_is_fine() {
        let t0 = Instant::now();
        assert!(t0.elapsed().as_nanos() < u128::MAX);
    }
}
