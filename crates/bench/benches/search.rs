//! Search-engine benchmarks: index construction and ranked queries over the
//! synthetic product catalog (the subset-derivation path of Example 5.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use par_datasets::{EcDomain, Zipf};
use par_search::SearchEngine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn catalog(n: usize, seed: u64) -> Vec<String> {
    let d = EcDomain::Fashion;
    let (nouns, brands, colors, mods) = (d.nouns(), d.brands(), d.colors(), d.modifiers());
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(nouns.len(), 0.8).unwrap();
    (0..n)
        .map(|_| {
            format!(
                "{} {} {} {}",
                brands[rng.gen_range(0..brands.len())],
                colors[rng.gen_range(0..colors.len())],
                mods[rng.gen_range(0..mods.len())],
                nouns[zipf.sample(&mut rng)],
            )
        })
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for n in [1_000usize, 10_000] {
        let docs = catalog(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &docs, |b, docs| {
            b.iter(|| SearchEngine::build(std::hint::black_box(docs)))
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let docs = catalog(10_000, 2);
    let engine = SearchEngine::build(&docs);
    let queries = [
        "black shirt",
        "nike shoes",
        "vintage jacket",
        "adidas black sneakers",
    ];
    c.bench_function("query/10k_docs", |b| {
        b.iter(|| {
            for q in &queries {
                std::hint::black_box(engine.search(q, 100));
            }
        })
    });
}

criterion_group!(benches, bench_build, bench_query);
criterion_main!(benches);
