//! Property tests pinning the CSR/SoA `SparseSim` layout to a naive
//! `Vec<Vec<(u32, f32)>>` adjacency-list reference.
//!
//! The CSR store is a pure layout change: for any input pair list it must
//! answer `sim(i, j)`, `neighbors(i)`, `degree(i)`, and `nonzero_pairs()`
//! exactly like the per-row vector representation it replaced, and the
//! two-pass CSR build inside `DenseSim::sparsify` must agree with building
//! from the surviving pairs directly.

use par_core::fixtures::SplitMix64;
use par_core::{ContextSim, DenseSim, SparseSim, SubsetId};
use proptest::prelude::*;

/// Naive adjacency-list similarity store: the representation CSR replaced.
struct RefStore {
    rows: Vec<Vec<(u32, f32)>>,
}

impl RefStore {
    /// Mirrors `SparseSim::from_pairs` semantics: symmetric insertion,
    /// zero/self skipping, duplicate resolution by max.
    fn from_pairs(n: usize, pairs: &[(u32, u32, f64)]) -> Self {
        let mut rows: Vec<Vec<(u32, f32)>> = vec![Vec::new(); n];
        let mut upsert = |i: usize, j: u32, s: f32| match rows[i].iter_mut().find(|e| e.0 == j) {
            Some(e) => e.1 = e.1.max(s),
            None => rows[i].push((j, s)),
        };
        for &(i, j, s) in pairs {
            if i == j || s == 0.0 {
                continue;
            }
            upsert(i as usize, j, s as f32);
            upsert(j as usize, i, s as f32);
        }
        for row in &mut rows {
            row.sort_unstable_by_key(|e| e.0);
        }
        RefStore { rows }
    }

    fn sim(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 1.0;
        }
        self.rows[i]
            .iter()
            .find(|e| e.0 == j as u32)
            .map_or(0.0, |e| e.1 as f64)
    }

    fn nonzero_pairs(&self) -> usize {
        self.rows.iter().map(Vec::len).sum::<usize>() / 2
    }
}

/// Random pair list with deliberate duplicates, self-loops, zeros, and exact
/// similarity ties (quantized to tenths) to stress the dedup path.
fn random_pairs(seed: u64, n: usize, count: usize) -> Vec<(u32, u32, f64)> {
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|_| {
            let i = rng.next_below(n) as u32;
            let j = rng.next_below(n) as u32;
            let s = rng.next_below(11) as f64 / 10.0;
            (i, j, s)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn csr_matches_adjacency_list_reference(
        (seed, n, count) in (any::<u64>(), 1usize..24, 0usize..80)
    ) {
        let pairs = random_pairs(seed, n, count);
        let reference = RefStore::from_pairs(n, &pairs);
        let csr = SparseSim::from_pairs(SubsetId(0), n, pairs).unwrap();

        prop_assert_eq!(csr.len(), n);
        prop_assert_eq!(csr.nonzero_pairs(), reference.nonzero_pairs());
        for i in 0..n {
            let (ids, sims) = csr.neighbors(i);
            prop_assert_eq!(ids.len(), csr.degree(i));
            prop_assert_eq!(ids.len(), reference.rows[i].len());
            for (k, (&j, &s)) in ids.iter().zip(sims).enumerate() {
                let (rj, rs) = reference.rows[i][k];
                prop_assert_eq!(j, rj);
                prop_assert_eq!(s.to_bits(), rs.to_bits());
            }
            for j in 0..n {
                prop_assert_eq!(csr.sim(i, j).to_bits(), reference.sim(i, j).to_bits());
            }
        }
    }

    #[test]
    fn csr_rows_are_sorted_strictly_increasing(
        (seed, n, count) in (any::<u64>(), 1usize..24, 0usize..80)
    ) {
        let pairs = random_pairs(seed, n, count);
        let csr = SparseSim::from_pairs(SubsetId(0), n, pairs).unwrap();
        for i in 0..n {
            let (ids, sims) = csr.neighbors(i);
            prop_assert_eq!(ids.len(), sims.len());
            prop_assert!(ids.windows(2).all(|w| w[0] < w[1]), "row {} not sorted", i);
            prop_assert!(ids.iter().all(|&j| (j as usize) < n && j as usize != i));
        }
    }

    #[test]
    fn for_neighbors_agrees_with_slice_accessors(
        (seed, n, count) in (any::<u64>(), 1usize..24, 0usize..80)
    ) {
        let pairs = random_pairs(seed, n, count);
        let cs = ContextSim::Sparse(SparseSim::from_pairs(SubsetId(0), n, pairs).unwrap());
        let sp = cs.as_sparse().unwrap();
        for i in 0..n {
            let mut visited = Vec::new();
            cs.for_neighbors(i, |j, s| visited.push((j as u32, s)));
            let (ids, sims) = sp.neighbors(i);
            prop_assert_eq!(visited.len(), ids.len());
            for ((vj, vs), (&j, &s)) in visited.iter().zip(ids.iter().zip(sims)) {
                prop_assert_eq!(*vj, j);
                prop_assert_eq!(vs.to_bits(), (s as f64).to_bits());
            }
        }
    }

    #[test]
    fn dense_sparsify_matches_from_pairs_build(
        (seed, n) in (any::<u64>(), 1usize..20)
    ) {
        // A dense matrix with quantized entries, sparsified at a few taus,
        // must equal the CSR built directly from the surviving pairs.
        let mut rng = SplitMix64::new(seed);
        let mut matrix = vec![0.0f64; n * n];
        for i in 0..n {
            matrix[i * n + i] = 1.0;
            for j in 0..i {
                let s = rng.next_below(11) as f64 / 10.0;
                matrix[i * n + j] = s;
                matrix[j * n + i] = s;
            }
        }
        let dense = DenseSim::from_matrix(SubsetId(0), n, &matrix).unwrap();
        for tau in [0.0, 0.35, 0.7, 1.0] {
            let via_dense = dense.sparsify(tau);
            let surviving: Vec<(u32, u32, f64)> = (0..n)
                .flat_map(|i| (0..i).map(move |j| (i as u32, j as u32)))
                .map(|(i, j)| (i, j, dense.sim(i as usize, j as usize)))
                .filter(|&(_, _, s)| s >= tau && s > 0.0)
                .collect();
            let via_pairs = SparseSim::from_pairs(SubsetId(0), n, surviving).unwrap();
            prop_assert_eq!(via_dense.nonzero_pairs(), via_pairs.nonzero_pairs());
            for i in 0..n {
                let (a_ids, a_sims) = via_dense.neighbors(i);
                let (b_ids, b_sims) = via_pairs.neighbors(i);
                prop_assert_eq!(a_ids, b_ids);
                for (x, y) in a_sims.iter().zip(b_sims) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }
}
