//! Fixture: safe code only; nothing for `no-unsafe` to object to.

pub fn checked_get(xs: &[u32], i: usize) -> Option<u32> {
    xs.get(i).copied()
}
