//! Human-readable reports for PHOcus runs.

use crate::solver::PhocusReport;
use crate::suite::SuiteResult;
use par_core::Instance;

/// Formats a byte count in binary units.
fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

/// Renders a solver report as a multi-line text block.
pub fn render_report(inst: &Instance, report: &PhocusReport) -> String {
    let mut out = String::new();
    out.push_str("PHOcus run report\n");
    out.push_str("=================\n");
    out.push_str(&format!(
        "photos: {}   subsets: {}   budget: {}\n",
        inst.num_photos(),
        inst.num_subsets(),
        fmt_bytes(inst.budget())
    ));
    out.push_str(&format!(
        "retained: {} photos, {} ({:.1}% of archive)\n",
        report.selected.len(),
        fmt_bytes(report.cost),
        100.0 * report.cost as f64 / inst.total_cost().max(1) as f64,
    ));
    out.push_str(&format!(
        "quality: {:.3} of max {:.3} ({:.1}%)\n",
        report.score,
        inst.max_score(),
        100.0 * report.score / inst.max_score().max(f64::MIN_POSITIVE),
    ));
    out.push_str(&format!(
        "winning rule: {:?}   gain evals: {}   lazy accepts: {}\n",
        report.winner, report.stats.gain_evals, report.stats.lazy_accepts,
    ));
    out.push_str(&format!(
        "online bound: OPT ≤ {:.3} ⇒ achieved ratio ≥ {:.3}\n",
        report.online.upper_bound, report.online.ratio,
    ));
    if let Some(cert) = &report.sparsification {
        out.push_str(&format!(
            "sparsification τ={:.2}: α={:.3}, guaranteed factor {:.3}\n",
            cert.tau, cert.alpha, cert.factor,
        ));
    }
    out.push_str(&format!(
        "stored similarity pairs: {}\n",
        report.stored_pairs
    ));
    out.push_str(&format!(
        "time: represent {:.1?}, solve {:.1?}\n",
        report.represent_time, report.solve_time,
    ));
    out
}

/// Renders a suite comparison as an aligned text table.
pub fn render_suite(result: &SuiteResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "budget {}   max quality {:.2}\n",
        fmt_bytes(result.budget),
        result.max_score
    ));
    out.push_str(&format!(
        "{:<12} {:>10} {:>8} {:>9} {:>12} {:>12}\n",
        "algorithm", "quality", "%max", "retained", "repr time", "solve time"
    ));
    for e in &result.entries {
        out.push_str(&format!(
            "{:<12} {:>10.2} {:>7.1}% {:>9} {:>12.1?} {:>12.1?}\n",
            e.algo.name(),
            e.quality,
            100.0 * e.quality / result.max_score.max(f64::MIN_POSITIVE),
            e.retained,
            e.represent_time,
            e.solve_time,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::representation::{represent, RepresentationConfig};
    use crate::solver::Phocus;
    use crate::suite::{run_suite, SuiteConfig};
    use par_datasets::{generate_openimages, OpenImagesConfig};

    #[test]
    fn report_mentions_key_figures() {
        let u = generate_openimages(&OpenImagesConfig {
            photos: 80,
            target_subsets: 15,
            seed: 8,
            ..Default::default()
        });
        let budget = u.total_cost() / 3;
        let inst = represent(&u, budget, &RepresentationConfig::default()).unwrap();
        let report = Phocus::default().solve_instance(&inst, std::time::Duration::ZERO);
        let text = render_report(&inst, &report);
        assert!(text.contains("PHOcus run report"));
        assert!(text.contains("online bound"));
        assert!(text.contains("retained"));
    }

    #[test]
    fn suite_table_lists_algorithms() {
        let u = generate_openimages(&OpenImagesConfig {
            photos: 80,
            target_subsets: 15,
            seed: 9,
            ..Default::default()
        });
        let res = run_suite(&u, u.total_cost() / 4, &SuiteConfig::default()).unwrap();
        let text = render_suite(&res);
        assert!(text.contains("PHOcus"));
        assert!(text.contains("Greedy-NR"));
        assert!(text.contains("RAND-A"));
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(100), "100 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(5 * 1024 * 1024), "5.00 MiB");
    }
}
