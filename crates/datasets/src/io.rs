//! Dataset import/export in a simple line-oriented text format.
//!
//! Reproduction artifacts are more useful when the generated datasets can be
//! inspected and exchanged with external tooling, so a [`Universe`] can be
//! written to (and re-read from) a dependency-free TSV-style format:
//!
//! ```text
//! # phocus-universe v1
//! name <dataset name>
//! photo <id> <cost> <name with spaces>
//! embedding <id> <f32> <f32> …
//! exif <id> <timestamp> <lat> <lon> <camera>
//! subset <label-no-tabs> <weight> <member:relevance> <member:relevance> …
//! required <id> <id> …
//! ```
//!
//! Floats round-trip via their shortest exact representation, so
//! `write → read` is lossless (verified by tests).

use crate::error::DatasetError;
use crate::universe::{SubsetDef, Universe};
use par_embed::{Embedding, ExifData};
use std::fmt::Write as _;

/// Serializes a universe to the text format.
pub fn to_text(u: &Universe) -> String {
    let mut out = String::new();
    out.push_str("# phocus-universe v1\n");
    let _ = writeln!(out, "name\t{}", u.name);
    for (i, name) in u.names.iter().enumerate() {
        let _ = writeln!(out, "photo\t{i}\t{}\t{name}", u.costs[i]);
    }
    for (i, e) in u.embeddings.iter().enumerate() {
        let _ = write!(out, "embedding\t{i}");
        for v in e.as_slice() {
            let _ = write!(out, "\t{v}");
        }
        out.push('\n');
    }
    if let Some(exif) = &u.exif {
        for (i, e) in exif.iter().enumerate() {
            let _ = writeln!(
                out,
                "exif\t{i}\t{}\t{}\t{}\t{}",
                e.timestamp, e.latitude, e.longitude, e.camera
            );
        }
    }
    for s in &u.subsets {
        let _ = write!(out, "subset\t{}\t{}", s.label.replace('\t', " "), s.weight);
        for (&m, &r) in s.members.iter().zip(&s.relevance) {
            let _ = write!(out, "\t{m}:{r}");
        }
        out.push('\n');
    }
    if !u.required.is_empty() {
        let _ = write!(out, "required");
        for &r in &u.required {
            let _ = write!(out, "\t{r}");
        }
        out.push('\n');
    }
    out
}

/// Parse error for the universe text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> DatasetError {
    DatasetError::Parse(ParseError {
        line,
        message: message.into(),
    })
}

/// Parses a universe from the text format. Validates the result.
///
/// Syntax problems surface as [`DatasetError::Parse`] with a 1-based line
/// number; a well-formed file describing an inconsistent universe (dangling
/// indices, non-finite weights, cost overflow, …) surfaces as the
/// corresponding semantic [`DatasetError`] variant. This function never
/// panics, whatever the input bytes — the no-panic fuzz harness in
/// `tests/tests/no_panic.rs` feeds it arbitrary strings.
pub fn from_text(text: &str) -> Result<Universe, DatasetError> {
    let mut name = String::from("unnamed");
    let mut photos: Vec<(u32, u64, String)> = Vec::new();
    let mut embeddings: Vec<(u32, Embedding)> = Vec::new();
    let mut exif: Vec<(u32, ExifData)> = Vec::new();
    let mut subsets: Vec<SubsetDef> = Vec::new();
    let mut required: Vec<u32> = Vec::new();

    for (ln, raw) in text.lines().enumerate() {
        let lineno = ln + 1;
        let line = raw.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Fields are consumed straight off the `split` iterator — no
        // intermediate per-line `Vec<&str>` — so a parse is one pass over
        // the bytes plus only the output allocations. Each arm checks its
        // arity before parsing, preserving error precedence and messages.
        let mut fields = line.split('\t');
        let tag = fields.next().unwrap_or_default();
        match tag {
            "name" => {
                name = fields
                    .next()
                    .ok_or_else(|| err(lineno, "missing name"))?
                    .to_string();
            }
            "photo" => {
                let (Some(id), Some(cost), Some(first)) =
                    (fields.next(), fields.next(), fields.next())
                else {
                    return Err(err(lineno, "photo needs id, cost, name"));
                };
                let id: u32 = id.parse().map_err(|_| err(lineno, "bad photo id"))?;
                let cost: u64 = cost.parse().map_err(|_| err(lineno, "bad cost"))?;
                // The name is the rest of the line verbatim, tabs included.
                let mut pname = first.to_string();
                for part in fields {
                    pname.push('\t');
                    pname.push_str(part);
                }
                photos.push((id, cost, pname));
            }
            "embedding" => {
                let (Some(id), Some(first)) = (fields.next(), fields.next()) else {
                    return Err(err(lineno, "embedding needs id and values"));
                };
                let id: u32 = id.parse().map_err(|_| err(lineno, "bad id"))?;
                let mut values: Vec<f32> = Vec::new();
                for v in std::iter::once(first).chain(fields) {
                    values.push(v.parse().map_err(|_| err(lineno, "bad embedding value"))?);
                }
                embeddings.push((id, Embedding(values)));
            }
            "exif" => {
                let (Some(id), Some(ts), Some(lat), Some(lon), Some(camera), None) = (
                    fields.next(),
                    fields.next(),
                    fields.next(),
                    fields.next(),
                    fields.next(),
                    fields.next(),
                ) else {
                    return Err(err(lineno, "exif needs id, ts, lat, lon, camera"));
                };
                let id: u32 = id.parse().map_err(|_| err(lineno, "bad id"))?;
                exif.push((
                    id,
                    ExifData {
                        timestamp: ts.parse().map_err(|_| err(lineno, "bad ts"))?,
                        latitude: lat.parse().map_err(|_| err(lineno, "bad lat"))?,
                        longitude: lon.parse().map_err(|_| err(lineno, "bad lon"))?,
                        camera: camera.parse().map_err(|_| err(lineno, "bad camera"))?,
                    },
                ));
            }
            "subset" => {
                let (Some(label), Some(weight), Some(first)) =
                    (fields.next(), fields.next(), fields.next())
                else {
                    return Err(err(lineno, "subset needs label, weight, members"));
                };
                let label = label.to_string();
                let weight: f64 = weight.parse().map_err(|_| err(lineno, "bad weight"))?;
                let mut members = Vec::new();
                let mut relevance = Vec::new();
                for pair in std::iter::once(first).chain(fields) {
                    let (m, r) = pair
                        .split_once(':')
                        .ok_or_else(|| err(lineno, "member needs id:relevance"))?;
                    members.push(m.parse().map_err(|_| err(lineno, "bad member id"))?);
                    relevance.push(r.parse().map_err(|_| err(lineno, "bad relevance"))?);
                }
                subsets.push(SubsetDef {
                    label,
                    weight,
                    members,
                    relevance,
                });
            }
            "required" => {
                for r in fields {
                    required.push(r.parse().map_err(|_| err(lineno, "bad required id"))?);
                }
            }
            other => return Err(err(lineno, format!("unknown record `{other}`"))),
        }
    }

    let n = photos.len();
    photos.sort_unstable_by_key(|&(id, _, _)| id);
    for (expect, &(id, _, _)) in photos.iter().enumerate() {
        if id as usize != expect {
            return Err(err(0, format!("photo ids not dense: missing {expect}")));
        }
    }
    embeddings.sort_unstable_by_key(|&(id, _)| id);
    if embeddings.len() != n {
        return Err(err(0, "embedding count does not match photo count"));
    }
    let exif_opt = if exif.is_empty() {
        None
    } else {
        if exif.len() != n {
            return Err(err(0, "exif count does not match photo count"));
        }
        exif.sort_unstable_by_key(|&(id, _)| id);
        Some(exif.into_iter().map(|(_, e)| e).collect())
    };

    let universe = Universe {
        name,
        names: photos.iter().map(|(_, _, n)| n.clone()).collect(),
        costs: photos.iter().map(|&(_, c, _)| c).collect(),
        embeddings: embeddings.into_iter().map(|(_, e)| e).collect(),
        exif: exif_opt,
        subsets,
        required,
    };
    universe.validate()?;
    Ok(universe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::openimages::{generate_openimages, OpenImagesConfig};

    fn sample() -> Universe {
        let mut u = generate_openimages(&OpenImagesConfig {
            name: "io-test".into(),
            photos: 40,
            target_subsets: 10,
            seed: 5,
            required_fraction: 0.1,
            ..Default::default()
        });
        u.exif = Some((0..40).map(|i| ExifData::synthesize(i % 4, i)).collect());
        u
    }

    #[test]
    fn roundtrip_is_lossless() {
        let u = sample();
        let text = to_text(&u);
        let v = from_text(&text).unwrap();
        assert_eq!(u.name, v.name);
        assert_eq!(u.names, v.names);
        assert_eq!(u.costs, v.costs);
        assert_eq!(u.required, v.required);
        assert_eq!(u.subsets.len(), v.subsets.len());
        for (a, b) in u.subsets.iter().zip(&v.subsets) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.members, b.members);
            assert_eq!(a.weight, b.weight);
            for (ra, rb) in a.relevance.iter().zip(&b.relevance) {
                assert_eq!(ra, rb, "relevance must round-trip exactly");
            }
        }
        for (ea, eb) in u.embeddings.iter().zip(&v.embeddings) {
            assert_eq!(ea.as_slice(), eb.as_slice());
        }
        assert_eq!(u.exif, v.exif);
    }

    #[test]
    fn rejects_missing_embeddings() {
        let u = sample();
        let text: String = to_text(&u)
            .lines()
            .filter(|l| !l.starts_with("embedding\t3\t"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(from_text(&text).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_text("frobnicate\t1").is_err());
        assert!(from_text("photo\tx\ty\tz").is_err());
        let e = from_text("subset\tq\tnot-a-number\t0:1").unwrap_err();
        assert!(e.to_string().contains("weight"));
    }

    #[test]
    fn rejects_truncated_records() {
        // A photo line cut off before its cost.
        assert!(from_text("photo\t0").is_err());
        // An embedding line cut off before its values.
        let e = from_text("photo\t0\t100\ta\nembedding\t0").unwrap_err();
        assert!(e.to_string().contains("embedding"));
        // A file cut off before the embeddings section entirely.
        let e = from_text("photo\t0\t100\ta\nphoto\t1\t200\tb").unwrap_err();
        assert!(e.to_string().contains("embedding count"));
        // A subset member pair cut off at the colon.
        let text = "photo\t0\t100\ta\nembedding\t0\t1.0\nsubset\tq\t1.0\t0";
        assert!(from_text(text).is_err());
    }

    #[test]
    fn rejects_non_finite_weights_and_relevance() {
        let head = "photo\t0\t100\ta\nembedding\t0\t1.0\n";
        for bad in [
            "subset\tq\tNaN\t0:1",
            "subset\tq\tinf\t0:1",
            "subset\tq\t-inf\t0:1",
            "subset\tq\t0\t0:1",
            "subset\tq\t1.0\t0:NaN",
            "subset\tq\t1.0\t0:-2",
        ] {
            let e = from_text(&format!("{head}{bad}")).unwrap_err();
            assert!(
                matches!(e, DatasetError::InvalidUniverse(_)),
                "{bad}: wrong error {e}"
            );
        }
    }

    #[test]
    fn rejects_cost_sum_overflow() {
        let max = u64::MAX;
        let text = format!(
            "photo\t0\t{max}\ta\nphoto\t1\t{max}\tb\n\
             embedding\t0\t1.0\nembedding\t1\t0.5\n"
        );
        let e = from_text(&text).unwrap_err();
        assert!(matches!(e, DatasetError::CostOverflow), "got {e}");
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let u = sample();
        let text = format!("# leading comment\n\n{}\n# trailing\n", to_text(&u));
        assert!(from_text(&text).is_ok());
    }
}
