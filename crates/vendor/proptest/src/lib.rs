//! Offline, dependency-free shim of the `proptest` API surface used by this
//! workspace.
//!
//! The real `proptest` crate cannot be fetched in this build environment, so
//! this shim re-implements the subset our property tests rely on:
//!
//! * [`Strategy`] with [`Strategy::prop_map`], implemented for integer
//!   ranges, [`any`], and tuples;
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`
//!   header) expanding each `#[test] fn name(pat in strategy) { .. }` item
//!   into a seeded loop over `cases` generated inputs;
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`.
//!
//! Unlike the real proptest there is no shrinking and no failure
//! persistence: inputs are generated from a deterministic per-test seed, so
//! every run explores the same cases and failures reproduce immediately.

#![warn(missing_docs)]

/// Deterministic generator driving input generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator seeded from a test-identifying string.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps the compute-bound
        // suites in this workspace fast while still exploring broadly.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test inputs (mirrors `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "anything" strategy (mirrors
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current generated case when the precondition fails.
///
/// Expands to an early `return` from the per-case closure the [`proptest!`]
/// macro wraps each body in, mirroring proptest's case rejection.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests over generated inputs.
///
/// Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u64..100, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __proptest_case in 0..cfg.cases {
                    let __proptest_values = ($( $crate::Strategy::generate(&($strat), &mut rng), )+);
                    let __proptest_run = move || {
                        let ($($pat,)+) = __proptest_values;
                        $body
                    };
                    let _ = __proptest_case;
                    __proptest_run();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair_strategy() -> impl Strategy<Value = (u64, usize)> {
        (any::<u64>(), 3usize..9).prop_map(|(a, b)| (a ^ 1, b + 1))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5usize..30, y in 0u64..1000) {
            prop_assert!((5..30).contains(&x));
            prop_assert!(y < 1000);
        }

        #[test]
        fn mapped_tuples_destructure((a, b) in pair_strategy()) {
            prop_assert!((4..=9).contains(&b));
            prop_assert_eq!(a, a);
        }

        #[test]
        fn assume_skips_cases(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("u");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
