//! Fixture: narrowing conversions carrying their own evidence — a checked
//! `try_from` and an explicit range guard dominating the cast.

pub fn offsets(names: &[String]) -> Result<u32, &'static str> {
    u32::try_from(names.len()).map_err(|_| "too many names")
}

pub fn read_count(raw: u64) -> Result<usize, &'static str> {
    if raw > usize::MAX as u64 {
        return Err("count exceeds the address space");
    }
    Ok(raw as usize)
}
