//! Fixture: unordered hash iteration reaching results, two shapes — a
//! method call on a tracked binding and a `for` loop over a tracked place.

use std::collections::{HashMap, HashSet};

pub fn total(weights: &HashMap<u32, f64>) -> f64 {
    let mut sum = 0.0;
    for (_, w) in weights.iter() {
        sum += w;
    }
    sum
}

pub fn first_digitful(seen: HashSet<u32>) -> u32 {
    let mut acc = 0;
    for v in &seen {
        acc = acc * 10 + v % 10;
    }
    acc
}
