//! # par-study — the user study, simulated (Section 5.4 of the paper)
//!
//! The paper's user study put three XYZ business analysts in front of the
//! landing-page curation task: manually pick the photos to retain for a set
//! of weighted queries under a byte budget, then compare against PHOcus both
//! on quality and wall-clock effort, and finally run a 50-round blind
//! preference test between PHOcus and the best baseline on ~100-photo
//! sub-instances.
//!
//! Humans are the one resource a reproduction cannot ship, so this crate
//! simulates them with an explicit, documented model:
//!
//! * [`analyst`] — the *manual workflow*: walk landing pages in descending
//!   importance, browse each page's candidates, pick the most relevant photos
//!   page by page (reusing a photo when the analyst notices it already
//!   serves another page), stop when the budget is filled. An inspection-cost
//!   time model (seconds per photo browsed, overhead per page) calibrated to
//!   the paper's reported 6–14 hours;
//! * [`preference`] — the blind preference test: a noisy expert oracle
//!   scores both solutions (true objective + perception noise) and declares
//!   a winner or "cannot decide" within an indifference margin.
//!
//! The absolute human numbers are unknowable without humans; the *protocol*,
//! the relative outcomes (PHOcus 15–25% higher quality, ~50× less effort,
//! overwhelming preference) and every piece of system code they exercise are
//! reproduced faithfully.

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod analyst;
pub mod domains;
pub mod insights;
pub mod preference;

pub use analyst::{ManualAnalyst, ManualOutcome};
pub use domains::{domain_study, DomainStudyRow};
pub use insights::{analyze, InsightReport};
pub use preference::{preference_study, PreferenceConfig, PreferenceCounts};
