//! Bit-level determinism of the parallel execution layer.
//!
//! The workspace promises that the `parallel` cargo feature changes only
//! wall-clock, never results: every kernel (batch gain evaluation, exact
//! scoring, SimHash signing, LSH candidate verification) produces the same
//! bytes in serial and parallel builds, at every thread count.
//!
//! This test proves the promise two ways:
//!
//! 1. **runtime**: each fixture is solved under an installed serial
//!    `Parallelism` and again under four worker threads, and the two result
//!    transcripts must hash identically;
//! 2. **cross-build**: the transcript hashes are pinned as golden constants,
//!    so running the suite with `--features parallel` and again with
//!    `--no-default-features` checks both builds against the *same* bytes.
//!    (The constants contain no `cfg` branches — a drift in either build
//!    fails here.)

use par_algo::{eager_greedy, lazy_greedy, GreedyRule};
use par_core::fixtures::{random_instance, RandomInstanceConfig, SplitMix64};
use par_core::{exact_score, Evaluator, PhotoId, SubsetId};
use par_exec::Parallelism;
use par_lsh::similar_pairs;

/// FNV-1a, 64-bit: tiny, stable, dependency-free transcript hashing.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
    fn u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

/// Three seeded fixtures of different shapes (size, budget tightness,
/// required photos) so the transcript exercises short and long greedy runs.
fn fixture_configs() -> [(u64, RandomInstanceConfig); 3] {
    [
        (0xD1CE_0001, RandomInstanceConfig::default()),
        (
            0xD1CE_0002,
            RandomInstanceConfig {
                photos: 120,
                subsets: 25,
                subset_size: (3, 10),
                budget_fraction: 0.25,
                ..Default::default()
            },
        ),
        (
            0xD1CE_0003,
            RandomInstanceConfig {
                photos: 80,
                subsets: 15,
                required_prob: 0.05,
                budget_fraction: 0.6,
                ..Default::default()
            },
        ),
    ]
}

/// Solves one fixture with both greedy variants plus an exact-score pass and
/// an LSH pair sweep, folding every result bit into one hash. Independent of
/// any `cfg`: the same bytes must come out of serial and parallel builds.
fn transcript_hash(seed: u64, cfg: &RandomInstanceConfig) -> u64 {
    let mut h = Fnv::new();
    let inst = random_instance(seed, cfg);

    for rule in [GreedyRule::CostBenefit, GreedyRule::UnitCost] {
        let lazy = lazy_greedy(&inst, rule);
        let eager = eager_greedy(&inst, rule);
        assert_eq!(lazy.selected, eager.selected, "lazy vs eager diverged");
        // The component-sharded driver promises a bit-identical transcript;
        // assert it against the same run the goldens pin (without folding new
        // bytes into the hash, so the pinned constants stay valid).
        let sharded = par_algo::sharded_lazy_greedy(&inst, rule);
        assert_eq!(sharded.selected, lazy.selected, "sharded vs lazy diverged");
        assert_eq!(
            sharded.score.to_bits(),
            lazy.score.to_bits(),
            "sharded score bits diverged"
        );
        for &p in &lazy.selected {
            h.u32(p.0);
        }
        h.f64(lazy.score);
        h.f64(eager.score);
        h.u64(lazy.stats.gain_evals);
        h.u64(eager.stats.gain_evals);
        h.f64(exact_score(&inst, &lazy.selected));
    }

    // A deterministic embedding per photo drives the SimHash/LSH pipeline.
    let vectors: Vec<Vec<f32>> = (0..inst.num_photos())
        .map(|i| {
            let mut rng = SplitMix64::new(seed ^ (0x5EED << 8) ^ i as u64);
            (0..24).map(|_| (rng.next_f64() * 2.0 - 1.0) as f32).collect()
        })
        .collect();
    for (i, j, cos) in similar_pairs(&vectors, 0.5, 0.9, seed).unwrap() {
        h.u64(i as u64);
        h.u64(j as u64);
        h.f64(cos);
    }
    h.0
}

/// Exercises the evaluator's raw gain/add/remove kernels directly (below the
/// solver layer): a full batch-gain sweep, a deterministic add schedule with
/// interleaved removals, and per-subset score probes, folding every returned
/// f64 and both instrumentation counters into the hash. This pins the arena
/// layout and fused-weight arithmetic independently of solver behavior.
fn evaluator_transcript_hash(seed: u64, cfg: &RandomInstanceConfig) -> u64 {
    let mut h = Fnv::new();
    let inst = random_instance(seed, cfg);
    let mut ev = Evaluator::new(&inst);
    let all: Vec<PhotoId> = (0..inst.num_photos() as u32).map(PhotoId).collect();

    for g in ev.batch_gains(&all) {
        h.f64(g);
    }

    // Deterministic mutation schedule: add a seeded sample, occasionally
    // removing an earlier pick, so best/provider rescans are exercised.
    let mut rng = SplitMix64::new(seed ^ 0xE7A1);
    for step in 0..40u64 {
        let p = PhotoId(rng.next_below(inst.num_photos()) as u32);
        if step % 5 == 4 && ev.num_selected() > 0 {
            let victim = ev.selected_ids()[rng.next_below(ev.num_selected())];
            h.f64(ev.remove(victim));
        } else {
            h.f64(ev.add(p));
        }
        h.f64(ev.score());
    }
    for q in 0..inst.num_subsets() {
        h.f64(ev.subset_score(SubsetId(q as u32)));
    }
    h.f64(exact_score(&inst, ev.selected_ids()));
    let stats = ev.stats();
    h.u64(stats.gain_evals);
    h.u64(stats.sim_ops);
    h.0
}

/// The pinned transcript hashes. Regenerate by running this test with
/// `PRINT_TRANSCRIPTS=1 cargo test -p integration-tests determinism -- --nocapture`.
const GOLDEN: [u64; 3] = [
    0x66a37933c61d6597,
    0x1eb12feada2cb7c6,
    0xaa22c92fe950299f,
];

/// Pinned evaluator-kernel transcript hashes; same regeneration recipe.
const EVALUATOR_GOLDEN: [u64; 3] = [
    0xda29f6b10a5b26e4,
    0x7389f69f18e5885f,
    0x4d4671b33be8cddc,
];

#[test]
fn results_are_bit_identical_serial_and_parallel() {
    let mut hashes = Vec::new();
    for (k, (seed, cfg)) in fixture_configs().iter().enumerate() {
        let prev = Parallelism::serial().install_global();
        let serial = transcript_hash(*seed, cfg);
        Parallelism::with_threads(4).install_global();
        let parallel = transcript_hash(*seed, cfg);
        prev.install_global();

        if std::env::var("PRINT_TRANSCRIPTS").is_ok() {
            println!("fixture {k}: 0x{serial:016x}");
        }
        assert_eq!(
            serial, parallel,
            "fixture {k}: serial and 4-thread transcripts differ"
        );
        hashes.push(serial);
    }
    assert_eq!(
        hashes,
        GOLDEN,
        "transcripts drifted from the pinned golden hashes \
         (build features: parallel={})",
        par_exec::parallel_enabled()
    );
}

/// The persistent worker pool must be invisible in results at *every* thread
/// count: the same pinned goldens come out under the serial fallback and
/// under pools of 2 and 8 parked workers. Running all counts in one process
/// also exercises pool reconfiguration (grow/shrink between installs) — the
/// chunk-assignment arithmetic, not the worker count, determines the bytes.
#[test]
fn pool_thread_counts_share_the_goldens() {
    for threads in [1usize, 2, 8] {
        let prev = Parallelism::with_threads(threads).install_global();
        for (k, (seed, cfg)) in fixture_configs().iter().enumerate() {
            assert_eq!(
                transcript_hash(*seed, cfg),
                GOLDEN[k],
                "fixture {k}: transcript drifted under pool threads={threads}"
            );
            assert_eq!(
                evaluator_transcript_hash(*seed, cfg),
                EVALUATOR_GOLDEN[k],
                "fixture {k}: evaluator transcript drifted under pool threads={threads}"
            );
        }
        prev.install_global();
    }
}

#[test]
fn evaluator_kernels_are_bit_identical_serial_and_parallel() {
    let mut hashes = Vec::new();
    for (k, (seed, cfg)) in fixture_configs().iter().enumerate() {
        let prev = Parallelism::serial().install_global();
        let serial = evaluator_transcript_hash(*seed, cfg);
        Parallelism::with_threads(4).install_global();
        let parallel = evaluator_transcript_hash(*seed, cfg);
        prev.install_global();

        if std::env::var("PRINT_TRANSCRIPTS").is_ok() {
            println!("evaluator fixture {k}: 0x{serial:016x}");
        }
        assert_eq!(
            serial, parallel,
            "fixture {k}: serial and 4-thread evaluator transcripts differ"
        );
        hashes.push(serial);
    }
    assert_eq!(
        hashes,
        EVALUATOR_GOLDEN,
        "evaluator transcripts drifted from the pinned golden hashes \
         (build features: parallel={})",
        par_exec::parallel_enabled()
    );
}
