//! End-to-end pipeline tests: generate → represent → solve → validate,
//! across both dataset families and all three similarity representations.

use par_core::Solution;
use par_datasets::{generate_ecommerce, generate_openimages, EcConfig, EcDomain, OpenImagesConfig};
use phocus::{represent, Phocus, PhocusConfig, RepresentationConfig, Sparsification};

fn public_universe(seed: u64) -> par_datasets::Universe {
    generate_openimages(&OpenImagesConfig {
        name: "it-public".into(),
        photos: 300,
        target_subsets: 60,
        seed,
        ..Default::default()
    })
}

#[test]
fn public_pipeline_dense() {
    let u = public_universe(1);
    let budget = u.total_cost() / 5;
    let inst = represent(&u, budget, &RepresentationConfig::default()).unwrap();
    let out = par_algo::main_algorithm(&inst);
    let sol = Solution::new(&inst, out.best.selected).unwrap();
    assert!(sol.cost() <= budget);
    assert!(sol.score() > 0.0);
    // Coverage: a decent solution touches most subsets.
    let cov = sol.coverage(&inst);
    assert!(
        cov.covered * 10 >= cov.subsets * 5,
        "covered only {}/{}",
        cov.covered,
        cov.subsets
    );
}

#[test]
fn public_pipeline_all_representations_agree_roughly() {
    let u = public_universe(2);
    let budget = u.total_cost() / 5;
    let dense = represent(&u, budget, &RepresentationConfig::default()).unwrap();
    let dense_sel = par_algo::main_algorithm(&dense).best.selected;
    let dense_q = Solution::new_unchecked(&dense, dense_sel).score();

    for sparsification in [
        Sparsification::Threshold { tau: 0.6 },
        Sparsification::Lsh {
            tau: 0.6,
            target_recall: 0.95,
            seed: 3,
        },
    ] {
        let cfg = RepresentationConfig {
            sparsification,
            ..Default::default()
        };
        let inst = represent(&u, budget, &cfg).unwrap();
        let sel = par_algo::main_algorithm(&inst).best.selected;
        // Score the sparsified selection under the TRUE objective.
        let q = Solution::new_unchecked(&dense, sel).score();
        assert!(
            q >= 0.85 * dense_q,
            "{sparsification:?}: quality {q} vs dense {dense_q}"
        );
    }
}

#[test]
fn ecommerce_pipeline_with_required_photos() {
    let mut cfg = EcConfig::small(EcDomain::Electronics, 4);
    cfg.required_brand_fraction = 0.3;
    let u = generate_ecommerce(&cfg);
    assert!(!u.required.is_empty(), "flagship photos should be required");
    let budget = u.total_cost() / 6;
    let solver = Phocus::new(PhocusConfig {
        representation: RepresentationConfig::phocus(0.5),
        certify_sparsification: true,
        ..Default::default()
    });
    let report = solver.solve(&u, budget).unwrap();
    // Required photos retained.
    for &r in &u.required {
        assert!(
            report.selected.contains(&par_core::PhotoId(r)),
            "required photo {r} missing"
        );
    }
    // Certificate present and sane.
    let cert = report.sparsification.unwrap();
    assert!(cert.alpha > 0.0 && cert.alpha <= 1.0);
    assert!(report.online.ratio > 0.0 && report.online.ratio <= 1.0);
}

#[test]
fn rendered_fidelity_end_to_end() {
    // Pixels → features → embeddings → instance → solution.
    let u = generate_openimages(&OpenImagesConfig {
        name: "it-rendered".into(),
        photos: 60,
        target_subsets: 15,
        seed: 5,
        fidelity: par_datasets::openimages::Fidelity::Rendered,
        ..Default::default()
    });
    let budget = u.total_cost() / 3;
    let inst = represent(&u, budget, &RepresentationConfig::default()).unwrap();
    let out = par_algo::main_algorithm(&inst);
    let sol = Solution::new(&inst, out.best.selected).unwrap();
    assert!(sol.score() > 0.0);
    assert!(sol.cost() <= budget);
}

#[test]
fn budget_sweep_is_monotone() {
    // More budget never hurts the solver's achieved quality.
    let u = public_universe(6);
    let mut last = 0.0;
    for frac in [5u64, 10, 20, 40, 80, 100] {
        let budget = u.total_cost() * frac / 100;
        let inst = represent(&u, budget, &RepresentationConfig::default()).unwrap();
        let out = par_algo::main_algorithm(&inst);
        assert!(
            out.best.score >= last - 1e-9,
            "quality dropped at {frac}%: {} < {last}",
            out.best.score
        );
        last = out.best.score;
    }
    // At 100% everything is retained.
    let inst = represent(&u, u.total_cost(), &RepresentationConfig::default()).unwrap();
    assert!((par_algo::main_algorithm(&inst).best.score - inst.max_score()).abs() < 1e-6);
}

#[test]
fn exif_mixing_changes_the_solution_scores() {
    let mut u = public_universe(7);
    // Attach synthetic EXIF: photos sharing a label share an event.
    let exif: Vec<par_embed::ExifData> = (0..u.num_photos())
        .map(|i| par_embed::ExifData::synthesize((i % 13) as u64, i as u64))
        .collect();
    u.exif = Some(exif);
    let budget = u.total_cost() / 5;
    let plain = represent(&u, budget, &RepresentationConfig::default()).unwrap();
    let mixed = represent(
        &u,
        budget,
        &RepresentationConfig {
            exif_weight: 0.4,
            ..Default::default()
        },
    )
    .unwrap();
    let set: Vec<par_core::PhotoId> = (0..60).map(par_core::PhotoId).collect();
    let a = par_core::exact_score(&plain, &set);
    let b = par_core::exact_score(&mixed, &set);
    assert!((a - b).abs() > 1e-9, "EXIF mixing had no effect");
}
