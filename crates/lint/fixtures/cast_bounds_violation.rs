//! Fixture: narrowing casts with no local evidence that the value fits.

pub fn offsets(names: &[String]) -> u32 {
    names.len() as u32
}

pub fn read_count(raw: u64) -> usize {
    raw as usize
}
