//! Fixture-corpus tests: every rule fires on its violation fixture and
//! stays silent on the suppressed variant, so a rule (or the suppression
//! machinery) cannot silently stop working.

use par_lint::{lint_source, CrateCategory, FileKind, FileSpec};

/// Lints a fixture as ordinary library code of a non-exempt crate.
fn lint(src: &str) -> Vec<par_lint::Diagnostic> {
    lint_source(
        FileSpec {
            path: "crates/fixture/src/code.rs",
            crate_name: "par-fixture",
            category: CrateCategory::Library,
            kind: FileKind::Lib,
        },
        src,
    )
}

fn rules(diags: &[par_lint::Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

#[test]
fn float_ord_fires_and_suppresses() {
    let hits = lint(include_str!("../fixtures/float_ord_violation.rs"));
    assert_eq!(rules(&hits), ["float-ord"], "{hits:#?}");
    assert_eq!(hits[0].line, 6);
    let clean = lint(include_str!("../fixtures/float_ord_suppressed.rs"));
    assert!(clean.is_empty(), "{clean:#?}");
}

#[test]
fn hash_iter_fires_on_both_shapes_and_suppresses() {
    let hits = lint(include_str!("../fixtures/hash_iter_violation.rs"));
    assert_eq!(rules(&hits), ["hash-iter", "hash-iter"], "{hits:#?}");
    let clean = lint(include_str!("../fixtures/hash_iter_suppressed.rs"));
    assert!(clean.is_empty(), "{clean:#?}");
}

#[test]
fn wall_clock_fires_and_suppresses() {
    let hits = lint(include_str!("../fixtures/wall_clock_violation.rs"));
    assert_eq!(rules(&hits), ["wall-clock"], "{hits:#?}");
    let clean = lint(include_str!("../fixtures/wall_clock_suppressed.rs"));
    assert!(clean.is_empty(), "{clean:#?}");
}

#[test]
fn parallel_cfg_fires_and_suppresses() {
    let hits = lint(include_str!("../fixtures/parallel_cfg_violation.rs"));
    assert_eq!(rules(&hits), ["parallel-cfg"], "{hits:#?}");
    let clean = lint(include_str!("../fixtures/parallel_cfg_suppressed.rs"));
    assert!(clean.is_empty(), "{clean:#?}");
}

#[test]
fn parallel_cfg_is_exempt_in_par_exec() {
    let hits = lint_source(
        FileSpec {
            path: "crates/exec/src/pool.rs",
            crate_name: "par-exec",
            category: CrateCategory::Library,
            kind: FileKind::Lib,
        },
        include_str!("../fixtures/parallel_cfg_violation.rs"),
    );
    assert!(hits.is_empty(), "{hits:#?}");
}

#[test]
fn no_print_fires_on_output_and_placeholders_and_suppresses() {
    let hits = lint(include_str!("../fixtures/no_print_violation.rs"));
    assert_eq!(rules(&hits), ["no-print", "no-print"], "{hits:#?}");
    assert!(hits[1].message.contains("placeholder"), "{hits:#?}");
    let clean = lint(include_str!("../fixtures/no_print_suppressed.rs"));
    assert!(clean.is_empty(), "{clean:#?}");
}

#[test]
fn no_print_is_exempt_in_bin_sources() {
    let hits = lint_source(
        FileSpec {
            path: "crates/fixture/src/bin/cli.rs",
            crate_name: "par-fixture",
            category: CrateCategory::Library,
            kind: FileKind::Bin,
        },
        include_str!("../fixtures/no_print_violation.rs"),
    );
    assert!(hits.is_empty(), "{hits:#?}");
}

#[test]
fn no_unsafe_fires_and_suppresses() {
    let hits = lint(include_str!("../fixtures/no_unsafe_violation.rs"));
    assert_eq!(rules(&hits), ["no-unsafe"], "{hits:#?}");
    let clean = lint(include_str!("../fixtures/no_unsafe_suppressed.rs"));
    assert!(clean.is_empty(), "{clean:#?}");
}

#[test]
fn crate_root_without_forbid_attr_is_flagged() {
    let spec = |src| {
        lint_source(
            FileSpec {
                path: "crates/fixture/src/lib.rs",
                crate_name: "par-fixture",
                category: CrateCategory::Library,
                kind: FileKind::Lib,
            },
            src,
        )
    };
    let bare = spec("pub fn f() {}\n");
    assert_eq!(rules(&bare), ["no-unsafe"], "{bare:#?}");
    assert!(bare[0].message.contains("forbid(unsafe_code)"));
    let guarded = spec("#![forbid(unsafe_code)]\npub fn f() {}\n");
    assert!(guarded.is_empty(), "{guarded:#?}");
}

#[test]
fn unknown_rule_in_pragma_is_reported() {
    let hits = lint(include_str!("../fixtures/lint_meta_violation.rs"));
    assert_eq!(rules(&hits), ["lint-meta"], "{hits:#?}");
    assert!(hits[0].message.contains("no-such-rule"), "{hits:#?}");
}

#[test]
fn clean_fixture_produces_nothing() {
    let hits = lint(include_str!("../fixtures/clean.rs"));
    assert!(hits.is_empty(), "{hits:#?}");
}

#[test]
fn alloc_hot_fires_directly_and_transitively_and_suppresses() {
    let hits = lint(include_str!("../fixtures/alloc_hot_violation.rs"));
    let hot: Vec<_> = hits.iter().filter(|d| d.rule == "alloc-hot").collect();
    assert!(hot.len() >= 2, "{hits:#?}");
    assert!(
        hot.iter().any(|d| d.message.contains("dispatch → helper")),
        "expected a transitive witness chain:\n{hits:#?}"
    );
    let clean = lint(include_str!("../fixtures/alloc_hot_suppressed.rs"));
    assert!(!rules(&clean).contains(&"alloc-hot"), "{clean:#?}");
}

#[test]
fn cast_bounds_fires_on_both_directions_and_suppresses() {
    let hits = lint(include_str!("../fixtures/cast_bounds_violation.rs"));
    let casts: Vec<_> = hits.iter().filter(|d| d.rule == "cast-bounds").collect();
    assert_eq!(casts.len(), 2, "{hits:#?}");
    assert!(casts.iter().any(|d| d.message.contains("u32")), "{hits:#?}");
    assert!(casts.iter().any(|d| d.message.contains("usize")), "{hits:#?}");
    let clean = lint(include_str!("../fixtures/cast_bounds_suppressed.rs"));
    assert!(!rules(&clean).contains(&"cast-bounds"), "{clean:#?}");
}

#[test]
fn cast_bounds_accepts_guarded_and_checked_conversions() {
    let hits = lint(include_str!("../fixtures/cast_bounds_clean.rs"));
    assert!(hits.is_empty(), "{hits:#?}");
}

#[test]
fn reduce_order_fires_directly_and_transitively_and_suppresses() {
    let hits = lint(include_str!("../fixtures/reduce_order_violation.rs"));
    let red: Vec<_> = hits.iter().filter(|d| d.rule == "reduce-order").collect();
    assert!(red.len() >= 2, "{hits:#?}");
    assert!(
        red.iter().any(|d| d.message.contains("bump")),
        "expected the transitive callee in a witness:\n{hits:#?}"
    );
    let clean = lint(include_str!("../fixtures/reduce_order_suppressed.rs"));
    assert!(!rules(&clean).contains(&"reduce-order"), "{clean:#?}");
}

#[test]
fn lint_meta_suppresses_through_its_own_rule_list() {
    let clean = lint(include_str!("../fixtures/lint_meta_suppressed.rs"));
    assert!(!rules(&clean).contains(&"lint-meta"), "{clean:#?}");
}

/// Crate- or workspace-level rules that cannot be demonstrated in a
/// single-file fixture: `crate-dag` reads Cargo manifests and `ci-gate`
/// reads `ci.sh`. Everything else must carry the full fixture triple.
const WORKSPACE_RULES: [&str; 2] = ["crate-dag", "ci-gate"];

/// Meta-test over the corpus itself: every registered per-file rule has a
/// violation fixture that fires it, a suppressed fixture that silences it
/// with a rationale, and a clean fixture with zero findings of that rule —
/// so a rule (or its fixture) cannot rot without this test noticing.
#[test]
fn every_per_file_rule_has_a_complete_fixture_triple() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    for rule in par_lint::rules::RULES {
        if WORKSPACE_RULES.contains(rule) {
            continue;
        }
        let stem = rule.replace('-', "_");
        let read = |suffix: &str| {
            let path = dir.join(format!("{stem}_{suffix}.rs"));
            std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()))
        };
        let violation = lint(&read("violation"));
        assert!(
            rules(&violation).contains(rule),
            "{rule}: violation fixture does not fire it:\n{violation:#?}"
        );
        let suppressed = lint(&read("suppressed"));
        assert!(
            !rules(&suppressed).contains(rule),
            "{rule}: suppressed fixture still fires it:\n{suppressed:#?}"
        );
        let clean = lint(&read("clean"));
        assert!(
            !rules(&clean).contains(rule),
            "{rule}: clean fixture fires it:\n{clean:#?}"
        );
    }
}
