//! Typed errors for the solver layer.

use par_core::ModelError;
use std::fmt;

/// Errors raised by solvers on invalid parameters or model violations.
///
/// Part of the workspace-wide `PhocusError` hierarchy: `phocus::PhocusError`
/// wraps [`SolveError`] via `From`, so solver misconfiguration surfaces to
/// the CLI as a diagnostic instead of a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// An underlying model operation failed.
    Model(ModelError),
    /// The cardinality bound `k` must be at least 1.
    InvalidCardinality(usize),
    /// The accuracy parameter `ε` must lie strictly inside `(0, 1)`.
    InvalidEpsilon(f64),
    /// The policy-required set `S₀` alone exceeds the cardinality bound.
    RequiredExceedsCardinality {
        /// Number of required photos.
        required: usize,
        /// The cardinality bound.
        k: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Model(e) => write!(f, "model error: {e}"),
            SolveError::InvalidCardinality(k) => {
                write!(f, "cardinality bound k = {k} must be at least 1")
            }
            SolveError::InvalidEpsilon(e) => {
                write!(f, "accuracy parameter ε = {e} must be in (0, 1)")
            }
            SolveError::RequiredExceedsCardinality { required, k } => write!(
                f,
                "required set S₀ ({required} photos) exceeds the cardinality bound k = {k}"
            ),
        }
    }
}

impl std::error::Error for SolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolveError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for SolveError {
    fn from(e: ModelError) -> Self {
        SolveError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: SolveError = ModelError::CostOverflow.into();
        assert!(e.to_string().contains("model error"));
        let dyn_err: &dyn std::error::Error = &e;
        assert!(dyn_err.source().is_some());
        assert!(SolveError::InvalidEpsilon(f64::NAN)
            .to_string()
            .contains("ε"));
        assert!(
            SolveError::RequiredExceedsCardinality { required: 5, k: 3 }
                .to_string()
                .contains("k = 3")
        );
    }
}
