//! Dataset registry: the eight Table 2 datasets at scaled or full size,
//! generated on demand with fixed seeds.

use par_datasets::{
    generate_ecommerce, generate_openimages, EcConfig, EcDomain, OpenImagesConfig, PublicScale,
    Universe,
};

/// Which size to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Shape-preserving scaled-down datasets (seconds to generate/solve).
    Scaled,
    /// Paper-sized datasets.
    Full,
}

/// The eight datasets of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetId {
    /// P-1K public slice.
    P1K,
    /// P-5K public slice.
    P5K,
    /// P-10K public slice.
    P10K,
    /// P-50K public slice.
    P50K,
    /// P-100K public slice.
    P100K,
    /// EC-Fashion domain.
    EcFashion,
    /// EC-Electronics domain.
    EcElectronics,
    /// EC-Home & Garden domain.
    EcHomeGarden,
}

/// Base seed shared by all experiment datasets.
pub const SEED: u64 = 0xEDB7_2023;

/// Generates a dataset. At `Scale::Scaled`, the public slices keep their
/// paper photo counts up to P-10K (they are already fast) while P-50K/P-100K
/// shrink 5×/10×, and the EC domains use the small query-log config
/// (~1–2K photos, 40 queries).
pub fn dataset(id: DatasetId, scale: Scale) -> Universe {
    match id {
        DatasetId::P1K => public(PublicScale::P1K, scale, 1),
        DatasetId::P5K => public(PublicScale::P5K, scale, 1),
        DatasetId::P10K => public(PublicScale::P10K, scale, 1),
        DatasetId::P50K => public(PublicScale::P50K, scale, 1),
        DatasetId::P100K => public(PublicScale::P100K, scale, 1),
        DatasetId::EcFashion => ec(EcDomain::Fashion, scale, 2),
        DatasetId::EcElectronics => ec(EcDomain::Electronics, scale, 3),
        DatasetId::EcHomeGarden => ec(EcDomain::HomeGarden, scale, 4),
    }
}

fn public(s: PublicScale, scale: Scale, salt: u64) -> Universe {
    let mut cfg: OpenImagesConfig = s.config(SEED ^ salt);
    if scale == Scale::Scaled && s.photos() > 10_000 {
        let div = s.photos() / 10_000;
        cfg.photos /= div;
        cfg.target_subsets /= div;
    }
    generate_openimages(&cfg)
}

fn ec(d: EcDomain, scale: Scale, salt: u64) -> Universe {
    let cfg = match scale {
        Scale::Scaled => EcConfig::small(d, SEED ^ salt),
        Scale::Full => EcConfig::paper(d, SEED ^ salt),
    };
    generate_ecommerce(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_p1k_is_full_size() {
        let u = dataset(DatasetId::P1K, Scale::Scaled);
        assert_eq!(u.num_photos(), 1_000);
    }

    #[test]
    fn scaled_p100k_shrinks() {
        let u = dataset(DatasetId::P100K, Scale::Scaled);
        assert_eq!(u.num_photos(), 10_000);
    }

    #[test]
    fn ec_scaled_generates() {
        let u = dataset(DatasetId::EcFashion, Scale::Scaled);
        assert!(u.num_photos() > 100);
        assert_eq!(u.num_subsets(), 40);
    }
}
