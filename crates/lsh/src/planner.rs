//! Parameter planning for banded SimHash.
//!
//! With `r` rows per band and `b` bands, a pair whose per-bit collision
//! probability is `p = 1 − θ/π` (where `θ = arccos(sim)`) becomes a
//! candidate with probability `1 − (1 − pʳ)ᵇ`. The planner picks the
//! cheapest `(r, b)` whose detection probability at the threshold `τ`
//! meets a target recall, while keeping the false-candidate rate for
//! clearly-dissimilar pairs low.

use crate::error::LshError;

/// A banding plan: `rows` bits per band × `bands` bands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LshPlan {
    /// Bits per band (AND construction).
    pub rows: usize,
    /// Number of bands (OR construction).
    pub bands: usize,
}

impl LshPlan {
    /// Total signature bits required.
    pub fn total_bits(&self) -> usize {
        self.rows * self.bands
    }

    /// Probability that a pair with cosine similarity `sim` becomes a
    /// candidate under this plan.
    pub fn detection_probability(&self, sim: f64) -> f64 {
        let p = collision_probability(sim);
        1.0 - (1.0 - p.powi(self.rows as i32)).powi(self.bands as i32)
    }
}

/// Per-bit collision probability of a pair with cosine similarity `sim`:
/// `1 − arccos(sim)/π`.
pub fn collision_probability(sim: f64) -> f64 {
    1.0 - sim.clamp(-1.0, 1.0).acos() / std::f64::consts::PI
}

/// Chooses the cheapest plan achieving `target_recall` at threshold `tau`
/// while keeping the candidate rate for clearly-dissimilar pairs low.
///
/// Scans `rows ∈ 1..=24`; for each, takes the smallest number of bands
/// meeting the recall at `tau`, then requires the detection probability at
/// the *background* similarity `max(0, τ − 0.3)` to stay below 50% (more
/// rows sharpen the S-curve; more bands flatten it). Among feasible plans the
/// fewest total bits wins; if none is feasible the plan with the lowest
/// background detection rate is returned.
///
/// Returns [`LshError`] if `target_recall` is not in `(0, 1]` or `tau` is
/// not a cosine value in `[-1, 1]` (NaN fails both checks).
pub fn plan(tau: f64, target_recall: f64) -> Result<LshPlan, LshError> {
    if !(target_recall > 0.0 && target_recall <= 1.0) {
        return Err(LshError::InvalidRecall(target_recall));
    }
    if !((-1.0..=1.0).contains(&tau)) {
        return Err(LshError::InvalidTau(tau));
    }
    let p = collision_probability(tau);
    let background = (tau - 0.3).max(0.0);
    const MAX_BACKGROUND_RATE: f64 = 0.5;

    let mut best: Option<LshPlan> = None;
    let mut fallback: Option<(f64, LshPlan)> = None;
    for rows in 1..=24usize {
        let pr = p.powi(rows as i32);
        if pr <= 0.0 {
            break;
        }
        // Solve 1 − (1 − pʳ)ᵇ ≥ recall  ⇒  b ≥ ln(1−recall)/ln(1−pʳ).
        let bands = if target_recall >= 1.0 {
            // Recall exactly 1 is impossible; use a very high target.
            (f64::ln(1e-6) / f64::ln(1.0 - pr)).ceil() as usize
        } else {
            (f64::ln(1.0 - target_recall) / f64::ln(1.0 - pr)).ceil() as usize
        }
        .max(1);
        if bands > 256 {
            continue;
        }
        let cand = LshPlan { rows, bands };
        let bg_rate = cand.detection_probability(background);
        match &mut fallback {
            Some((rate, plan)) if bg_rate < *rate => {
                *rate = bg_rate;
                *plan = cand;
            }
            None => fallback = Some((bg_rate, cand)),
            _ => {}
        }
        if bg_rate > MAX_BACKGROUND_RATE {
            continue;
        }
        let better = match best {
            None => true,
            Some(b) => {
                cand.total_bits() < b.total_bits()
                    || (cand.total_bits() == b.total_bits() && cand.rows > b.rows)
            }
        };
        if better {
            best = Some(cand);
        }
    }
    Ok(best
        .or(fallback.map(|(_, p)| p))
        .unwrap_or(LshPlan { rows: 4, bands: 32 }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collision_probability_endpoints() {
        assert!((collision_probability(1.0) - 1.0).abs() < 1e-12);
        assert!((collision_probability(-1.0)).abs() < 1e-12);
        assert!((collision_probability(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn plan_meets_recall_at_threshold() {
        for tau in [0.5, 0.7, 0.9] {
            for recall in [0.8, 0.9, 0.95] {
                let p = plan(tau, recall).unwrap();
                let d = p.detection_probability(tau);
                assert!(
                    d >= recall - 1e-9,
                    "plan {p:?} detects {d} < {recall} at τ={tau}"
                );
            }
        }
    }

    #[test]
    fn detection_is_monotone_in_similarity() {
        let p = plan(0.8, 0.9).unwrap();
        let d_low = p.detection_probability(0.3);
        let d_mid = p.detection_probability(0.6);
        let d_high = p.detection_probability(0.9);
        assert!(d_low <= d_mid && d_mid <= d_high);
    }

    #[test]
    fn plans_filter_dissimilar_pairs() {
        // At τ=0.9 with decent recall, pairs at sim 0.2 should rarely be
        // candidates (this is what makes LSH sub-quadratic).
        let p = plan(0.9, 0.9).unwrap();
        assert!(p.rows >= 2, "plan {p:?} has no AND construction");
        let fp = p.detection_probability(0.2);
        assert!(fp < 0.6, "false-candidate rate {fp} too high for {p:?}");
    }

    #[test]
    fn total_bits_is_rows_times_bands() {
        let p = LshPlan { rows: 8, bands: 16 };
        assert_eq!(p.total_bits(), 128);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert_eq!(plan(0.8, 0.0), Err(LshError::InvalidRecall(0.0)));
        assert_eq!(plan(0.8, 1.5), Err(LshError::InvalidRecall(1.5)));
        assert!(plan(0.8, f64::NAN).is_err());
        assert_eq!(plan(2.0, 0.9), Err(LshError::InvalidTau(2.0)));
        assert!(plan(f64::NAN, 0.9).is_err());
    }
}
