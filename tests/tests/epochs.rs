//! Cross-crate guarantees of the incremental archiver (`par-core` deltas,
//! `par-algo` incremental solver, `par-datasets` churn traces).
//!
//! Three layers of proof:
//!
//! 1. **Partition property**: for any instance and any churn-generated
//!    epoch delta, the incrementally maintained [`ShardLabels`] equal a
//!    from-scratch [`shard_labels`] of the post-delta instance — same
//!    partition, same shard numbering, same singleton pool.
//! 2. **Replay property**: a warm [`IncrementalSolver`] carried through a
//!    churn trace produces, at every epoch, the *bit-identical* outcome of
//!    [`main_algorithm_sharded`] on the post-delta instance — selections,
//!    score bits, and winner rule — under serial, 2- and 8-thread pools.
//! 3. **Pinned goldens**: full epoch-chain transcripts are hashed and
//!    pinned as constants, so serial and parallel builds (and every thread
//!    count) are checked against the same bytes across compilations.

use par_algo::{main_algorithm_sharded, GreedyRule, IncrementalSolver};
use par_core::fixtures::{random_instance, RandomInstanceConfig};
use par_core::{shard_labels, Instance, PhotoId};
use par_datasets::{generate_churn, resolve_epoch, ChurnConfig};
use par_exec::Parallelism;
use proptest::prelude::*;

/// FNV-1a, 64-bit: tiny, stable, dependency-free transcript hashing
/// (same scheme as the determinism suite).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
    fn u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

/// A base instance with several components: sparsified similarities keep
/// the coupling graph fragmented so clean-shard replay actually triggers.
fn base_instance(seed: u64, photos: usize, subsets: usize, budget_pct: u64) -> Instance {
    random_instance(
        seed,
        &RandomInstanceConfig {
            photos,
            subsets,
            subset_size: (2, 8),
            budget_fraction: budget_pct as f64 / 100.0,
            required_prob: 0.04,
            ..Default::default()
        },
    )
    .sparsify(0.6)
}

fn churn_config(epochs: usize, seed: u64) -> ChurnConfig {
    ChurnConfig {
        epochs,
        removal_fraction: 0.05,
        arrivals_mean: 2.0,
        drift_mean: 1.0,
        budget_wobble: 0.1,
        seed,
        ..ChurnConfig::default()
    }
}

fn instance_strategy() -> impl Strategy<Value = (Instance, u64)> {
    (any::<u64>(), 30usize..110, 6usize..22, 20u64..80).prop_map(
        |(seed, photos, subsets, budget_pct)| {
            (
                base_instance(seed, photos, subsets, budget_pct),
                seed ^ 0xC4A2_11ED,
            )
        },
    )
}

/// Asserts two labelings are the same partition with the same numbering.
fn assert_labels_equal(
    incremental: &par_core::ShardLabels,
    scratch: &par_core::ShardLabels,
    n: usize,
    context: &str,
) {
    assert_eq!(
        incremental.num_shards(),
        scratch.num_shards(),
        "{context}: shard count diverged"
    );
    assert_eq!(
        incremental.singleton_pool(),
        scratch.singleton_pool(),
        "{context}: singleton pool diverged"
    );
    for p in 0..n as u32 {
        assert_eq!(
            incremental.shard_of(PhotoId(p)),
            scratch.shard_of(PhotoId(p)),
            "{context}: photo {p} labeled differently"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incremental label maintenance is indistinguishable from re-running
    /// the from-scratch decomposition on the post-delta instance — for
    /// every epoch of a generated churn trace, chained.
    #[test]
    fn incremental_labels_equal_from_scratch_labels((base, seed) in instance_strategy()) {
        let trace = generate_churn(&base, &churn_config(3, seed)).unwrap();
        let mut inst = base;
        let mut labels = shard_labels(&inst);
        for (e, ops) in trace.epochs.iter().enumerate() {
            let delta = resolve_epoch(ops, &inst).unwrap();
            let applied = delta.apply(&inst, &labels).unwrap();
            let scratch = shard_labels(&applied.instance);
            assert_labels_equal(
                &applied.labels,
                &scratch,
                applied.instance.num_photos(),
                &format!("epoch {e}"),
            );
            inst = applied.instance;
            labels = applied.labels;
        }
    }

    /// The warm solver's replayed epoch solves are byte-equal to fresh
    /// sharded solves of every post-delta instance, and stay byte-equal
    /// under worker pools of 2 and 8 threads (the pool must be invisible
    /// in results, clean-shard replay included).
    #[test]
    fn replayed_streams_match_fresh_solves_at_all_thread_counts(
        (base, seed) in instance_strategy()
    ) {
        let trace = generate_churn(&base, &churn_config(2, seed)).unwrap();
        let mut transcripts: Vec<Vec<(Vec<PhotoId>, u64, bool)>> = Vec::new();
        for threads in [0usize, 2, 8] {
            let prev = match threads {
                0 => Parallelism::serial().install_global(),
                t => Parallelism::with_threads(t).install_global(),
            };
            let mut solver = IncrementalSolver::new(base.clone());
            solver.resolve();
            let mut transcript = Vec::new();
            for ops in &trace.epochs {
                let delta = resolve_epoch(ops, solver.instance()).unwrap();
                solver.apply_delta(&delta).unwrap();
                let inc = solver.resolve();
                let fresh = main_algorithm_sharded(solver.instance());
                prop_assert_eq!(&inc.best.selected, &fresh.best.selected);
                prop_assert_eq!(inc.best.score.to_bits(), fresh.best.score.to_bits());
                prop_assert_eq!(inc.winner, fresh.winner);
                transcript.push((
                    inc.best.selected.clone(),
                    inc.best.score.to_bits(),
                    inc.winner == GreedyRule::UnitCost,
                ));
            }
            transcripts.push(transcript);
            prev.install_global();
        }
        prop_assert_eq!(&transcripts[0], &transcripts[1], "2-thread pool changed epoch bytes");
        prop_assert_eq!(&transcripts[0], &transcripts[2], "8-thread pool changed epoch bytes");
    }
}

/// Fixed fixtures for the pinned epoch goldens: shapes chosen so the chains
/// exercise replay-heavy epochs (few dirty shards), go-live rebuilds, and
/// budget wobble.
fn golden_fixtures() -> [(u64, usize, usize, u64); 3] {
    // (seed, photos, subsets, budget_pct)
    [
        (0xE90C_0001, 60, 18, 50),
        (0xE90C_0002, 110, 30, 25),
        (0xE90C_0003, 80, 14, 65),
    ]
}

/// Carries a warm solver through a 5-epoch churn trace, folding every
/// epoch's outcome — selections, score/cost bits, winner, replay/live
/// stream split — into one hash. The replay instrumentation is part of the
/// transcript on purpose: a regression that silently demotes replayed
/// shards to live solves changes the hash even though outcomes agree.
fn epoch_transcript_hash(seed: u64, photos: usize, subsets: usize, budget_pct: u64) -> u64 {
    let mut h = Fnv::new();
    let base = base_instance(seed, photos, subsets, budget_pct);
    let trace = generate_churn(&base, &churn_config(5, seed ^ 0x00D5)).unwrap();
    let mut solver = IncrementalSolver::new(base);
    let first = solver.resolve();
    for &p in &first.best.selected {
        h.u32(p.0);
    }
    h.f64(first.best.score);
    for ops in &trace.epochs {
        let delta = resolve_epoch(ops, solver.instance()).unwrap();
        solver.apply_delta(&delta).unwrap();
        let outcome = solver.resolve();
        let report = *solver.last_report();
        for &p in &outcome.best.selected {
            h.u32(p.0);
        }
        h.f64(outcome.best.score);
        h.u64(outcome.best.cost);
        h.u32(matches!(outcome.winner, GreedyRule::UnitCost) as u32);
        h.u64(report.replayed_streams as u64);
        h.u64(report.live_streams as u64);
    }
    h.0
}

/// The pinned epoch-chain transcript hashes. Regenerate by running this
/// test with `PRINT_TRANSCRIPTS=1 cargo test -p integration-tests epochs
/// -- --nocapture`.
const EPOCH_GOLDEN: [u64; 3] = [
    0x545e2ba7fb12892e,
    0xc45f23600663a21b,
    0x9a72a763907e9e0f,
];

/// The epoch chains must produce the same bytes at every pool size, and
/// those bytes are pinned: running the suite with `--features parallel`
/// and with `--no-default-features` checks both builds against the same
/// constants.
#[test]
fn epoch_chains_share_pinned_goldens_at_all_thread_counts() {
    for threads in [1usize, 2, 8] {
        let prev = Parallelism::with_threads(threads).install_global();
        for (k, (seed, photos, subsets, budget_pct)) in golden_fixtures().iter().enumerate() {
            let hash = epoch_transcript_hash(*seed, *photos, *subsets, *budget_pct);
            if std::env::var("PRINT_TRANSCRIPTS").is_ok() {
                if threads == 1 {
                    println!("epoch fixture {k}: 0x{hash:016x}");
                }
                continue;
            }
            assert_eq!(
                hash, EPOCH_GOLDEN[k],
                "fixture {k}: epoch transcript drifted under pool threads={threads} \
                 (build features: parallel={})",
                par_exec::parallel_enabled()
            );
        }
        prev.install_global();
    }
}
