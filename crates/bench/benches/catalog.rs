//! Catalog cold-start benchmarks: the numbers behind `BENCH_catalog.json`.
//!
//! A multi-tenant deployment pays its cold start over and over: every
//! restart, every tenant migration, every scale-out re-parses tenant
//! universes from text, re-runs the representation pipeline (relevance
//! normalization, contextual similarity, LSH sparsification), and re-derives
//! solver structure (component labels, fused evaluator weights). The
//! `phocus-pack` format persists exactly those hot structures — validated
//! once at write time, loaded by length-checked bulk copies — so a catalog
//! restart costs file reads plus checksums instead of the whole pipeline.
//!
//! Groups:
//!
//! * `catalog_cold_start` — bringing the 96-tenant fleet corpus to
//!   ready-to-solve state: text parse + representation per tenant vs
//!   `unpack_instance` per tenant, both from memory-resident buffers (no
//!   disk, so the pair isolates compute). The headline `bench_guard` floor
//!   row comes from this pair.
//! * `catalog_serve_batch` — the end-to-end fleet serve: load every tenant
//!   and solve it, universe path (`FleetEngine::run`, which represents) vs
//!   catalog path (`FleetEngine::run_packed` over loaded packs).
//!
//! Both pairs assert bit-identical solver outcomes between the paths before
//! timing — the pack load must be a *free* cold start, not a different one.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use par_core::{pack_instance, unpack_instance, Instance};
use par_datasets::{from_text, generate_fleet, to_text, FleetConfig, Universe};
use par_exec::Parallelism;
use phocus::{
    budget_by_fraction, represent, FleetEngine, FleetEngineConfig, FleetTenant, PackedTenant,
    RepresentationConfig, Sparsification,
};

/// The 96-tenant fleet corpus (12–240 photos per tenant, shared label
/// vocabulary) — the same population the fleet and incremental benches use.
fn fleet_universes() -> Vec<Universe> {
    generate_fleet(&FleetConfig {
        tenants: 96,
        min_photos: 12,
        max_photos: 240,
        seed: 42,
        ..Default::default()
    })
}

fn representation() -> RepresentationConfig {
    RepresentationConfig {
        sparsification: Sparsification::Lsh {
            tau: 0.6,
            target_recall: 0.95,
            seed: 42,
        },
        ..Default::default()
    }
}

/// One tenant's cold-start inputs, memory-resident: the text image the
/// universe path parses and the pack image the catalog path loads, plus the
/// tenant's budget (25% of its own archive, the serve-batch default).
struct TenantImages {
    text: String,
    pack: Vec<u8>,
    budget: u64,
}

fn tenant_images() -> Vec<TenantImages> {
    let representation = representation();
    budget_by_fraction(fleet_universes(), 0.25)
        .into_iter()
        .map(|t| {
            let inst = represent(&t.universe, t.budget, &representation)
                .expect("bench corpus represents");
            TenantImages {
                text: to_text(&t.universe),
                pack: pack_instance(&inst).expect("bench corpus packs"),
                budget: t.budget,
            }
        })
        .collect()
}

/// The text path's cold start for one tenant: parse, then the full
/// representation pipeline.
fn cold_start_text(images: &TenantImages, representation: &RepresentationConfig) -> Instance {
    let universe = from_text(&images.text).expect("bench tenant parses");
    represent(&universe, images.budget, representation).expect("bench tenant represents")
}

fn bench_cold_start(c: &mut Criterion) {
    let prev = Parallelism::serial().install_global();
    let images = tenant_images();
    let representation = representation();
    let total_pack: usize = images.iter().map(|i| i.pack.len()).sum();
    let total_text: usize = images.iter().map(|i| i.text.len()).sum();
    eprintln!(
        "catalog_cold_start: {} tenants, text={total_text}B, pack={total_pack}B",
        images.len()
    );

    // The pair is only honest if both paths reach the same state: every
    // tenant's loaded pack must solve bit-identically to its freshly
    // represented instance.
    for images in &images {
        let fresh = cold_start_text(images, &representation);
        let loaded = unpack_instance(&images.pack).expect("bench pack loads");
        let a = par_algo::main_algorithm_sharded(&fresh);
        let mut scratch = par_algo::SolveScratch::default();
        let b = par_algo::main_algorithm_packed(
            &loaded.instance,
            loaded.labels.clone(),
            &mut scratch,
        );
        assert_eq!(a.best.selected, b.best.selected);
        assert_eq!(a.best.score.to_bits(), b.best.score.to_bits());
        assert_eq!(a.winner, b.winner);
    }

    let mut group = c.benchmark_group("catalog_cold_start");
    group.sample_size(10);
    group.bench_function("text_represent", |b| {
        b.iter(|| {
            let mut photos = 0usize;
            for images in &images {
                photos += cold_start_text(images, &representation).num_photos();
            }
            black_box(photos)
        })
    });
    group.bench_function("pack_load", |b| {
        b.iter(|| {
            let mut photos = 0usize;
            for images in &images {
                let loaded = unpack_instance(&images.pack).expect("bench pack loads");
                photos += loaded.instance.num_photos();
            }
            black_box(photos)
        })
    });
    group.finish();
    prev.install_global();
}

fn bench_serve_batch(c: &mut Criterion) {
    let prev = Parallelism::serial().install_global();
    let images = tenant_images();
    let representation = representation();
    let engine = FleetEngine::new(FleetEngineConfig {
        representation: representation.clone(),
        parallelism: Parallelism::serial(),
        reuse_arenas: true,
    });

    // Pre-parse the universe tenants once (the serve side re-represents per
    // iteration; the parse itself is timed by the cold-start group).
    let tenants: Vec<FleetTenant> = images
        .iter()
        .map(|i| {
            let universe = from_text(&i.text).expect("bench tenant parses");
            FleetTenant {
                universe,
                budget: i.budget,
            }
        })
        .collect();

    // Equivalence before timing: the catalog serve must report the same
    // per-tenant solutions as the universe serve.
    let from_universe = engine.run(&tenants);
    let packed: Vec<PackedTenant> = images
        .iter()
        .zip(&tenants)
        .map(|(i, t)| PackedTenant {
            name: t.universe.name.clone(),
            packed: unpack_instance(&i.pack).expect("bench pack loads"),
        })
        .collect();
    let from_catalog = engine.run_packed(&packed);
    for (a, b) in from_universe.iter().zip(&from_catalog) {
        let (ra, rb) = (
            a.result.as_ref().expect("universe tenant solves"),
            b.result.as_ref().expect("catalog tenant solves"),
        );
        assert_eq!(ra.selected, rb.selected);
        assert_eq!(ra.score.to_bits(), rb.score.to_bits());
    }

    let mut group = c.benchmark_group("catalog_serve_batch");
    group.sample_size(10);
    group.bench_function("universe_serve", |b| {
        b.iter(|| black_box(engine.run(&tenants).len()))
    });
    group.bench_function("catalog_serve", |b| {
        b.iter(|| {
            let packed: Vec<PackedTenant> = images
                .iter()
                .zip(&tenants)
                .map(|(i, t)| PackedTenant {
                    name: t.universe.name.clone(),
                    packed: unpack_instance(&i.pack).expect("bench pack loads"),
                })
                .collect();
            black_box(engine.run_packed(&packed).len())
        })
    });
    group.finish();
    prev.install_global();
}

criterion_group!(catalog_benches, bench_cold_start, bench_serve_batch);
criterion_main!(catalog_benches);
