//! The simulated business analyst: manual landing-page curation with an
//! inspection-cost time model.

use par_core::{Instance, PhotoId};
use std::time::Duration;

/// The manual-selection workflow and its effort model.
///
/// Defaults are calibrated so that a paper-scale domain (250 pages, ~20K
/// photos, ~100 candidates per page) lands in the paper's reported 6–14 hour
/// range: the analyst browses each candidate once (≈2 s each, faster when
/// fatigued) plus page-switch overhead.
#[derive(Debug, Clone)]
pub struct ManualAnalyst {
    /// Seconds spent inspecting one candidate photo.
    pub inspect_secs: f64,
    /// Seconds of overhead per landing page visit (loading, context switch).
    pub page_overhead_secs: f64,
    /// Photos retained per page in the first (full-scan) pass.
    pub picks_per_page: usize,
    /// Maximum refinement passes after the first (each adds at most one more
    /// photo per page, most important pages first).
    pub max_passes: usize,
}

impl Default for ManualAnalyst {
    fn default() -> Self {
        ManualAnalyst {
            inspect_secs: 0.5,
            page_overhead_secs: 20.0,
            picks_per_page: 2,
            max_passes: 6,
        }
    }
}

/// The outcome of a manual curation session.
#[derive(Debug, Clone)]
pub struct ManualOutcome {
    /// Photos the analyst retained (including `S₀`).
    pub selected: Vec<PhotoId>,
    /// Total photos browsed (drives the time model).
    pub browsed: u64,
    /// Pages visited.
    pub pages_visited: u64,
    /// Simulated wall-clock effort.
    pub time: Duration,
}

impl ManualAnalyst {
    /// Runs the manual workflow on an instance.
    ///
    /// Pass 1: the analyst visits pages in descending importance, scans
    /// every candidate on the page (this is where the hours go), and keeps
    /// the `picks_per_page` most relevant photos that fit the budget.
    /// Refinement passes: while budget remains (and at most `max_passes`
    /// times), they revisit the pages and add one more photo each — a
    /// reasonable-but-myopic strategy: unlike the solver, the analyst never
    /// weighs a photo's value *across* pages or its byte cost.
    pub fn select(&self, inst: &Instance) -> ManualOutcome {
        let budget = inst.budget();
        let mut selected = vec![false; inst.num_photos()];
        let mut order: Vec<usize> = (0..inst.num_subsets()).collect();
        order.sort_by(|&a, &b| inst.subsets()[b].weight.total_cmp(&inst.subsets()[a].weight));

        let mut cost = 0u64;
        let mut picked = Vec::new();
        for &r in inst.required() {
            if !selected[r.index()] {
                selected[r.index()] = true;
                cost += inst.cost(r);
                picked.push(r);
            }
        }

        let mut browsed = 0u64;
        let mut pages_visited = 0u64;
        // Per-page relevance-sorted candidate order (the page layout the
        // analyst scrolls through).
        let page_order: Vec<Vec<PhotoId>> = inst
            .subsets()
            .iter()
            .map(|q| {
                let mut members: Vec<(PhotoId, f64)> = q
                    .members
                    .iter()
                    .copied()
                    .zip(q.relevance.iter().copied())
                    .collect();
                members.sort_by(|a, b| b.1.total_cmp(&a.1));
                members.into_iter().map(|(p, _)| p).collect()
            })
            .collect();

        let mut overhead_secs = 0.0f64;
        for pass in 0..=self.max_passes {
            let mut progress = false;
            let quota = if pass == 0 { self.picks_per_page } else { 1 };
            for &qi in &order {
                pages_visited += 1;
                // Revisits are quick — the analyst knows the page already.
                overhead_secs += if pass == 0 {
                    self.page_overhead_secs
                } else {
                    self.page_overhead_secs / 4.0
                };
                let members = &page_order[qi];
                if pass == 0 {
                    // First visit: the analyst scans the whole page to form
                    // an opinion — this is where the manual hours go.
                    browsed += members.len() as u64;
                } else {
                    // Revisits only skim the top of the page: the analyst
                    // remembers the layout and re-examines a handful of the
                    // best not-yet-kept candidates.
                    let remaining = members.iter().filter(|m| !selected[m.index()]).count() as u64;
                    browsed += remaining.min(12);
                }
                let mut picks_here = 0;
                for &p in members {
                    if picks_here >= quota {
                        break;
                    }
                    if selected[p.index()] {
                        continue;
                    }
                    if cost + inst.cost(p) <= budget {
                        selected[p.index()] = true;
                        cost += inst.cost(p);
                        picked.push(p);
                        picks_here += 1;
                        progress = true;
                    }
                }
            }
            if !progress {
                break;
            }
        }

        let secs = browsed as f64 * self.inspect_secs + overhead_secs;
        ManualOutcome {
            selected: picked,
            browsed,
            pages_visited,
            time: Duration::from_secs_f64(secs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use par_core::Solution;
    use par_datasets::{generate_ecommerce, EcConfig, EcDomain};
    use phocus::{represent, RepresentationConfig};

    fn instance() -> (par_datasets::Universe, Instance) {
        let u = generate_ecommerce(&EcConfig::small(EcDomain::Fashion, 77));
        let budget = u.total_cost() / 10;
        let inst = represent(&u, budget, &RepresentationConfig::default()).unwrap();
        (u, inst)
    }

    #[test]
    fn manual_selection_is_feasible() {
        let (_, inst) = instance();
        let out = ManualAnalyst::default().select(&inst);
        let sol = Solution::new(&inst, out.selected.clone()).unwrap();
        assert!(sol.cost() <= inst.budget());
        assert!(!out.selected.is_empty());
    }

    #[test]
    fn analyst_covers_important_pages_first() {
        let (_, inst) = instance();
        let out = ManualAnalyst::default().select(&inst);
        let sol = Solution::new(&inst, out.selected).unwrap();
        // The heaviest page must have a retained member.
        let heaviest = inst
            .subsets()
            .iter()
            .max_by(|a, b| a.weight.total_cmp(&b.weight))
            .unwrap();
        assert!(heaviest.members.iter().any(|&m| sol.contains(m)));
    }

    #[test]
    fn phocus_beats_manual_quality() {
        let (_, inst) = instance();
        let manual = ManualAnalyst::default().select(&inst);
        let manual_sol = Solution::new(&inst, manual.selected).unwrap();
        let phocus_out = par_algo::main_algorithm(&inst);
        let phocus_sol = Solution::new(&inst, phocus_out.best.selected).unwrap();
        assert!(
            phocus_sol.score() > manual_sol.score(),
            "PHOcus {} vs manual {}",
            phocus_sol.score(),
            manual_sol.score()
        );
    }

    #[test]
    fn time_model_scales_with_browsing() {
        let (_, inst) = instance();
        let fast = ManualAnalyst {
            inspect_secs: 1.0,
            page_overhead_secs: 10.0,
            picks_per_page: 2,
            max_passes: 6,
        }
        .select(&inst);
        let slow = ManualAnalyst {
            inspect_secs: 4.0,
            page_overhead_secs: 60.0,
            picks_per_page: 2,
            max_passes: 6,
        }
        .select(&inst);
        assert_eq!(fast.browsed, slow.browsed, "same workflow, same browsing");
        assert!(slow.time > fast.time);
        assert!(fast.time.as_secs() > 0);
    }
}
