//! Synthesized EXIF-like metadata.
//!
//! The Sinha-et-al. photolog distance the paper builds on combines visual
//! content with *context* attributes read from EXIF: capture time,
//! geolocation, and camera. This module synthesizes plausible metadata
//! (deterministic per seed) and provides the normalized context distance
//! used by [`crate::contextual`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// EXIF-like metadata for a synthetic photo.
#[derive(Debug, Clone, PartialEq)]
pub struct ExifData {
    /// Capture time as a Unix timestamp (seconds).
    pub timestamp: i64,
    /// Latitude in degrees.
    pub latitude: f64,
    /// Longitude in degrees.
    pub longitude: f64,
    /// Camera model identifier.
    pub camera: u16,
}

/// Time window (seconds) within which two photos count as "same event".
pub const EVENT_WINDOW_SECS: f64 = 6.0 * 3600.0;

/// Geographic radius (degrees, ~100km) for "same place".
pub const PLACE_RADIUS_DEG: f64 = 1.0;

impl ExifData {
    /// Synthesizes metadata for a photo: photos sharing an `event_seed`
    /// cluster in time and space (same shoot/trip), with per-photo jitter.
    pub fn synthesize(event_seed: u64, photo_seed: u64) -> ExifData {
        let mut event_rng = StdRng::seed_from_u64(event_seed);
        // Event anchor: some time in 2015–2023, somewhere on land-ish.
        let anchor_ts: i64 = 1_420_070_400 + event_rng.gen_range(0..252_460_800);
        let anchor_lat: f64 = event_rng.gen_range(-60.0..70.0);
        let anchor_lon: f64 = event_rng.gen_range(-180.0..180.0);
        let camera: u16 = event_rng.gen_range(0..32);

        let mut photo_rng = StdRng::seed_from_u64(photo_seed ^ event_seed.rotate_left(17));
        ExifData {
            timestamp: anchor_ts + photo_rng.gen_range(-7200..7200),
            latitude: anchor_lat + photo_rng.gen_range(-0.05..0.05),
            longitude: anchor_lon + photo_rng.gen_range(-0.05..0.05),
            camera,
        }
    }

    /// Normalized context distance in `[0, 1]`: a weighted mix of temporal
    /// distance (saturating at [`EVENT_WINDOW_SECS`]), geographic distance
    /// (saturating at [`PLACE_RADIUS_DEG`]), and camera mismatch.
    pub fn context_distance(&self, other: &ExifData) -> f64 {
        let dt = ((self.timestamp - other.timestamp).abs() as f64 / EVENT_WINDOW_SECS).min(1.0);
        let dlat = self.latitude - other.latitude;
        let dlon = self.longitude - other.longitude;
        let dgeo = ((dlat * dlat + dlon * dlon).sqrt() / PLACE_RADIUS_DEG).min(1.0);
        let dcam = if self.camera == other.camera {
            0.0
        } else {
            1.0
        };
        0.5 * dt + 0.4 * dgeo + 0.1 * dcam
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_event_photos_are_close() {
        let a = ExifData::synthesize(100, 1);
        let b = ExifData::synthesize(100, 2);
        let c = ExifData::synthesize(999, 3);
        let d_same = a.context_distance(&b);
        let d_cross = a.context_distance(&c);
        assert!(d_same < 0.5, "same-event distance {d_same}");
        assert!(d_cross > d_same, "cross {d_cross} vs same {d_same}");
    }

    #[test]
    fn distance_is_symmetric_and_bounded() {
        let a = ExifData::synthesize(5, 1);
        let b = ExifData::synthesize(7, 2);
        let d1 = a.context_distance(&b);
        let d2 = b.context_distance(&a);
        assert!((d1 - d2).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&d1));
        assert_eq!(a.context_distance(&a), 0.0);
    }

    #[test]
    fn synthesis_is_deterministic() {
        assert_eq!(ExifData::synthesize(3, 4), ExifData::synthesize(3, 4));
        assert_ne!(ExifData::synthesize(3, 4), ExifData::synthesize(3, 5));
    }
}
