#!/usr/bin/env bash
# Full local CI: build, test both feature configurations, lint.
#
#   ./ci.sh            # everything
#
# The `parallel` feature is default-on; the --no-default-features pass
# proves the serial fallback builds and produces identical results (the
# determinism suite pins golden transcript hashes shared by both builds).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (default features: parallel)"
cargo test -q

echo "==> cargo test (--no-default-features: serial fallback)"
cargo test -q --no-default-features

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo clippy --all-targets --no-default-features -- -D warnings"
cargo clippy --all-targets --no-default-features -- -D warnings

# Panic-freedom gate: library and binary code must not contain unwrap/expect/
# panic! on any path (internal invariants use assert!/unreachable! instead,
# data-dependent failures return typed errors). Tests, benches, the examples
# crate, and the vendored shims are exempt — --lib --bins skips #[cfg(test)].
PKG_FLAGS=()
for c in par-core par-datasets par-embed par-lsh par-sparse par-search \
         par-algo par-exec par-study phocus; do
  PKG_FLAGS+=(-p "$c")
done
echo "==> clippy panic-freedom gate (library + bins)"
cargo clippy "${PKG_FLAGS[@]}" --lib --bins -- \
  -D warnings -D clippy::unwrap_used -D clippy::expect_used -D clippy::panic

echo "==> no-panic fuzz gate (fixed seeds, bounded corpus)"
cargo test -q -p integration-tests --test no_panic

echo "==> gain-kernel layout bench (quick mode, smoke)"
CRITERION_QUICK=1 cargo bench -p par-bench --bench layout

echo "==> component-sharded solver bench (quick mode, smoke)"
CRITERION_QUICK=1 cargo bench -p par-bench --bench shard

echo "==> bench guard (recorded BENCH_*.json baselines)"
cargo run --release -q -p par-bench --bin bench_guard

echo "CI OK"
