//! # par-sparse — sparsification machinery (Section 4.3 of the paper)
//!
//! τ-sparsification rounds every similarity below a threshold `τ` down to 0,
//! shrinking the neighbor lists that dominate marginal-gain evaluation. The
//! price is bounded by Theorem 4.8, whose certificate this crate computes:
//!
//! 1. [`gfl`] — the Generalized Facility Location (GFL) reformulation of a
//!    PAR instance as a weighted bipartite graph (`T_L` = photos, `T_R` =
//!    (subset, member) pairs), with `F(S) ≡ G(S)`;
//! 2. [`bmc`] — the Budgeted Maximum Coverage greedy of Khuller et al., run
//!    over the τ-sparsified GFL graph to find a set `S` covering an
//!    `α`-fraction of the total right-node weight within the budget;
//! 3. [`bound`] — Theorem 4.8: `F(O_τ) ≥ OPT / (1 + 1/α)`, i.e. solving the
//!    sparsified instance forfeits at most a `1/(1+α)` fraction of the
//!    optimum.

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod bmc;
pub mod bound;
pub mod gfl;

pub use bmc::{budgeted_max_coverage, CoverageInstance, CoverageOutcome};
pub use bound::{sparsification_bound, SparsificationBound};
pub use gfl::{GflInstance, RightNode};
