//! Multi-tenant fleet generator: one photo library per user, Zipf-heavy
//! library sizes, one **shared** label vocabulary.
//!
//! Real photo platforms host one library per user, and library sizes are
//! heavy-tailed: most users keep a few dozen photos, a few keep tens of
//! thousands (the Haystack observation the ROADMAP's "million user
//! libraries" item builds on). This generator produces such a fleet for the
//! multi-tenant engine and its benches:
//!
//! * **Sizes** are Zipf: tenant sizes are `min_photos · (r + 1)` for a
//!   Zipf-drawn rank `r`, capped at `max_photos` — most tenants land at the
//!   minimum, a heavy tail approaches the cap.
//! * **Labels** come from one fleet-wide vocabulary with Zipf popularity:
//!   `label-0007` names the same concept in every library, and the
//!   [`par_embed::SpecEmbedder`] prototypes behind the embeddings are shared
//!   too, so cross-tenant photos of the same label are genuinely similar.
//! * **Determinism**: everything derives from `FleetConfig::seed`; a
//!   per-tenant RNG is split off the master seed so any tenant's library is
//!   reproducible independently of how many tenants are generated.
//!
//! Per-tenant universes are ordinary [`Universe`] values — each one round-
//! trips through [`crate::io::to_text`] for the `phocus serve-batch` CLI and
//! solves like any single-library instance.

use crate::openimages::{lognormal_cost, sample_count};
use crate::universe::{SubsetDef, Universe};
use crate::zipf::Zipf;
use par_embed::{ImageSpec, SpecEmbedder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Configuration for [`generate_fleet`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Fleet name; tenant `t` is named `{name}/t{t:05}`.
    pub name: String,
    /// Number of tenant libraries.
    pub tenants: usize,
    /// Zipf exponent of the library-size distribution.
    pub size_zipf_s: f64,
    /// Smallest library (photos).
    pub min_photos: usize,
    /// Largest library (photos); the Zipf tail is capped here.
    pub max_photos: usize,
    /// Size of the shared label vocabulary.
    pub label_vocab: usize,
    /// Zipf exponent of label popularity within the shared vocabulary.
    pub label_zipf_s: f64,
    /// Mean secondary labels per photo (primary label always present).
    pub extra_labels: f64,
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// Fraction of each tenant's photos marked policy-required (`S₀`).
    pub required_fraction: f64,
    /// Master RNG seed.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            name: "fleet".into(),
            tenants: 64,
            size_zipf_s: 1.1,
            min_photos: 24,
            max_photos: 1_500,
            label_vocab: 48,
            label_zipf_s: 1.0,
            extra_labels: 1.5,
            embed_dim: 32,
            required_fraction: 0.02,
            seed: 0,
        }
    }
}

/// Splits a per-tenant seed off the master seed (SplitMix64-style odd
/// multiplier keeps distinct tenants decorrelated).
fn tenant_seed(master: u64, t: usize) -> u64 {
    master ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Generates the tenant libraries of a fleet, in tenant order.
pub fn generate_fleet(cfg: &FleetConfig) -> Vec<Universe> {
    assert!(cfg.tenants > 0, "fleet needs at least one tenant");
    assert!(
        cfg.min_photos > 0 && cfg.max_photos >= cfg.min_photos,
        "photo range must be nonempty"
    );
    assert!(cfg.label_vocab > 0, "shared vocabulary must be nonempty");
    let size_ranks = (cfg.max_photos / cfg.min_photos).max(1);
    let size_zipf = Zipf::new(size_ranks, cfg.size_zipf_s)
        .unwrap_or_else(|e| unreachable!("ranks ≥ 1 and finite exponent: {e}"));
    let label_zipf = Zipf::new(cfg.label_vocab, cfg.label_zipf_s)
        .unwrap_or_else(|e| unreachable!("vocab ≥ 1 and finite exponent: {e}"));

    // One embedder + prototype cache for the whole fleet: a label's
    // prototype is fleet-wide, so same-label photos are similar across
    // tenants, not just within one.
    let mut embedder = SpecEmbedder::new(cfg.embed_dim, cfg.seed ^ 0xE5EED);
    embedder.attr_scale = 0.7;
    embedder.noise_scale = 0.3;
    let mut proto_cache: HashMap<u32, Vec<f32>> = HashMap::new();

    let mut size_rng = StdRng::seed_from_u64(cfg.seed ^ 0x517E_517E);
    (0..cfg.tenants)
        .map(|t| {
            let rank = size_zipf.sample(&mut size_rng);
            let photos = (cfg.min_photos * (rank + 1)).min(cfg.max_photos);
            generate_tenant(cfg, t, photos, &label_zipf, &mut embedder, &mut proto_cache)
        })
        .collect()
}

fn generate_tenant(
    cfg: &FleetConfig,
    t: usize,
    photos: usize,
    label_zipf: &Zipf,
    embedder: &mut SpecEmbedder,
    proto_cache: &mut HashMap<u32, Vec<f32>>,
) -> Universe {
    let seed = tenant_seed(cfg.seed, t);
    let mut rng = StdRng::seed_from_u64(seed);
    let tenant_name = format!("{}/t{t:05}", cfg.name);

    let mut names = Vec::with_capacity(photos);
    let mut costs = Vec::with_capacity(photos);
    let mut embeddings = Vec::with_capacity(photos);
    let mut label_members: HashMap<u32, (Vec<u32>, Vec<f64>)> = HashMap::new();
    let mut label_freq: HashMap<u32, u64> = HashMap::new();

    for i in 0..photos {
        let primary = label_zipf.sample(&mut rng) as u32;
        let attributes = [rng.gen(), rng.gen(), rng.gen(), rng.gen()];
        let spec = ImageSpec::new(primary, attributes, seed ^ (i as u64) << 1);
        names.push(format!("t{t:05}/img_{i:06}.jpg"));
        costs.push(lognormal_cost(&mut rng));
        embeddings.push(embedder.embed_cached(&spec, proto_cache));

        let conf = 0.85 + 0.15 * rng.gen::<f64>();
        let entry = label_members.entry(primary).or_default();
        entry.0.push(i as u32);
        entry.1.push(conf);
        *label_freq.entry(primary).or_insert(0) += 1;

        let extra = sample_count(&mut rng, cfg.extra_labels);
        let mut seen = vec![primary];
        for _ in 0..extra {
            let l = label_zipf.sample(&mut rng) as u32;
            if seen.contains(&l) {
                continue;
            }
            seen.push(l);
            let conf = 0.5 + 0.35 * rng.gen::<f64>();
            let entry = label_members.entry(l).or_default();
            entry.0.push(i as u32);
            entry.1.push(conf);
            *label_freq.entry(l).or_insert(0) += 1;
        }
    }

    // One subset per observed label, weighted by in-library frequency;
    // label ids name the shared vocabulary, so `label-0007` is the same
    // concept in every tenant.
    let mut labels: Vec<u32> = label_members.keys().copied().collect();
    labels.sort_unstable();
    let mut subsets = Vec::with_capacity(labels.len());
    for l in labels {
        let Some((members, relevance)) = label_members.remove(&l) else {
            unreachable!("label {l} came from label_members' own key set");
        };
        subsets.push(SubsetDef {
            label: format!("label-{l:04}"),
            weight: label_freq[&l] as f64,
            members,
            relevance,
        });
    }

    let mut required = Vec::new();
    if cfg.required_fraction > 0.0 {
        for i in 0..photos as u32 {
            if rng.gen::<f64>() < cfg.required_fraction {
                required.push(i);
            }
        }
    }

    let universe = Universe {
        name: tenant_name,
        names,
        costs,
        embeddings,
        exif: None,
        subsets,
        required,
    };
    debug_assert!(
        universe.validate().is_ok(),
        "generated tenant is valid by construction"
    );
    universe
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fleet() -> FleetConfig {
        FleetConfig {
            tenants: 24,
            min_photos: 10,
            max_photos: 300,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_fleet(&small_fleet());
        let b = generate_fleet(&small_fleet());
        assert_eq!(a.len(), b.len());
        for (ua, ub) in a.iter().zip(&b) {
            assert_eq!(ua.name, ub.name);
            assert_eq!(ua.costs, ub.costs);
            assert_eq!(ua.required, ub.required);
            assert_eq!(ua.subsets.len(), ub.subsets.len());
        }
    }

    #[test]
    fn sizes_are_heavy_tailed_and_bounded() {
        let cfg = FleetConfig {
            tenants: 200,
            ..small_fleet()
        };
        let fleet = generate_fleet(&cfg);
        let mut sizes: Vec<usize> = fleet.iter().map(|u| u.num_photos()).collect();
        assert!(sizes
            .iter()
            .all(|&n| (cfg.min_photos..=cfg.max_photos).contains(&n)));
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2];
        let max = sizes[sizes.len() - 1];
        assert!(
            max >= 4 * median,
            "expected a heavy tail: median {median}, max {max}"
        );
        // The minimum size is the mode (Zipf rank 0 dominates): no other
        // single size bucket is more populated, and it holds a clear
        // plurality of tenants.
        let at_min = sizes.iter().filter(|&&n| n == cfg.min_photos).count();
        assert!(at_min * 5 >= cfg.tenants, "{at_min}/{} at min", cfg.tenants);
        let mut bucket_counts: HashMap<usize, usize> = HashMap::new();
        for &n in &sizes {
            *bucket_counts.entry(n).or_insert(0) += 1;
        }
        assert!(bucket_counts.values().all(|&c| c <= at_min));
    }

    #[test]
    fn tenants_share_the_label_vocabulary() {
        let fleet = generate_fleet(&small_fleet());
        // Every subset label names a vocabulary entry.
        let vocab = small_fleet().label_vocab;
        let mut seen_in: HashMap<String, usize> = HashMap::new();
        for u in &fleet {
            for s in &u.subsets {
                let id: usize = s.label.trim_start_matches("label-").parse().unwrap();
                assert!(id < vocab, "label {id} outside the shared vocabulary");
                *seen_in.entry(s.label.clone()).or_insert(0) += 1;
            }
        }
        // The popular labels appear in (nearly) every tenant.
        let max_seen = seen_in.values().copied().max().unwrap();
        assert!(
            max_seen >= fleet.len() - 2,
            "top label in {max_seen}/{} tenants",
            fleet.len()
        );
    }

    #[test]
    fn tenants_are_valid_and_round_trip_io() {
        let fleet = generate_fleet(&FleetConfig {
            tenants: 6,
            ..small_fleet()
        });
        for u in &fleet {
            u.validate().expect("valid universe");
            let text = crate::io::to_text(u);
            let back = crate::io::from_text(&text).expect("round trip");
            assert_eq!(back.name, u.name);
            assert_eq!(back.costs, u.costs);
            assert_eq!(back.subsets.len(), u.subsets.len());
        }
    }

    #[test]
    fn tenant_libraries_are_independent_of_fleet_size() {
        // Tenant t's library depends only on (seed, t) and the shared
        // vocabulary — not on how many tenants were generated after it.
        let small = generate_fleet(&FleetConfig {
            tenants: 3,
            ..small_fleet()
        });
        let large = generate_fleet(&FleetConfig {
            tenants: 10,
            ..small_fleet()
        });
        for (a, b) in small.iter().zip(&large) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.costs, b.costs);
        }
    }
}
