//! The tenant catalog: a directory of `phocus-pack` files plus one
//! memory-resident index.
//!
//! Haystack's core lesson is that *metadata lookups*, not data reads, kill
//! photo-store throughput — so the catalog keeps its entire index (tenant
//! name → pack path, content checksum, artifact paths) resident in memory
//! after one read of `catalog.idx`. Serving a tenant then costs exactly one
//! file read plus a checksummed [`par_core::unpack_instance`] bulk load; no
//! directory walks, no text parsing, no representation pipeline.
//!
//! # Directory layout
//!
//! ```text
//! <root>/catalog.idx      the index (format below)
//! <root>/pk00000.pack     one phocus-pack per tenant, named by entry index
//! <root>/pk00000.sol      optional solve artifact for that tenant
//! ```
//!
//! Pack files are named by entry index, not tenant name, so arbitrary
//! tenant names (slashes, unicode) never touch the filesystem namespace;
//! the name → file mapping lives only in the index.
//!
//! # Index format (`catalog.idx`)
//!
//! ```text
//! # phocus-catalog v1
//! tenant\t<name>\t<pack file>\t<fnv1a64 hex>\t<photos>\t<budget>\t<artifact file|->\t<artifact fnv1a64 hex|->
//! ```
//!
//! One line per tenant, sorted by tenant name (strictly ascending — the
//! builder rejects duplicates), so lookups are a binary search over the
//! resident entries and the index bytes are a deterministic function of its
//! contents. Checksums are [`par_core::fnv1a64`] over the whole referenced
//! file; [`Catalog::load`] re-hashes the pack bytes before handing them to
//! the pack reader, so a stale or corrupted pack is a typed
//! [`PhocusError::Catalog`] / [`PhocusError::Pack`](crate::PhocusError),
//! never a wrong answer.

use crate::error::{PhocusError, Result};
use par_core::{fnv1a64, unpack_instance, PackedInstance};
use std::path::{Path, PathBuf};

/// File name of the catalog index inside the catalog directory.
pub const INDEX_FILE: &str = "catalog.idx";
/// First line of a v1 index.
const HEADER: &str = "# phocus-catalog v1";

/// One tenant's resident metadata: where its pack (and optional solve
/// artifact) live and what bytes they must hash to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Tenant name (the universe name at build time).
    pub name: String,
    /// Pack file name, relative to the catalog root.
    pub pack: String,
    /// [`fnv1a64`] of the pack file's bytes.
    pub checksum: u64,
    /// Photo count, resident so schedulers (LPT) never open the pack.
    pub photos: u64,
    /// The budget the pack was represented under (bytes).
    pub budget: u64,
    /// Solve-artifact file name relative to the root, with its checksum,
    /// if one was recorded.
    pub artifact: Option<(String, u64)>,
}

/// A memory-resident catalog over a directory of `phocus-pack` files.
#[derive(Debug, Clone)]
pub struct Catalog {
    root: PathBuf,
    /// Sorted by `name`, strictly ascending.
    entries: Vec<CatalogEntry>,
}

fn io_err(path: &Path, e: &std::io::Error) -> PhocusError {
    PhocusError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

fn index_err(path: &Path, line: usize, message: impl Into<String>) -> PhocusError {
    PhocusError::Catalog {
        entry: format!("{}:{line}", path.display()),
        message: message.into(),
    }
}

fn parse_hex64(s: &str) -> Option<u64> {
    u64::from_str_radix(s, 16).ok()
}

impl Catalog {
    /// Opens a catalog directory: reads and parses `catalog.idx` once; every
    /// later lookup and load uses the resident entries only.
    pub fn open(root: impl Into<PathBuf>) -> Result<Catalog> {
        let root = root.into();
        let index = root.join(INDEX_FILE);
        let text = std::fs::read_to_string(&index).map_err(|e| io_err(&index, &e))?;
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, first)) if first.trim_end() == HEADER => {}
            _ => {
                return Err(index_err(&index, 1, format!("missing header `{HEADER}`")));
            }
        }
        let mut entries: Vec<CatalogEntry> = Vec::new();
        for (i, line) in lines {
            let lineno = i + 1;
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut f = line.split('\t');
            if f.next() != Some("tenant") {
                return Err(index_err(&index, lineno, "expected a `tenant` record"));
            }
            let mut field = |what: &'static str| {
                f.next()
                    .ok_or_else(|| index_err(&index, lineno, format!("missing field: {what}")))
            };
            let name = field("name")?.to_string();
            let pack = field("pack file")?.to_string();
            let checksum = parse_hex64(field("pack checksum")?)
                .ok_or_else(|| index_err(&index, lineno, "bad pack checksum"))?;
            let photos = field("photos")?
                .parse::<u64>()
                .map_err(|_| index_err(&index, lineno, "bad photo count"))?;
            let budget = field("budget")?
                .parse::<u64>()
                .map_err(|_| index_err(&index, lineno, "bad budget"))?;
            let artifact = match (field("artifact file")?, field("artifact checksum")?) {
                ("-", "-") => None,
                ("-", _) | (_, "-") => {
                    return Err(index_err(&index, lineno, "half-present artifact record"));
                }
                (file, sum) => Some((
                    file.to_string(),
                    parse_hex64(sum)
                        .ok_or_else(|| index_err(&index, lineno, "bad artifact checksum"))?,
                )),
            };
            if let Some(prev) = entries.last() {
                if prev.name.as_str() >= name.as_str() {
                    return Err(index_err(
                        &index,
                        lineno,
                        "tenant names out of order (index must be sorted, unique)",
                    ));
                }
            }
            entries.push(CatalogEntry {
                name,
                pack,
                checksum,
                photos,
                budget,
                artifact,
            });
        }
        Ok(Catalog { root, entries })
    }

    /// The catalog directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// All entries, sorted by tenant name.
    pub fn entries(&self) -> &[CatalogEntry] {
        &self.entries
    }

    /// Looks up a tenant by name (binary search over the resident index).
    pub fn get(&self, name: &str) -> Option<&CatalogEntry> {
        self.entries
            .binary_search_by(|e| e.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Loads one tenant's instance from its pack: one file read, one
    /// whole-file checksum, one section-table bulk load. Returns the
    /// reconstructed instance with its persisted evaluator layout and shard
    /// labels.
    pub fn load(&self, entry: &CatalogEntry) -> Result<PackedInstance> {
        let path = self.root.join(&entry.pack);
        let bytes = std::fs::read(&path).map_err(|e| io_err(&path, &e))?;
        if fnv1a64(&bytes) != entry.checksum {
            return Err(PhocusError::Catalog {
                entry: entry.name.clone(),
                message: format!("pack {} does not match its indexed checksum", entry.pack),
            });
        }
        Ok(unpack_instance(&bytes)?)
    }

    /// [`load`](Self::load) by tenant name.
    pub fn load_by_name(&self, name: &str) -> Result<PackedInstance> {
        let entry = self.get(name).ok_or_else(|| PhocusError::Catalog {
            entry: name.to_string(),
            message: "no such tenant in the catalog".into(),
        })?;
        self.load(entry)
    }
}

/// Builds a catalog directory: add packs (and optional solve artifacts)
/// tenant by tenant, then [`finish`](CatalogBuilder::finish) writes the
/// sorted index.
#[derive(Debug)]
pub struct CatalogBuilder {
    root: PathBuf,
    entries: Vec<CatalogEntry>,
}

impl CatalogBuilder {
    /// Creates (or reuses) the catalog directory.
    pub fn create(root: impl Into<PathBuf>) -> Result<CatalogBuilder> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| io_err(&root, &e))?;
        Ok(CatalogBuilder {
            root,
            entries: Vec::new(),
        })
    }

    /// Writes `bytes` (a `phocus-pack` image from
    /// [`par_core::pack_instance`]) as the next pack file and records its
    /// entry. `photos` and `budget` become resident metadata.
    pub fn add_pack(&mut self, name: &str, bytes: &[u8], photos: u64, budget: u64) -> Result<()> {
        let file = format!("pk{:05}.pack", self.entries.len());
        let path = self.root.join(&file);
        std::fs::write(&path, bytes).map_err(|e| io_err(&path, &e))?;
        self.entries.push(CatalogEntry {
            name: name.to_string(),
            pack: file,
            checksum: fnv1a64(bytes),
            photos,
            budget,
            artifact: None,
        });
        Ok(())
    }

    /// Attaches a solve artifact (arbitrary text, e.g. the selected photo
    /// list) to the most recently added pack.
    pub fn add_artifact(&mut self, text: &str) -> Result<()> {
        let i = self.entries.len().checked_sub(1).ok_or_else(|| PhocusError::Catalog {
            entry: self.root.display().to_string(),
            message: "add_artifact called before any add_pack".into(),
        })?;
        let file = format!("pk{i:05}.sol");
        let path = self.root.join(&file);
        std::fs::write(&path, text).map_err(|e| io_err(&path, &e))?;
        self.entries[i].artifact = Some((file, fnv1a64(text.as_bytes())));
        Ok(())
    }

    /// Sorts the entries by tenant name, rejects duplicates, writes
    /// `catalog.idx`, and returns the resident catalog.
    pub fn finish(mut self) -> Result<Catalog> {
        self.entries.sort_by(|a, b| a.name.cmp(&b.name));
        for w in self.entries.windows(2) {
            if w[0].name == w[1].name {
                return Err(PhocusError::Catalog {
                    entry: w[0].name.clone(),
                    message: "duplicate tenant name".into(),
                });
            }
        }
        let mut text = String::from(HEADER);
        text.push('\n');
        for e in &self.entries {
            let (afile, asum) = match &e.artifact {
                Some((f, s)) => (f.as_str(), format!("{s:016x}")),
                None => ("-", "-".to_string()),
            };
            text.push_str(&format!(
                "tenant\t{}\t{}\t{:016x}\t{}\t{}\t{}\t{}\n",
                e.name, e.pack, e.checksum, e.photos, e.budget, afile, asum
            ));
        }
        let index = self.root.join(INDEX_FILE);
        std::fs::write(&index, text).map_err(|e| io_err(&index, &e))?;
        Ok(Catalog {
            root: self.root,
            entries: self.entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use par_core::fixtures::{figure1_instance, MB};
    use par_core::pack_instance;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("phocus-catalog-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn build_open_load_round_trip() {
        let dir = tmpdir("roundtrip");
        let inst = figure1_instance(4 * MB);
        let bytes = pack_instance(&inst).expect("packable");
        let mut b = CatalogBuilder::create(&dir).unwrap();
        b.add_pack("zeta", &bytes, inst.num_photos() as u64, inst.budget()).unwrap();
        b.add_artifact("selected\t3\n").unwrap();
        b.add_pack("alpha", &bytes, inst.num_photos() as u64, inst.budget()).unwrap();
        let built = b.finish().unwrap();
        assert_eq!(built.entries().len(), 2);
        // Sorted by name regardless of add order.
        assert_eq!(built.entries()[0].name, "alpha");

        let opened = Catalog::open(&dir).unwrap();
        assert_eq!(opened.entries(), built.entries());
        let entry = opened.get("zeta").unwrap();
        assert!(entry.artifact.is_some());
        let loaded = opened.load(entry).unwrap();
        assert_eq!(loaded.instance.num_photos(), inst.num_photos());
        assert_eq!(loaded.instance.budget(), inst.budget());
        assert!(opened.get("nope").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_pack_fails_checksum() {
        let dir = tmpdir("stale");
        let inst = figure1_instance(4 * MB);
        let mut b = CatalogBuilder::create(&dir).unwrap();
        b.add_pack("t", &pack_instance(&inst).expect("packable"), 6, inst.budget()).unwrap();
        let cat = b.finish().unwrap();
        // Overwrite the pack behind the index's back.
        std::fs::write(dir.join(&cat.entries()[0].pack), b"garbage").unwrap();
        let err = cat.load_by_name("t").unwrap_err();
        assert!(matches!(err, PhocusError::Catalog { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_tenants_rejected() {
        let dir = tmpdir("dup");
        let inst = figure1_instance(4 * MB);
        let bytes = pack_instance(&inst).expect("packable");
        let mut b = CatalogBuilder::create(&dir).unwrap();
        b.add_pack("same", &bytes, 6, 1).unwrap();
        b.add_pack("same", &bytes, 6, 1).unwrap();
        assert!(b.finish().is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_index_is_typed() {
        let dir = tmpdir("malformed");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(INDEX_FILE), "# wrong header\n").unwrap();
        assert!(matches!(
            Catalog::open(&dir).unwrap_err(),
            PhocusError::Catalog { .. }
        ));
        std::fs::write(
            dir.join(INDEX_FILE),
            "# phocus-catalog v1\ntenant\tx\tp.pack\tzz\t1\t1\t-\t-\n",
        )
        .unwrap();
        assert!(matches!(
            Catalog::open(&dir).unwrap_err(),
            PhocusError::Catalog { .. }
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
