//! A seeded Zipf sampler over `{0, …, n−1}`.
//!
//! Item `k` (0-based rank) has probability proportional to `1/(k+1)^s`.
//! Sampling is by binary search over the precomputed CDF — `O(log n)` per
//! draw, exact, and dependency-free.

use rand::Rng;

/// A Zipf distribution over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution with `n` items and exponent `s ≥ 0`
    /// (`s = 0` is uniform; larger `s` concentrates mass on low ranks).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(s >= 0.0 && s.is_finite());
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is degenerate (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).unwrap_or(std::cmp::Ordering::Less))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.1);
        let sum: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(1000, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(100));
        // Rank-0 mass ≈ 1/H_1000 ≈ 0.133.
        assert!(z.pmf(0) > 0.1);
    }

    #[test]
    fn s_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_matches_pmf_roughly() {
        let z = Zipf::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0usize; 50];
        let draws = 100_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        // Empirical frequency of rank 0 within 10% of pmf.
        let freq0 = counts[0] as f64 / draws as f64;
        assert!((freq0 - z.pmf(0)).abs() < 0.1 * z.pmf(0) + 0.005);
        // All draws in range.
        assert_eq!(counts.iter().sum::<usize>(), draws);
    }
}
